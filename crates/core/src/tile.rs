//! Tiled arrays: vectors wider than one physical crossbar.
//!
//! A practical FeReX macro is bounded to a few hundred physical columns by
//! ScL settling and IR drop, but application vectors (HDC hypervectors,
//! image features) span thousands of symbols. The standard CiM answer is
//! tiling: the vector is split across several arrays operating in parallel;
//! each tile senses its partial row currents, a per-tile ADC digitizes
//! them, and a digital accumulator sums partial distances before the final
//! argmin. This module implements that organization on top of
//! [`FerexArray`], preserving the per-tile analog error behavior of
//! whichever backend the tiles use.

use crate::array::{Backend, FerexArray, SearchOutcome};
use crate::distance::DistanceMetric;
use crate::dm::DistanceMatrix;
use crate::encoding::CellEncoding;
use crate::engine::sizing_for;
use crate::error::FerexError;
use crate::health::{HealthSnapshot, ProgramReport, RepairPolicy, RowHealth, ScrubReport};
use crate::mutate::{CompactionReport, MutableNode, MutationPolicy, SlotState, WearSummary};
use crate::sizing::find_minimal_cell;
use ferex_fefet::math::splitmix64;
use ferex_fefet::Technology;

/// Derives the variation seed for tile `t` from a base seed.
///
/// Both inputs pass through the SplitMix64 avalanche mix before combining,
/// so the derived seeds for *any* two `(seed, tile)` pairs are
/// decorrelated. The previous affine derivation
/// (`(seed + t) · 0x9E37_79B9`) made base seed `s` with tile `t+1` collide
/// with base seed `s+1` at tile `t` — Monte-Carlo sweeps over consecutive
/// seeds silently shared most of their per-tile variation draws.
pub fn derive_tile_seed(seed: u64, t: usize) -> u64 {
    splitmix64(seed ^ splitmix64(t as u64))
}

/// A logical array built from several physical tiles.
///
/// Vectors of `dim` symbols are split into `ceil(dim / tile_dim)` tiles;
/// the last tile is zero-padded (symbol 0 against symbol 0 contributes zero
/// distance under any metric-like DM, so padding is free).
///
/// # Examples
///
/// ```
/// use ferex_core::tile::TiledArray;
/// use ferex_core::sizing::{find_minimal_cell, SizingOptions};
/// use ferex_core::{Backend, DistanceMatrix, DistanceMetric};
/// use ferex_fefet::Technology;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let dm = DistanceMatrix::from_metric(DistanceMetric::Hamming, 2);
/// let enc = find_minimal_cell(&dm, &SizingOptions::default())?.encoding;
/// let mut tiled = TiledArray::new(Technology::default(), enc, 10, 4, Backend::Ideal);
/// tiled.store(vec![0, 1, 2, 3, 0, 1, 2, 3, 0, 1])?;
/// tiled.program();
/// let out = tiled.search(&[0, 1, 2, 3, 0, 1, 2, 3, 0, 1])?;
/// assert_eq!(out.distances[0], 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TiledArray {
    tiles: Vec<FerexArray>,
    dim: usize,
    tile_dim: usize,
}

impl TiledArray {
    /// Creates an empty tiled array.
    ///
    /// Each tile gets its own backend instance; for stochastic backends the
    /// per-tile seed is derived from the base seed with an avalanche mix
    /// (see [`derive_tile_seed`]) so tiles carry independent variation and
    /// adjacent *base* seeds cannot produce overlapping per-tile streams.
    /// Fault maps ([`ferex_fefet::FaultPlan`]) key off the same derived
    /// seed, so a non-benign plan in the config faults independent cell
    /// sets per tile with no extra plumbing.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or `tile_dim == 0`.
    pub fn new(
        tech: Technology,
        encoding: CellEncoding,
        dim: usize,
        tile_dim: usize,
        backend: Backend,
    ) -> Self {
        assert!(dim > 0, "vector dimension must be positive");
        assert!(tile_dim > 0, "tile dimension must be positive");
        let n_tiles = dim.div_ceil(tile_dim);
        let tiles = (0..n_tiles)
            .map(|t| {
                let tile_backend = match &backend {
                    Backend::Ideal => Backend::Ideal,
                    Backend::Circuit(c) => {
                        let mut c = c.clone();
                        c.seed = derive_tile_seed(c.seed, t);
                        Backend::Circuit(c)
                    }
                    Backend::Noisy(c) => {
                        let mut c = c.clone();
                        c.seed = derive_tile_seed(c.seed, t);
                        Backend::Noisy(c)
                    }
                };
                FerexArray::new(tech.clone(), encoding.clone(), tile_dim, tile_backend)
            })
            .collect();
        TiledArray { tiles, dim, tile_dim }
    }

    /// Convenience constructor: runs the CSP sizing pipeline for `metric`
    /// over `bits`-bit symbols and builds the tiled array from the derived
    /// encoding.
    ///
    /// # Errors
    ///
    /// Encoding-pipeline failures.
    pub fn for_metric(
        metric: DistanceMetric,
        bits: u32,
        dim: usize,
        tile_dim: usize,
        backend: Backend,
        tech: Technology,
    ) -> Result<Self, FerexError> {
        let dm = DistanceMatrix::from_metric(metric, bits);
        let report = find_minimal_cell(&dm, &sizing_for(&tech))?;
        Ok(TiledArray::new(tech, report.encoding, dim, tile_dim, backend))
    }

    /// Reconfigures every tile to a new encoding (metric switch), keeping
    /// stored data.
    ///
    /// # Errors
    ///
    /// Validation errors if stored symbols exceed the new encoding's range.
    /// No rollback is attempted: the first failing tile aborts the loop and
    /// earlier tiles keep the new encoding. In practice the operation is
    /// still all-or-nothing, because every tile holds the same symbol
    /// alphabet — if any tile rejects the encoding, the first one already
    /// did, before anything changed.
    pub fn reconfigure(&mut self, encoding: CellEncoding) -> Result<(), FerexError> {
        for tile in &mut self.tiles {
            tile.reconfigure(encoding.clone())?;
        }
        Ok(())
    }

    /// Total logical dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Symbols per tile.
    pub fn tile_dim(&self) -> usize {
        self.tile_dim
    }

    /// Number of physical tiles.
    pub fn n_tiles(&self) -> usize {
        self.tiles.len()
    }

    /// Number of stored vectors.
    pub fn len(&self) -> usize {
        self.tiles[0].len()
    }

    /// `true` if nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.tiles[0].is_empty()
    }

    /// Read-only access to the tiles (for cost accounting).
    pub fn tiles(&self) -> &[FerexArray] {
        &self.tiles
    }

    fn split(&self, vector: &[u32]) -> Vec<Vec<u32>> {
        let mut out = Vec::with_capacity(self.tiles.len());
        for t in 0..self.tiles.len() {
            let start = t * self.tile_dim;
            let end = ((t + 1) * self.tile_dim).min(vector.len());
            let mut chunk = vector[start..end].to_vec();
            chunk.resize(self.tile_dim, 0); // zero-pad the last tile
            out.push(chunk);
        }
        out
    }

    /// Stores one vector, one slice per tile. All-or-nothing: every chunk
    /// is validated against its tile before any tile is mutated, so a
    /// failed store leaves the whole array (and the tiles' row alignment)
    /// untouched.
    ///
    /// # Errors
    ///
    /// Dimension/symbol validation errors.
    pub fn store(&mut self, vector: Vec<u32>) -> Result<(), FerexError> {
        if vector.len() != self.dim {
            return Err(FerexError::DimensionMismatch { expected: self.dim, got: vector.len() });
        }
        let chunks = self.split(&vector);
        for (tile, chunk) in self.tiles.iter().zip(&chunks) {
            tile.validate(chunk)?;
        }
        for (tile, chunk) in self.tiles.iter_mut().zip(chunks) {
            // Every chunk passed validate() above, so these stores cannot
            // fail; propagating keeps the path panic-free regardless.
            tile.store(chunk)?;
        }
        Ok(())
    }

    /// Programs every tile (crossbar cells or variation samples) for the
    /// current contents. Idempotent, like [`FerexArray::program`]; required
    /// after mutation before the `&self` read path will serve stochastic
    /// backends.
    pub fn program(&mut self) {
        for tile in &mut self.tiles {
            tile.program();
        }
    }

    /// `true` when every tile's physical state matches its contents.
    pub fn is_programmed(&self) -> bool {
        self.tiles.iter().all(FerexArray::is_programmed)
    }

    /// Per-row total distances: per-tile sensed partials, digitally
    /// accumulated.
    ///
    /// # Errors
    ///
    /// As [`FerexArray::distances`] (including
    /// [`FerexError::NotProgrammed`] for stale stochastic tiles).
    pub fn distances(&self, query: &[u32]) -> Result<Vec<f64>, FerexError> {
        if query.len() != self.dim {
            return Err(FerexError::DimensionMismatch { expected: self.dim, got: query.len() });
        }
        if self.is_empty() {
            return Err(FerexError::Empty);
        }
        let chunks = self.split(query);
        let mut totals = vec![0.0f64; self.len()];
        for (tile, chunk) in self.tiles.iter().zip(chunks) {
            for (total, partial) in totals.iter_mut().zip(tile.distances(&chunk)?) {
                *total += partial;
            }
        }
        Ok(totals)
    }

    /// Accumulated distances for every query of a batch, served through
    /// each tile's batched fast path ([`FerexArray::distances_batch`]) —
    /// so every tile independently dispatches to its structure-of-arrays
    /// kernel (bit-plane popcount, contiguous LUT, or contribution table;
    /// see [`FerexArray::batch_kernel`]). Bit-identical to a loop of
    /// [`TiledArray::distances`] calls: each kernel reproduces the scalar
    /// path exactly and partials accumulate in the same tile order per
    /// row.
    ///
    /// # Errors
    ///
    /// As [`TiledArray::distances`].
    pub fn distances_batch(&self, queries: &[Vec<u32>]) -> Result<Vec<Vec<f64>>, FerexError> {
        // An empty batch asks for nothing: answer it before any state
        // checks, matching [`FerexArray::distances_batch`].
        if queries.is_empty() {
            return Ok(Vec::new());
        }
        for q in queries {
            if q.len() != self.dim {
                return Err(FerexError::DimensionMismatch { expected: self.dim, got: q.len() });
            }
        }
        if self.is_empty() {
            return Err(FerexError::Empty);
        }
        let mut totals = vec![vec![0.0f64; self.len()]; queries.len()];
        for (t, tile) in self.tiles.iter().enumerate() {
            let start = t * self.tile_dim;
            let tile_queries: Vec<Vec<u32>> = queries
                .iter()
                .map(|q| {
                    let end = (start + self.tile_dim).min(q.len());
                    let mut chunk = q[start..end].to_vec();
                    chunk.resize(self.tile_dim, 0);
                    chunk
                })
                .collect();
            let partials = tile.distances_batch(&tile_queries)?;
            for (query_totals, partial) in totals.iter_mut().zip(partials) {
                for (total, p) in query_totals.iter_mut().zip(partial) {
                    *total += p;
                }
            }
        }
        Ok(totals)
    }

    fn digital_argmin(distances: Vec<f64>) -> Result<SearchOutcome, FerexError> {
        // A row quarantined in any tile accumulates an infinite total and
        // can never win; with every row quarantined there is no neighbor.
        if !distances.iter().any(|d| d.is_finite()) {
            return Err(FerexError::Empty);
        }
        let nearest = distances
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.total_cmp(b))
            .map(|(i, _)| i)
            .ok_or(FerexError::Empty)?;
        Ok(SearchOutcome { distances, nearest })
    }

    /// One search: accumulated distances plus a digital argmin (after the
    /// per-tile ADCs, the final comparison is digital and exact; analog
    /// error lives in the per-tile partials).
    ///
    /// # Errors
    ///
    /// As [`TiledArray::distances`].
    pub fn search(&self, query: &[u32]) -> Result<SearchOutcome, FerexError> {
        Self::digital_argmin(self.distances(query)?)
    }

    /// Searches a whole batch; equivalent to a loop of
    /// [`TiledArray::search`] calls (the cross-tile argmin is digital and
    /// deterministic), with distances served through the per-tile batched
    /// fast path.
    ///
    /// # Errors
    ///
    /// As [`TiledArray::distances_batch`].
    pub fn search_batch(&self, queries: &[Vec<u32>]) -> Result<Vec<SearchOutcome>, FerexError> {
        let distances = self.distances_batch(queries)?;
        distances.into_iter().map(Self::digital_argmin).collect()
    }

    fn rank_k(distances: &[f64], k: usize) -> Result<Vec<usize>, FerexError> {
        let active = distances.iter().filter(|d| d.is_finite()).count();
        if k == 0 || k > active {
            return Err(FerexError::InvalidK { k, rows: active });
        }
        let mut order: Vec<usize> = (0..distances.len()).collect();
        order.sort_by(|&a, &b| distances[a].total_cmp(&distances[b]).then(a.cmp(&b)));
        order.truncate(k);
        Ok(order)
    }

    /// The `k` nearest rows by accumulated distance.
    ///
    /// # Errors
    ///
    /// As [`TiledArray::search`]; [`FerexError::InvalidK`] if `k` is zero
    /// or exceeds the stored count.
    pub fn search_k(&self, query: &[u32], k: usize) -> Result<Vec<usize>, FerexError> {
        let distances = self.distances(query)?;
        Self::rank_k(&distances, k)
    }

    /// The `k` nearest rows for every query of a batch.
    ///
    /// # Errors
    ///
    /// As [`TiledArray::distances_batch`] and [`TiledArray::search_k`].
    pub fn search_k_batch(
        &self,
        queries: &[Vec<u32>],
        k: usize,
    ) -> Result<Vec<Vec<usize>>, FerexError> {
        let distances = self.distances_batch(queries)?;
        distances.iter().map(|d| Self::rank_k(d, k)).collect()
    }

    /// Installs the same repair policy on every tile: each tile reserves
    /// its own spare and sentinel rows and heals independently (a logical
    /// row is served only while every tile serves its slice).
    ///
    /// # Errors
    ///
    /// [`FerexError::InvalidPolicy`] if any knob is out of range; no tile
    /// is changed (the policy is validated before installation starts).
    pub fn set_repair_policy(&mut self, policy: RepairPolicy) -> Result<(), FerexError> {
        policy.validate()?;
        for tile in &mut self.tiles {
            tile.set_repair_policy(policy.clone())?;
        }
        Ok(())
    }

    /// Programs and write-verifies every tile; returns one
    /// [`ProgramReport`] per tile (tile order).
    ///
    /// # Errors
    ///
    /// As [`FerexArray::program_verified`] — the first failing tile aborts
    /// the loop (only meaningful under a strict policy).
    pub fn program_verified(&mut self) -> Result<Vec<ProgramReport>, FerexError> {
        self.tiles.iter_mut().map(FerexArray::program_verified).collect()
    }

    /// Runs one scrub pass on every tile; returns one [`ScrubReport`] per
    /// tile (tile order).
    ///
    /// # Errors
    ///
    /// As [`FerexArray::scrub`].
    pub fn scrub(&mut self) -> Result<Vec<ScrubReport>, FerexError> {
        self.tiles.iter_mut().map(FerexArray::scrub).collect()
    }

    /// Quarantines one logical row in every tile, remapping each tile's
    /// slice onto that tile's spare pool. Returns the spare physical index
    /// chosen per tile.
    ///
    /// # Errors
    ///
    /// [`FerexError::SparesExhausted`] if any tile ran out of spares — the
    /// remaining tiles are still processed first, and the row ends up
    /// excluded from search (an infinite partial in one tile makes the
    /// accumulated total infinite).
    pub fn quarantine_row(&mut self, row: usize) -> Result<Vec<usize>, FerexError> {
        let mut spares = Vec::with_capacity(self.tiles.len());
        let mut first_err = None;
        for tile in &mut self.tiles {
            match tile.quarantine_row(row) {
                Ok(spare) => spares.push(spare),
                Err(e) => first_err = first_err.or(Some(e)),
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(spares),
        }
    }

    /// Aggregated health across tiles: counters and spare occupancy are
    /// summed; a logical row counts as active only while no tile has it
    /// quarantined.
    pub fn health(&self) -> HealthSnapshot {
        let mut agg = HealthSnapshot { wear_headroom_milli: 1000, ..Default::default() };
        for tile in &self.tiles {
            let h = tile.health();
            // Tiles mutate in lockstep, so the per-tile wear figures are
            // identical; max/min keep the aggregate honest regardless.
            agg.wear_max_cycles = agg.wear_max_cycles.max(h.wear_max_cycles);
            agg.wear_mean_milli = agg.wear_mean_milli.max(h.wear_mean_milli);
            agg.wear_p50_cycles = agg.wear_p50_cycles.max(h.wear_p50_cycles);
            agg.wear_p90_cycles = agg.wear_p90_cycles.max(h.wear_p90_cycles);
            agg.wear_headroom_milli = agg.wear_headroom_milli.min(h.wear_headroom_milli);
            agg.counters.rows_quarantined += h.counters.rows_quarantined;
            agg.counters.repairs_attempted += h.counters.repairs_attempted;
            agg.counters.repairs_succeeded += h.counters.repairs_succeeded;
            agg.counters.cells_given_up += h.counters.cells_given_up;
            agg.counters.scrubs_completed += h.counters.scrubs_completed;
            agg.counters.last_scrub_seconds =
                agg.counters.last_scrub_seconds.max(h.counters.last_scrub_seconds);
            agg.spare_rows += h.spare_rows;
            agg.spares_in_use += h.spares_in_use;
            agg.spares_burned += h.spares_burned;
        }
        for row in 0..self.len() {
            match self.row_health(row) {
                RowHealth::Quarantined => agg.rows_quarantined_now += 1,
                RowHealth::Remapped { .. } => {
                    agg.rows_active += 1;
                    agg.rows_remapped_now += 1;
                }
                RowHealth::Healthy => agg.rows_active += 1,
            }
        }
        agg
    }

    // ------------------------------------------------------------------
    // Online mutation: tiles advance in lockstep.
    //
    // Every slot decision (insert target, rotation candidate, compaction
    // trigger) is a pure function of the slot table and the per-slot
    // cycle counts, and both are kept bit-identical across tiles: every
    // physical write is *attempted on every tile* before any tile commits
    // a logical change (so cycle counters advance together even when a
    // write fails), and logical commits are infallible. A failed
    // delta-program on one tile therefore rolls the whole mutation back —
    // no sibling tile is left mutated (the PR 1/PR 2 store-atomicity
    // guarantee, extended to incremental mutation).
    // ------------------------------------------------------------------

    /// Switches every tile to online-mutation mode with the same policy
    /// and slot capacity (see [`FerexArray::enable_mutation`]).
    /// All-or-nothing: validated before any tile changes.
    ///
    /// # Errors
    ///
    /// As [`FerexArray::enable_mutation`].
    pub fn enable_mutation(&mut self, policy: MutationPolicy) -> Result<(), FerexError> {
        policy.validate()?;
        if self.tiles.iter().any(FerexArray::mutation_enabled) {
            return Err(FerexError::InvalidPolicy { what: "mutation is already enabled" });
        }
        if self.len() > policy.capacity {
            return Err(FerexError::InvalidPolicy {
                what: "mutation capacity below the stored row count",
            });
        }
        for tile in &mut self.tiles {
            tile.enable_mutation(policy)?;
        }
        Ok(())
    }

    /// `true` once [`TiledArray::enable_mutation`] succeeded.
    pub fn mutation_enabled(&self) -> bool {
        self.tiles.iter().all(FerexArray::mutation_enabled)
    }

    /// The logical id slot `slot` serves, when live (identical on every
    /// tile).
    pub fn id_at(&self, slot: usize) -> Option<u64> {
        self.tiles.first().and_then(|t| t.id_at(slot))
    }

    /// Occupancy of physical slot `slot` (identical on every tile).
    pub fn slot_state(&self, slot: usize) -> Option<SlotState> {
        self.tiles.first().and_then(|t| t.slot_state(slot))
    }

    /// The stored full-width vector of a live logical id, re-assembled
    /// from the per-tile slices (trailing zero padding trimmed).
    pub fn vector_of(&self, id: u64) -> Option<Vec<u32>> {
        let slot = self.tiles.first()?.slot_of(id)?;
        let mut out = Vec::with_capacity(self.dim);
        for tile in &self.tiles {
            out.extend_from_slice(tile.stored().get(slot)?);
        }
        out.truncate(self.dim);
        Some(out)
    }

    fn mutation_required(&self) -> Result<&FerexArray, FerexError> {
        match self.tiles.first() {
            Some(t) if t.mutation_enabled() => Ok(t),
            _ => Err(FerexError::InvalidPolicy { what: "mutation is not enabled on this array" }),
        }
    }

    /// Phase one of a coordinated mutation: write `chunks` into `slot` on
    /// *every* tile — never aborting early, so the per-slot cycle counters
    /// advance in lockstep across tiles — then roll every tile back if any
    /// write failed. Returns the first error; on error no tile has a
    /// logical change and the prepared slot holds zeros everywhere.
    fn prepare_slot_on_all_tiles(
        &mut self,
        slot: usize,
        chunks: &[Vec<u32>],
    ) -> Result<(), FerexError> {
        let mut first_err = None;
        for (tile, chunk) in self.tiles.iter_mut().zip(chunks) {
            tile.mutation_set_contents(slot, chunk.clone());
            if let Err(e) = tile.mutation_write_slot(slot, chunk) {
                first_err = first_err.or(Some(e));
            }
        }
        if let Some(e) = first_err {
            let tile_dim = self.tile_dim;
            for tile in &mut self.tiles {
                tile.mutation_set_contents(slot, vec![0; tile_dim]);
            }
            return Err(e);
        }
        Ok(())
    }

    fn maybe_auto_compact_all(&mut self) {
        if self
            .tiles
            .first()
            .and_then(FerexArray::mutation_state)
            .is_some_and(crate::mutate::MutationState::should_auto_compact)
        {
            self.compact();
        }
    }

    /// Inserts a new `(id, vector)` pair across every tile, atomically:
    /// the slot choice comes from the (tile-identical) slot table, every
    /// tile prepares its slice through the write-verify path, and only
    /// when all tiles settle does the slot flip live.
    ///
    /// # Errors
    ///
    /// As [`FerexArray::insert`]; on error no tile is mutated.
    pub fn insert(&mut self, id: u64, vector: Vec<u32>) -> Result<(), FerexError> {
        if vector.len() != self.dim {
            return Err(FerexError::DimensionMismatch { expected: self.dim, got: vector.len() });
        }
        let chunks = self.split(&vector);
        for (tile, chunk) in self.tiles.iter().zip(&chunks) {
            tile.validate(chunk)?;
        }
        let m = self
            .mutation_required()?
            .mutation_state()
            .ok_or(FerexError::InvalidPolicy { what: "mutation is not enabled on this array" })?;
        if m.id_to_slot.contains_key(&id) {
            return Err(FerexError::DuplicateId { id });
        }
        let capacity = m.policy.capacity;
        let slot = match m.choose_insert_slot() {
            Some(s) => s,
            None if m.tombstones() > 0 => {
                self.compact();
                self.mutation_required()?
                    .mutation_state()
                    .and_then(crate::mutate::MutationState::choose_insert_slot)
                    .ok_or(FerexError::CapacityExhausted { capacity })?
            }
            None => return Err(FerexError::CapacityExhausted { capacity }),
        };
        self.prepare_slot_on_all_tiles(slot, &chunks)?;
        for tile in &mut self.tiles {
            tile.mutation_commit_live(id, slot);
        }
        Ok(())
    }

    /// Replaces the vector of live id `id` on every tile — out of place
    /// under wear leveling, in place (with rollback on failure) otherwise.
    ///
    /// # Errors
    ///
    /// As [`FerexArray::update_id`]; on error no tile is left mutated.
    pub fn update_id(&mut self, id: u64, vector: Vec<u32>) -> Result<(), FerexError> {
        if vector.len() != self.dim {
            return Err(FerexError::DimensionMismatch { expected: self.dim, got: vector.len() });
        }
        let chunks = self.split(&vector);
        for (tile, chunk) in self.tiles.iter().zip(&chunks) {
            tile.validate(chunk)?;
        }
        let m = self
            .mutation_required()?
            .mutation_state()
            .ok_or(FerexError::InvalidPolicy { what: "mutation is not enabled on this array" })?;
        let Some(&old) = m.id_to_slot.get(&id) else {
            return Err(FerexError::UnknownId { id });
        };
        let target = if m.policy.wear_leveling { m.choose_insert_slot() } else { None };
        match target {
            Some(new) if new != old => {
                self.prepare_slot_on_all_tiles(new, &chunks)?;
                for tile in &mut self.tiles {
                    tile.mutation_commit_move(id, old, new);
                }
                self.maybe_auto_compact_all();
                Ok(())
            }
            _ => {
                let previous: Vec<Vec<u32>> = self
                    .tiles
                    .iter()
                    .map(|t| t.stored().get(old).cloned().unwrap_or_default())
                    .collect();
                match self.prepare_slot_on_all_tiles(old, &chunks) {
                    Ok(()) => Ok(()),
                    Err(e) => {
                        // Roll the row back to its old contents on every
                        // tile (attempted everywhere: cycles stay lockstep).
                        for (tile, prev) in self.tiles.iter_mut().zip(previous) {
                            tile.mutation_set_contents(old, prev.clone());
                            let _ = tile.mutation_write_slot(old, &prev);
                        }
                        Err(e)
                    }
                }
            }
        }
    }

    /// Tombstones live id `id` on every tile — purely logical, infallible
    /// once the id resolves, so the tiles cannot diverge.
    ///
    /// # Errors
    ///
    /// [`FerexError::UnknownId`].
    pub fn delete(&mut self, id: u64) -> Result<(), FerexError> {
        self.mutation_required()?;
        let mut first_err = None;
        for tile in &mut self.tiles {
            if let Err(e) = tile.delete(id) {
                first_err = first_err.or(Some(e));
            }
        }
        match first_err {
            // The id resolves identically on every tile: an UnknownId on
            // one is an UnknownId on all, so nothing was tombstoned.
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Compacts every tile (identical slot tables make this deterministic
    /// and tile-consistent); returns the first tile's report.
    pub fn compact(&mut self) -> CompactionReport {
        let mut report = CompactionReport::default();
        for (t, tile) in self.tiles.iter_mut().enumerate() {
            let r = tile.compact();
            if t == 0 {
                report = r;
            }
        }
        report
    }

    /// One background maintenance step, coordinated across tiles: compacts
    /// at the policy threshold, then performs at most one wear rotation —
    /// prepared on every tile before any tile commits, and abandoned with
    /// no logical change if any tile's delta write fails.
    pub fn maintenance(&mut self) -> CompactionReport {
        let mut report = CompactionReport::default();
        let Some(m) = self.tiles.first().and_then(FerexArray::mutation_state) else {
            return report;
        };
        if m.should_auto_compact() {
            report = self.compact();
        }
        let Some(m) = self.tiles.first().and_then(FerexArray::mutation_state) else {
            return report;
        };
        let Some((src, dst)) = m.rotation_candidate() else {
            return report;
        };
        let Some(SlotState::Live(id)) = m.slots.get(src).copied() else {
            return report;
        };
        let chunks: Vec<Vec<u32>> =
            self.tiles.iter().map(|t| t.stored().get(src).cloned().unwrap_or_default()).collect();
        if self.prepare_slot_on_all_tiles(dst, &chunks).is_err() {
            return report;
        }
        for tile in &mut self.tiles {
            tile.mutation_commit_move(id, src, dst);
        }
        report.rotated += 1;
        report
    }

    /// Global health of one logical row: quarantined if *any* tile dropped
    /// it, remapped if any tile serves it from a spare, healthy otherwise.
    /// (For a remapped row the reported spare index is the first remapping
    /// tile's — per-tile detail lives on [`TiledArray::tiles`].)
    pub fn row_health(&self, row: usize) -> RowHealth {
        let mut remapped = None;
        for tile in &self.tiles {
            match tile.row_health(row) {
                RowHealth::Quarantined => return RowHealth::Quarantined,
                RowHealth::Remapped { spare } => remapped = remapped.or(Some(spare)),
                RowHealth::Healthy => {}
            }
        }
        match remapped {
            Some(spare) => RowHealth::Remapped { spare },
            None => RowHealth::Healthy,
        }
    }
}

impl MutableNode for TiledArray {
    fn insert(&mut self, id: u64, vector: Vec<u32>) -> Result<(), FerexError> {
        TiledArray::insert(self, id, vector)
    }

    fn update(&mut self, id: u64, vector: Vec<u32>) -> Result<(), FerexError> {
        TiledArray::update_id(self, id, vector)
    }

    fn delete(&mut self, id: u64) -> Result<(), FerexError> {
        TiledArray::delete(self, id)
    }

    fn compact(&mut self) -> CompactionReport {
        TiledArray::compact(self)
    }

    fn maintenance(&mut self) -> CompactionReport {
        TiledArray::maintenance(self)
    }

    fn slot_of(&self, id: u64) -> Option<usize> {
        self.tiles.first().and_then(|t| t.slot_of(id))
    }

    fn vector_of(&self, id: u64) -> Option<Vec<u32>> {
        TiledArray::vector_of(self, id)
    }

    fn live_ids(&self) -> Vec<u64> {
        self.tiles.first().map(FerexArray::live_ids).unwrap_or_default()
    }

    fn live_len(&self) -> usize {
        self.tiles.first().map_or(0, FerexArray::live_len)
    }

    fn tombstones(&self) -> usize {
        self.tiles.first().map_or(0, FerexArray::tombstones)
    }

    fn wear(&self) -> WearSummary {
        // Lockstep tiles wear identically; the first tile speaks for all.
        self.tiles.first().map(FerexArray::wear).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::CircuitConfig;
    use crate::distance::DistanceMetric;
    use crate::dm::DistanceMatrix;
    use crate::sizing::{find_minimal_cell, SizingOptions};

    fn encoding() -> CellEncoding {
        let dm = DistanceMatrix::from_metric(DistanceMetric::Hamming, 2);
        find_minimal_cell(&dm, &SizingOptions::default()).expect("sizes").encoding
    }

    fn data(dim: usize) -> Vec<Vec<u32>> {
        (0..4).map(|r| (0..dim).map(|d| ((r + d) % 4) as u32).collect()).collect()
    }

    #[test]
    fn tiled_ideal_matches_monolithic() {
        let dim = 13; // deliberately not a multiple of the tile size
        let enc = encoding();
        let mut mono = FerexArray::new(Technology::default(), enc.clone(), dim, Backend::Ideal);
        let mut tiled = TiledArray::new(Technology::default(), enc, dim, 4, Backend::Ideal);
        for v in data(dim) {
            mono.store(v.clone()).unwrap();
            tiled.store(v).unwrap();
        }
        let q: Vec<u32> = (0..dim).map(|d| (d % 3) as u32).collect();
        let dm = mono.search(&q).unwrap();
        let dt = tiled.search(&q).unwrap();
        assert_eq!(dm.distances, dt.distances);
        assert_eq!(dm.nearest, dt.nearest);
    }

    #[test]
    fn tile_count_and_padding() {
        let enc = encoding();
        let tiled = TiledArray::new(Technology::default(), enc, 10, 4, Backend::Ideal);
        assert_eq!(tiled.n_tiles(), 3);
        assert_eq!(tiled.dim(), 10);
        assert_eq!(tiled.tile_dim(), 4);
    }

    #[test]
    fn search_k_is_distance_ordered() {
        let dim = 8;
        let enc = encoding();
        let mut tiled = TiledArray::new(Technology::default(), enc, dim, 3, Backend::Ideal);
        tiled.store(vec![0; 8]).unwrap();
        tiled.store(vec![1; 8]).unwrap();
        tiled.store(vec![3; 8]).unwrap();
        let top = tiled.search_k(&[1; 8], 3).unwrap();
        assert_eq!(top[0], 1);
        // Hamming: d(1,0) = 1 per symbol (8 total), d(1,3) = 1 per symbol
        // (8 total) — tie breaks to the lower row.
        assert_eq!(top[1], 0);
        assert_eq!(top[2], 2);
    }

    #[test]
    fn noisy_tiles_carry_independent_variation() {
        let dim = 12;
        let enc = encoding();
        let cfg = CircuitConfig::default();
        let mut tiled =
            TiledArray::new(Technology::default(), enc, dim, 4, Backend::Noisy(Box::new(cfg)));
        tiled.store(vec![0; 12]).unwrap();
        tiled.program();
        // Query that turns every cell on: per-tile partials should differ
        // slightly (independent variation draws), never exactly match.
        let d = tiled.distances(&[3; 12]).unwrap();
        assert!(d[0] > 0.0);
        // Aggregate stays close to the ideal total (resistor clamp).
        let ideal = 12.0 * 2.0; // d(3,0) = 2 per symbol under 2-bit Hamming
        assert!((d[0] - ideal).abs() / ideal < 0.1, "total {d:?} vs ideal {ideal}");
    }

    #[test]
    fn for_metric_and_reconfigure() {
        let mut tiled = TiledArray::for_metric(
            DistanceMetric::Hamming,
            2,
            9,
            4,
            Backend::Ideal,
            Technology::default(),
        )
        .expect("sizes");
        tiled.store(vec![0, 1, 2, 3, 0, 1, 2, 3, 0]).unwrap();
        tiled.store(vec![3, 2, 1, 0, 3, 2, 1, 0, 3]).unwrap();
        let q = vec![0u32, 1, 2, 3, 0, 1, 2, 3, 1];
        let hd = tiled.search(&q).unwrap();
        assert_eq!(hd.nearest, 0);
        // Switch to Manhattan in place.
        let dm = DistanceMatrix::from_metric(DistanceMetric::Manhattan, 2);
        let enc = find_minimal_cell(&dm, &crate::SizingOptions::default()).unwrap().encoding;
        tiled.reconfigure(enc).unwrap();
        let l1 = tiled.search(&q).unwrap();
        assert_eq!(l1.nearest, 0);
        // Manhattan distances differ from Hamming on this data.
        assert_ne!(hd.distances, l1.distances);
        // And both match the software metric exactly (ideal backend).
        let m = DistanceMetric::Manhattan;
        let expected: Vec<f64> =
            [vec![0u32, 1, 2, 3, 0, 1, 2, 3, 0], vec![3, 2, 1, 0, 3, 2, 1, 0, 3]]
                .iter()
                .map(|s| m.vector_distance(&q, s) as f64)
                .collect();
        assert_eq!(l1.distances, expected);
    }

    #[test]
    fn dimension_validation() {
        let enc = encoding();
        let mut tiled = TiledArray::new(Technology::default(), enc, 10, 4, Backend::Ideal);
        assert!(matches!(
            tiled.store(vec![0; 9]),
            Err(FerexError::DimensionMismatch { expected: 10, got: 9 })
        ));
        assert!(matches!(tiled.search(&[0; 10]), Err(FerexError::Empty)));
    }

    #[test]
    fn failed_store_leaves_no_partial_rows() {
        // Regression: an out-of-range symbol in the SECOND tile's chunk
        // used to leave the first tile with an extra row, permanently
        // desynchronizing the tiles' row maps.
        let enc = encoding();
        let mut tiled = TiledArray::new(Technology::default(), enc, 8, 4, Backend::Ideal);
        tiled.store(vec![0; 8]).unwrap();
        let mut bad = vec![0u32; 8];
        bad[5] = 9; // valid first chunk, invalid symbol in tile 1
        assert!(matches!(tiled.store(bad), Err(FerexError::SymbolOutOfRange { value: 9, .. })));
        assert_eq!(tiled.len(), 1);
        for tile in tiled.tiles() {
            assert_eq!(tile.len(), 1, "a tile kept a chunk of the rejected vector");
        }
        // The array still works after the rejected store.
        let out = tiled.search(&[0; 8]).unwrap();
        assert_eq!(out.nearest, 0);
    }

    #[test]
    fn invalid_k_reports_dedicated_error() {
        let enc = encoding();
        let mut tiled = TiledArray::new(Technology::default(), enc, 8, 4, Backend::Ideal);
        tiled.store(vec![0; 8]).unwrap();
        tiled.store(vec![1; 8]).unwrap();
        assert_eq!(tiled.search_k(&[0; 8], 0), Err(FerexError::InvalidK { k: 0, rows: 2 }));
        assert_eq!(tiled.search_k(&[0; 8], 5), Err(FerexError::InvalidK { k: 5, rows: 2 }));
    }

    #[test]
    fn adjacent_base_seeds_derive_disjoint_tile_seeds() {
        // Regression: (seed + t) · C collides for (seed, t+1) vs
        // (seed + 1, t) — consecutive Monte-Carlo seeds shared per-tile
        // variation streams. The mixed derivation must keep every
        // (base seed, tile) pair distinct.
        let mut derived = std::collections::HashSet::new();
        for seed in 0..16u64 {
            for t in 0..8usize {
                assert!(
                    derived.insert(derive_tile_seed(seed, t)),
                    "collision at seed {seed}, tile {t}"
                );
            }
        }
        // And the old derivation really did collide (guards the rationale).
        let old = |seed: u64, t: usize| seed.wrapping_add(t as u64).wrapping_mul(0x9E37_79B9);
        assert_eq!(old(3, 1), old(4, 0));
    }

    #[test]
    fn tiles_fault_independent_cell_sets() {
        use ferex_fefet::FaultPlan;
        let enc = encoding();
        let cfg = CircuitConfig {
            faults: FaultPlan { sa1_rate: 0.5, ..Default::default() },
            seed: 9,
            ..Default::default()
        };
        let mut tiled =
            TiledArray::new(Technology::default(), enc, 12, 4, Backend::Noisy(Box::new(cfg)));
        tiled.store(vec![0; 12]).unwrap();
        tiled.program();
        // Each tile's fault map derives from its own mixed seed: the maps
        // must exist, and at 50% incidence two 8-cell maps matching exactly
        // would be a seed-derivation collision.
        let maps: Vec<_> = tiled.tiles().iter().map(|t| t.fault_map().unwrap()).collect();
        assert_eq!(maps.len(), 3);
        assert!(maps.windows(2).any(|w| w[0] != w[1]), "tiles drew identical fault maps");
        // And the tile seeds really are the derived ones.
        for (t, tile) in tiled.tiles().iter().enumerate() {
            let plan = FaultPlan { sa1_rate: 0.5, ..Default::default() };
            let expected =
                plan.fault_map(derive_tile_seed(9, t), tile.len() * tile.physical_cols());
            assert_eq!(tile.fault_map().unwrap(), &expected[..], "tile {t}");
        }
    }

    #[test]
    fn stale_tiles_are_rejected_until_programmed() {
        let enc = encoding();
        let cfg = CircuitConfig::default();
        let mut tiled =
            TiledArray::new(Technology::default(), enc, 8, 4, Backend::Noisy(Box::new(cfg)));
        tiled.store(vec![0; 8]).unwrap();
        assert!(!tiled.is_programmed());
        assert_eq!(tiled.search(&[0; 8]), Err(FerexError::NotProgrammed));
        tiled.program();
        assert!(tiled.is_programmed());
        assert!(tiled.search(&[0; 8]).is_ok());
    }

    #[test]
    fn batch_search_matches_sequential() {
        let enc = encoding();
        let cfg = CircuitConfig { seed: 21, ..Default::default() };
        let mut tiled =
            TiledArray::new(Technology::default(), enc, 10, 4, Backend::Noisy(Box::new(cfg)));
        for v in data(10) {
            tiled.store(v).unwrap();
        }
        tiled.program();
        let queries: Vec<Vec<u32>> =
            (0..6).map(|q| (0..10).map(|d| ((q + 2 * d) % 4) as u32).collect()).collect();
        let batched = tiled.search_batch(&queries).unwrap();
        for (i, q) in queries.iter().enumerate() {
            assert_eq!(batched[i], tiled.search(q).unwrap(), "query {i}");
        }
        let k_batched = tiled.search_k_batch(&queries, 2).unwrap();
        for (i, q) in queries.iter().enumerate() {
            assert_eq!(k_batched[i], tiled.search_k(q, 2).unwrap(), "query {i}");
        }
    }

    #[test]
    fn tiled_batch_runs_the_popcount_kernel_bit_identically() {
        // Ideal + realized Hamming: every tile dispatches the batch to the
        // bit-plane popcount kernel, and the accumulated totals must still
        // equal the scalar per-query path bit for bit.
        let enc = encoding();
        let mut tiled = TiledArray::new(Technology::default(), enc, 10, 4, Backend::Ideal);
        for v in data(10) {
            tiled.store(v).unwrap();
        }
        for tile in &tiled.tiles {
            assert_eq!(tile.batch_kernel(6), "bitplane-popcount");
        }
        let queries: Vec<Vec<u32>> =
            (0..6).map(|q| (0..10).map(|d| ((3 * q + d) % 4) as u32).collect()).collect();
        let batched = tiled.distances_batch(&queries).unwrap();
        for (i, q) in queries.iter().enumerate() {
            assert_eq!(batched[i], tiled.distances(q).unwrap(), "query {i}");
        }
    }

    #[test]
    fn tiled_self_heal_spans_every_tile() {
        use crate::health::RepairPolicy;
        use ferex_analog::LtaParams;
        use ferex_fefet::VariationModel;
        let enc = encoding();
        let cfg = CircuitConfig {
            variation: VariationModel::none(),
            lta: LtaParams::ideal(),
            seed: 5,
            ..Default::default()
        };
        let mut tiled =
            TiledArray::new(Technology::default(), enc, 10, 4, Backend::Noisy(Box::new(cfg)));
        tiled.set_repair_policy(RepairPolicy { spare_rows: 1, ..Default::default() }).unwrap();
        for v in data(10) {
            tiled.store(v).unwrap();
        }
        let reports = tiled.program_verified().unwrap();
        assert_eq!(reports.len(), 3, "one report per tile");
        assert!(reports.iter().all(|r| r.rows_quarantined.is_empty()));
        // Fault-free scrub stays silent on every tile.
        let scrubs = tiled.scrub().unwrap();
        assert!(scrubs.iter().all(|s| s.findings.is_empty()));
        // Quarantine row 1 everywhere: each tile remaps onto its spare.
        let spares = tiled.quarantine_row(1).unwrap();
        assert_eq!(spares.len(), 3);
        assert!(matches!(tiled.row_health(1), RowHealth::Remapped { .. }));
        let q: Vec<u32> = (0..10).map(|d| ((1 + d) % 4) as u32).collect();
        let out = tiled.search(&q).unwrap();
        assert_eq!(out.nearest, 1, "remapped row keeps its logical id");
        assert_eq!(out.distances[1], 0.0);
        // The pool (one spare per tile) is now dry: the next quarantine
        // excludes the row globally.
        assert!(matches!(tiled.quarantine_row(2), Err(FerexError::SparesExhausted { row: 2, .. })));
        assert_eq!(tiled.row_health(2), RowHealth::Quarantined);
        let out = tiled.search(&q).unwrap();
        assert!(out.distances[2].is_infinite());
        assert_eq!(
            tiled.search_k(&q, 4),
            Err(FerexError::InvalidK { k: 4, rows: 3 }),
            "only three rows stay active"
        );
        let h = tiled.health();
        assert_eq!(h.rows_active, 3);
        assert_eq!(h.rows_quarantined_now, 1);
        assert_eq!(h.rows_remapped_now, 1);
        assert_eq!(h.spare_rows, 3);
        assert_eq!(h.spares_in_use, 3);
    }

    // ------------------------------------------------------------------
    // Online mutation across tiles.
    // ------------------------------------------------------------------

    #[test]
    fn tiled_mutation_matches_monolithic() {
        let dim = 6;
        let enc = encoding();
        let mut mono = FerexArray::new(Technology::default(), enc.clone(), dim, Backend::Ideal);
        let mut tiled = TiledArray::new(Technology::default(), enc, dim, 4, Backend::Ideal);
        mono.enable_mutation(MutationPolicy::with_capacity(8)).unwrap();
        tiled.enable_mutation(MutationPolicy::with_capacity(8)).unwrap();
        let ops: [(&str, u64); 9] = [
            ("ins", 1),
            ("ins", 2),
            ("ins", 3),
            ("ins", 4),
            ("upd", 2),
            ("del", 3),
            ("ins", 9),
            ("upd", 1),
            ("del", 4),
        ];
        for (i, (op, id)) in ops.iter().enumerate() {
            let v: Vec<u32> = (0..dim).map(|d| ((i + d + *id as usize) % 4) as u32).collect();
            match *op {
                "ins" => {
                    mono.insert(*id, v.clone()).unwrap();
                    tiled.insert(*id, v).unwrap();
                }
                "upd" => {
                    mono.update_id(*id, v.clone()).unwrap();
                    tiled.update_id(*id, v).unwrap();
                }
                _ => {
                    mono.delete(*id).unwrap();
                    tiled.delete(*id).unwrap();
                }
            }
            mono.maintenance();
            tiled.maintenance();
        }
        assert_eq!(mono.live_ids(), tiled.live_ids());
        let q: Vec<u32> = (0..dim).map(|d| (d % 4) as u32).collect();
        let dm = mono.search(&q).unwrap();
        let dt = tiled.search(&q).unwrap();
        for id in mono.live_ids() {
            let a = dm.distances[mono.slot_of(id).unwrap()];
            let b = dt.distances[tiled.slot_of(id).unwrap()];
            assert_eq!(a.to_bits(), b.to_bits(), "id {id}");
        }
        // The slot machinery itself converges (pure function of the op
        // sequence), so ids live on the same physical slots.
        for id in mono.live_ids() {
            assert_eq!(mono.slot_of(id), tiled.slot_of(id), "id {id}");
        }
        // Wear surfaces agree tile-to-tile and with the monolithic array.
        let w = tiled.wear();
        assert_eq!(w, mono.wear());
        for tile in tiled.tiles() {
            assert_eq!(tile.wear(), w, "tiles must wear in lockstep");
        }
        let h = tiled.health();
        assert_eq!(h.wear_max_cycles, w.max_cycles);
    }

    #[test]
    fn failed_delta_program_on_one_tile_leaves_no_sibling_mutated() {
        use ferex_fefet::VerifyPolicy;
        // Regression (store-atomicity, extended to incremental mutation):
        // under a strict verify policy a delta write can fail on one tile
        // and pass on another (independent per-tile variation); the failed
        // insert must roll back every tile, not just the failing one.
        let enc = encoding();
        let build = |seed: u64| {
            let cfg = CircuitConfig { seed, ..Default::default() };
            let mut tiled = TiledArray::new(
                Technology::default(),
                enc.clone(),
                8,
                4,
                Backend::Noisy(Box::new(cfg)),
            );
            tiled
                .set_repair_policy(RepairPolicy {
                    strict: true,
                    max_bad_cells_per_row: 0,
                    spare_rows: 0,
                    sentinel_rows: 0,
                    // ~1.9σ of the 54 mV V_th variation with no retries:
                    // each 12-cell tile row fails verify with probability
                    // ≈ 0.5, so mixed per-tile outcomes are common.
                    verify: VerifyPolicy {
                        tolerance: ferex_fefet::units::Volt(0.105),
                        max_retries: 0,
                        ..Default::default()
                    },
                    ..Default::default()
                })
                .unwrap();
            tiled.enable_mutation(MutationPolicy::with_capacity(4)).unwrap();
            tiled.program();
            tiled
        };
        let v: Vec<u32> = vec![1, 2, 3, 0, 1, 2, 3, 0];
        // Find a seed where exactly the mixed-outcome hazard arises: the
        // write-verify of the insert's slot passes on one tile and fails
        // on the other.
        let mut found = None;
        for seed in 0..400u64 {
            let tiled = build(seed);
            let chunks = tiled.split(&v);
            let outcomes: Vec<bool> = tiled
                .tiles
                .iter()
                .zip(&chunks)
                .map(|(t, c)| {
                    let mut probe = t.clone();
                    probe.mutation_set_contents(0, c.clone());
                    probe.mutation_write_slot(0, c).is_ok()
                })
                .collect();
            if outcomes.iter().any(|&b| b) && outcomes.iter().any(|&b| !b) {
                found = Some(seed);
                break;
            }
        }
        let seed = found.expect("no seed produced a single-tile verify failure in 400 tries");
        let mut tiled = build(seed);
        let err = tiled.insert(7, v).unwrap_err();
        assert!(matches!(err, FerexError::VerifyFailed { .. }), "unexpected error {err:?}");
        // No tile committed anything: the id is live nowhere and the slot
        // tables are still in lockstep.
        assert_eq!(tiled.live_len(), 0);
        for tile in tiled.tiles() {
            assert_eq!(tile.live_len(), 0, "a sibling tile kept the failed insert");
            assert!(tile.slot_of(7).is_none());
        }
        // Cycle counters advanced identically (the write was attempted on
        // every tile), so later slot decisions cannot diverge.
        let w0 = tiled.tiles()[0].wear();
        for tile in tiled.tiles() {
            assert_eq!(tile.wear().total_writes, w0.total_writes);
        }
        assert_eq!(tiled.search(&[0; 8]), Err(FerexError::Empty), "no live rows to serve");
    }

    #[test]
    fn tiled_delete_and_compact_stay_tile_consistent() {
        let enc = encoding();
        let mut tiled = TiledArray::new(Technology::default(), enc, 8, 4, Backend::Ideal);
        let mut policy = MutationPolicy::with_capacity(8);
        policy.compact_tombstone_milli = 0;
        tiled.enable_mutation(policy).unwrap();
        for id in 0..4u64 {
            tiled.insert(id, vec![(id % 4) as u32; 8]).unwrap();
        }
        tiled.delete(1).unwrap();
        tiled.delete(3).unwrap();
        assert_eq!(tiled.tombstones(), 2);
        assert!(matches!(tiled.delete(1), Err(FerexError::UnknownId { id: 1 })));
        let out = tiled.search(&[1; 8]).unwrap();
        // ids 0..4 landed on slots 0..4 in order; id 1's slot is dead.
        assert!(out.distances[1].is_infinite());
        let report = tiled.compact();
        assert_eq!(report.reclaimed, 2);
        for tile in tiled.tiles() {
            assert_eq!(tile.tombstones(), 0);
            assert_eq!(tile.live_ids(), vec![0, 2]);
        }
        assert_eq!(tiled.live_ids(), vec![0, 2]);
    }
}
