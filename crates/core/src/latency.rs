//! Deterministic per-replica service-latency models and the hedging /
//! brownout policies built on them.
//!
//! PR 7's serving loop charged every batch the same [`CostModel`] ticks,
//! so a replica that is merely *slow* — the realistic failure mode for a
//! FeFET array whose write-verify retries and scrub cycles stretch
//! service time as cells age — was invisible to every gate. This module
//! makes latency heterogeneity first-class while keeping the virtual
//! tick clock bit-reproducible:
//!
//! * [`LatencyModel`] — a seeded per-replica service-time sampler. The
//!   stochastic part is an integer-only *quantized log-normal*: a
//!   16-entry per-mille multiplier table (the inverse CDF of a σ ≈ 0.25
//!   log-normal at 16 equiprobable bins) indexed by the top bits of a
//!   domain-separated SplitMix64 draw. On top of the jitter sit
//!   deterministic inflation terms coupled to load (queue depth), health
//!   (remapped/quarantined rows via
//!   [`HealthSnapshot::degraded_milli`](crate::health::HealthSnapshot::degraded_milli)),
//!   recent scrubs, and a time-coupled degradation slope for the
//!   aging-replica scenario family.
//! * [`HedgePolicy`] — when the slowest pending quorum read exceeds the
//!   configured quantile of the healthy service distribution, a duplicate
//!   read is issued to the best idle replica, first completion wins, and
//!   a per-mille budget bounds how many batches may hedge so hedges can
//!   never amplify overload.
//! * [`BrownoutPolicy`] — an EWMA latency tracker per replica; a replica
//!   whose multiplier crosses the demotion threshold is pushed down the
//!   routing order (a *brownout*, distinct from the breaker's hard Open)
//!   and re-probed half-open-style with exponential backoff.
//!
//! All knobs are integers (per-mille fixed point); all randomness flows
//! through `splitmix64(seed ^ splitmix64(draw ^ SALT))` streams disjoint
//! from the replica, query, fault, and load streams.

use crate::error::FerexError;
use crate::serve::CostModel;
use ferex_fefet::math::splitmix64;

/// Domain-separation salt for latency-model draws, disjoint from the
/// replica, query, fault, and load-simulator streams.
const LATENCY_STREAM_SALT: u64 = 0x7A11_1A7E_5C0F_F1CE;

/// Inverse CDF of a σ ≈ 0.25 log-normal at 16 equiprobable bins, in
/// per-mille of the median (bin centers at `p = (2i+1)/32`). Quantized so
/// the sampler stays integer-only: no `f64::exp`/`ln`, which vary across
/// libm implementations and would break byte-reproducibility.
const QLN_MILLI: [i64; 16] =
    [628, 719, 777, 824, 865, 904, 942, 981, 1020, 1061, 1106, 1156, 1214, 1287, 1390, 1593];

/// Ceiling on the effective slowdown multiplier (per-mille): one million
/// milli = 1000x, far past any modeled brownout.
const MAX_SLOW_MILLI: u128 = 1_000_000;

/// Ceiling on the additive inflation terms (per-mille): +4000 milli = a
/// 5x total stretch from load/health/scrub coupling alone.
const MAX_INFLATION_MILLI: u64 = 4000;

/// Per-mille multiplier at the `q_milli` per-mille quantile of the
/// quantized log-normal sampler (e.g. `qln_quantile_milli(950)` is the
/// p95 multiplier, 1593). Saturates at the top bin for `q_milli >= 999`.
pub fn qln_quantile_milli(q_milli: u64) -> u64 {
    let idx = ((q_milli.min(999) as usize) * QLN_MILLI.len()) / 1000;
    QLN_MILLI.get(idx).copied().unwrap_or(1000) as u64
}

/// Seeded service-latency model of one replica.
///
/// The modeled service time of a batch of `B` queries at virtual tick
/// `t` with `q` requests queued behind it is, in per-mille fixed point:
///
/// ```text
/// base.service_ticks(B)
///   x (slow_factor_milli + degrade_milli_per_kilotick * t / 1000)
///   x jitter(draw)                       // quantized log-normal
///   x (1000 + load + health + scrub)     // additive inflation terms
/// ```
///
/// With `slow_factor_milli = 1000`, `jitter_milli = 0`, and zero
/// inflation knobs the model charges exactly `base.service_ticks(B)` —
/// the PR 7 uniform cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyModel {
    /// Baseline cost model the multipliers scale.
    pub base: CostModel,
    /// Constant slowdown in per-mille (1000 = healthy, 8000 = 8x slow).
    pub slow_factor_milli: u64,
    /// Slowdown growth in per-mille per 1000 virtual ticks — the
    /// degrading-replica (aging) term.
    pub degrade_milli_per_kilotick: u64,
    /// Amplitude of the quantized log-normal jitter, 0..=1000 per-mille
    /// of the table's spread (0 = deterministic, 1000 = full spread).
    pub jitter_milli: u64,
    /// Additive inflation per queued request behind the batch, per-mille.
    pub load_milli_per_queued: u64,
    /// Additive inflation at full health degradation, per-mille; scaled
    /// linearly by the replica's
    /// [`HealthSnapshot::degraded_milli`](crate::health::HealthSnapshot::degraded_milli).
    pub health_milli: u64,
    /// Additive inflation while a scrub ran within the window, per-mille.
    pub scrub_penalty_milli: u64,
    /// Ticks after a scrub during which the penalty applies.
    pub scrub_window_ticks: u64,
    /// Seed of this model's jitter stream (domain-separated internally).
    pub seed: u64,
}

impl LatencyModel {
    /// A healthy replica: no constant slowdown, full jitter, and gentle
    /// default couplings to load, health, and scrub activity.
    pub fn healthy(base: CostModel, seed: u64) -> Self {
        LatencyModel {
            base,
            slow_factor_milli: 1000,
            degrade_milli_per_kilotick: 0,
            jitter_milli: 1000,
            load_milli_per_queued: 2,
            health_milli: 500,
            scrub_penalty_milli: 250,
            scrub_window_ticks: 64,
            seed,
        }
    }

    /// A constantly slow replica: [`LatencyModel::healthy`] stretched by
    /// `factor_milli` per-mille (floored at 1000 = 1x).
    pub fn slowed(base: CostModel, factor_milli: u64, seed: u64) -> Self {
        LatencyModel { slow_factor_milli: factor_milli.max(1000), ..Self::healthy(base, seed) }
    }

    /// A replica whose slowdown grows by `milli_per_kilotick` per 1000
    /// ticks — the aging/degrading scenario family.
    pub fn degrading(base: CostModel, milli_per_kilotick: u64, seed: u64) -> Self {
        LatencyModel { degrade_milli_per_kilotick: milli_per_kilotick, ..Self::healthy(base, seed) }
    }

    /// A fully deterministic model (zero jitter, zero couplings) at a
    /// fixed slowdown — exact tick pins for regression tests.
    pub fn exact(base: CostModel, factor_milli: u64, seed: u64) -> Self {
        LatencyModel {
            base,
            slow_factor_milli: factor_milli.max(1000),
            degrade_milli_per_kilotick: 0,
            jitter_milli: 0,
            load_milli_per_queued: 0,
            health_milli: 0,
            scrub_penalty_milli: 0,
            scrub_window_ticks: 0,
            seed,
        }
    }

    /// Validates the model knobs.
    ///
    /// # Errors
    ///
    /// [`FerexError::InvalidPolicy`] on a slowdown below 1x, jitter above
    /// the table spread, or a base model that charges zero ticks.
    pub fn validate(&self) -> Result<(), FerexError> {
        if self.slow_factor_milli < 1000 {
            return Err(FerexError::InvalidPolicy {
                what: "latency slow factor must be at least 1000 milli (1x)",
            });
        }
        if self.jitter_milli > 1000 {
            return Err(FerexError::InvalidPolicy {
                what: "latency jitter must be at most 1000 milli",
            });
        }
        if self.base.service_ticks(1) == 0 {
            return Err(FerexError::InvalidPolicy {
                what: "latency base cost must charge at least one tick per batch",
            });
        }
        Ok(())
    }

    /// The jitter multiplier of one draw, in per-mille: a quantized
    /// log-normal table entry, pulled toward 1000 by `jitter_milli`.
    /// Exactly 1000 when jitter is disabled.
    pub fn jitter_multiplier_milli(&self, draw: u64) -> u64 {
        if self.jitter_milli == 0 {
            return 1000;
        }
        let r = splitmix64(self.seed ^ splitmix64(draw ^ LATENCY_STREAM_SALT));
        let idx = (r >> 60) as usize;
        let dev = QLN_MILLI.get(idx).copied().unwrap_or(1000) - 1000;
        let scaled = 1000i64 + dev * (self.jitter_milli.min(1000) as i64) / 1000;
        scaled.max(1) as u64
    }

    /// Modeled service ticks of a batch of `batch` queries: draw `draw`
    /// (a batch sequence number — each replica's model seed makes the
    /// streams independent), at virtual tick `tick` (drives the degrade
    /// slope), with `inflation_milli` of additive load/health/scrub
    /// inflation supplied by the caller. Always at least 1 tick.
    pub fn service_ticks(&self, batch: usize, tick: u64, draw: u64, inflation_milli: u64) -> u64 {
        let base = self.base.service_ticks(batch).max(1) as u128;
        let slow = (self.slow_factor_milli as u128)
            .saturating_add(
                (self.degrade_milli_per_kilotick as u128).saturating_mul(tick as u128) / 1000,
            )
            .min(MAX_SLOW_MILLI);
        let jitter = self.jitter_multiplier_milli(draw) as u128;
        let inflate = 1000u128 + inflation_milli.min(MAX_INFLATION_MILLI) as u128;
        let ticks = base * slow / 1000 * jitter / 1000 * inflate / 1000;
        (ticks.min(u64::MAX as u128) as u64).max(1)
    }
}

/// Hedged-request policy of the serving loop.
///
/// When the slowest pending quorum read of a batch is modeled to exceed
/// the `quantile_milli` quantile of the healthiest replica's expected
/// service distribution, the loop issues one duplicate read to the
/// best-ranked replica not already reading the batch. First completion
/// wins and the loser is cancelled; because replica answers depend only
/// on `(query, qid)`, the served payloads are bit-identical either way —
/// hedging is purely a timing overlay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HedgePolicy {
    /// Per-mille quantile of the healthy service distribution after which
    /// a hedge fires; 50..=999 (e.g. 950 hedges past the p95 tick count).
    pub quantile_milli: u64,
    /// Hedge budget in hedges per 1000 batches; 1..=1000. Bounds the
    /// extra read load so hedges cannot amplify an overload.
    pub budget_milli: u64,
}

impl Default for HedgePolicy {
    fn default() -> Self {
        HedgePolicy { quantile_milli: 950, budget_milli: 250 }
    }
}

impl HedgePolicy {
    /// Validates the policy knobs.
    ///
    /// # Errors
    ///
    /// [`FerexError::InvalidPolicy`] on a quantile outside 50..=999 or a
    /// budget outside 1..=1000.
    pub fn validate(&self) -> Result<(), FerexError> {
        if !(50..=999).contains(&self.quantile_milli) {
            return Err(FerexError::InvalidPolicy {
                what: "hedge quantile must be between 50 and 999 milli",
            });
        }
        if !(1..=1000).contains(&self.budget_milli) {
            return Err(FerexError::InvalidPolicy {
                what: "hedge budget must be between 1 and 1000 milli",
            });
        }
        Ok(())
    }
}

/// Brownout demotion of slow-but-alive replicas.
///
/// The loop tracks a per-replica EWMA of the observed service multiplier
/// (per-mille of the expected cost-model charge) on the virtual tick
/// clock. A replica whose EWMA crosses the threshold is *demoted*: a
/// routing demerit pushes it below every healthy replica (it stays
/// eligible — a brownout, not the breaker's hard Open). After the
/// re-probe backoff the demerit lifts and the next read is a half-open
/// probe: a probe within the threshold rehabilitates the replica, a slow
/// probe re-demotes it with doubled backoff.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BrownoutPolicy {
    /// EWMA multiplier (per-mille of the expected charge) above which a
    /// replica is demoted; must be above 1000 (1x).
    pub demote_threshold_milli: u64,
    /// Ticks a demoted replica sits out before its first re-probe;
    /// doubles per failed probe (capped at 64x).
    pub reprobe_ticks: u64,
    /// EWMA smoothing shift: alpha = 1 / 2^ewma_shift; 0..=16.
    pub ewma_shift: u32,
}

impl Default for BrownoutPolicy {
    fn default() -> Self {
        BrownoutPolicy { demote_threshold_milli: 2500, reprobe_ticks: 2048, ewma_shift: 2 }
    }
}

impl BrownoutPolicy {
    /// Validates the policy knobs.
    ///
    /// # Errors
    ///
    /// [`FerexError::InvalidPolicy`] on a threshold at or below 1000
    /// milli, a zero re-probe backoff, or an EWMA shift above 16.
    pub fn validate(&self) -> Result<(), FerexError> {
        if self.demote_threshold_milli <= 1000 {
            return Err(FerexError::InvalidPolicy {
                what: "brownout demotion threshold must be above 1000 milli",
            });
        }
        if self.reprobe_ticks == 0 {
            return Err(FerexError::InvalidPolicy {
                what: "brownout re-probe backoff must be at least 1 tick",
            });
        }
        if self.ewma_shift > 16 {
            return Err(FerexError::InvalidPolicy {
                what: "brownout EWMA shift must be at most 16",
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> CostModel {
        CostModel { batch_setup_ticks: 52, per_query_ticks: 10 }
    }

    #[test]
    fn qln_table_is_monotone_and_centered() {
        assert!(QLN_MILLI.windows(2).all(|w| w[0] < w[1]), "table must be strictly increasing");
        // A log-normal's mean sits above its median by e^(sigma^2/2) —
        // about 1032 per-mille at sigma = 0.25.
        let mean: i64 = QLN_MILLI.iter().sum::<i64>() / 16;
        assert!((1020..=1045).contains(&mean), "table mean {mean} drifted off e^(s^2/2)");
        assert_eq!(qln_quantile_milli(500), 1020);
        assert_eq!(qln_quantile_milli(950), 1593);
        assert_eq!(qln_quantile_milli(999), 1593);
        assert_eq!(qln_quantile_milli(50), 628);
    }

    #[test]
    fn exact_model_reproduces_the_base_cost() {
        let m = LatencyModel::exact(base(), 1000, 7);
        for b in [1usize, 8, 16, 64] {
            assert_eq!(m.service_ticks(b, 0, b as u64, 0), base().service_ticks(b));
        }
        let m8 = LatencyModel::exact(base(), 8000, 7);
        assert_eq!(m8.service_ticks(16, 0, 3, 0), base().service_ticks(16) * 8);
    }

    #[test]
    fn jitter_is_seeded_and_spans_the_table() {
        let m = LatencyModel::healthy(base(), 42);
        let draws: Vec<u64> = (0..256).map(|d| m.jitter_multiplier_milli(d)).collect();
        let again: Vec<u64> = (0..256).map(|d| m.jitter_multiplier_milli(d)).collect();
        assert_eq!(draws, again, "same seed, same stream");
        let other = LatencyModel::healthy(base(), 43);
        assert_ne!(draws, (0..256).map(|d| other.jitter_multiplier_milli(d)).collect::<Vec<_>>());
        let lo = draws.iter().min().copied().unwrap_or(0);
        let hi = draws.iter().max().copied().unwrap_or(0);
        assert_eq!((lo, hi), (628, 1593), "256 draws should span the 16-bin table");
    }

    #[test]
    fn degrade_and_inflation_terms_stretch_service() {
        // Jitter off so the slope is exact: +1000 milli per kilotick
        // means the slowdown at tick 4000 is exactly 5x.
        let m = LatencyModel { jitter_milli: 0, ..LatencyModel::degrading(base(), 1000, 5) };
        let fresh = m.service_ticks(16, 0, 0, 0);
        let aged = m.service_ticks(16, 4000, 0, 0);
        assert_eq!(fresh, base().service_ticks(16));
        assert_eq!(aged, fresh * 5);
        let calm = LatencyModel::exact(base(), 1000, 5);
        assert_eq!(calm.service_ticks(16, 0, 0, 1000), base().service_ticks(16) * 2);
        // Inflation is capped: absurd terms cannot run away.
        assert_eq!(
            calm.service_ticks(16, 0, 0, u64::MAX),
            base().service_ticks(16) * 5,
            "inflation cap is +4000 milli"
        );
    }

    #[test]
    fn validation_rejects_degenerate_knobs() {
        assert!(LatencyModel::healthy(base(), 1).validate().is_ok());
        let sub = LatencyModel { slow_factor_milli: 999, ..LatencyModel::healthy(base(), 1) };
        assert!(sub.validate().is_err());
        let wild = LatencyModel { jitter_milli: 1001, ..LatencyModel::healthy(base(), 1) };
        assert!(wild.validate().is_err());
        let zero = CostModel { batch_setup_ticks: 0, per_query_ticks: 0 };
        assert!(LatencyModel::healthy(zero, 1).validate().is_err());

        assert!(HedgePolicy::default().validate().is_ok());
        assert!(HedgePolicy { quantile_milli: 49, budget_milli: 250 }.validate().is_err());
        assert!(HedgePolicy { quantile_milli: 1000, budget_milli: 250 }.validate().is_err());
        assert!(HedgePolicy { quantile_milli: 950, budget_milli: 0 }.validate().is_err());
        assert!(HedgePolicy { quantile_milli: 950, budget_milli: 1001 }.validate().is_err());

        assert!(BrownoutPolicy::default().validate().is_ok());
        let b = BrownoutPolicy::default();
        assert!(BrownoutPolicy { demote_threshold_milli: 1000, ..b }.validate().is_err());
        assert!(BrownoutPolicy { reprobe_ticks: 0, ..b }.validate().is_err());
        assert!(BrownoutPolicy { ewma_shift: 17, ..b }.validate().is_err());
    }
}
