//! The FeReX associative-memory array: stored symbol vectors, searched in
//! one shot, nearest row reported by the LTA.
//!
//! A *logical* vector of `dim` b-bit symbols occupies one array row of
//! `dim × K` physical FeFET columns (K FeFETs per AM cell, from the sizing
//! step). Three backends expose the same API:
//!
//! * [`Backend::Ideal`] — noiseless functional model: cell currents are the
//!   encoding's exact integer units and the LTA is an exact argmin. This is
//!   the "software-based implementation" the paper compares accuracy
//!   against.
//! * [`Backend::Circuit`] — device-level model: a [`Crossbar`] of
//!   [`ferex_fefet::Cell`]s with device-to-device variation, IR drop and an
//!   offset-afflicted LTA. This is the Monte-Carlo subject of Fig. 7.
//! * [`Backend::Noisy`] — statistical variation model with the same error
//!   mechanisms but no per-cell device objects; tractable at
//!   application scale (HDC/KNN) and cross-validated against `Circuit`.
//!
//! # Lifecycle: program, then search
//!
//! Mutation and sensing are separate phases, mirroring the hardware. Writes
//! ([`FerexArray::store`], [`FerexArray::update`], …) mark the physical
//! state stale; [`FerexArray::program`] is the explicit, idempotent
//! transition that instantiates it (crossbar cells or variation samples).
//! Every read — [`FerexArray::distances`], [`FerexArray::search`],
//! [`FerexArray::search_batch`] — then takes `&self`, so a programmed array
//! can serve queries from many threads concurrently. Searching a stochastic
//! backend whose state is stale returns [`FerexError::NotProgrammed`]; the
//! ideal backend has no physical state and never needs programming.
//!
//! Sensing noise (the LTA offset) is drawn from a generator derived per
//! query: [`FerexArray::search_at`] seeds it from the backend seed and the
//! caller's query id, [`FerexArray::search`] assigns ids from an internal
//! counter, and [`FerexArray::search_batch`] uses the batch index — so on a
//! freshly programmed array, a loop of single searches and one batched call
//! produce bit-identical outcomes.

use crate::encoding::CellEncoding;
use crate::error::FerexError;
use crate::health::{
    FaultAttribution, HealthCounters, HealthSnapshot, ProgramReport, RepairPolicy, RowHealth,
    ScrubFinding, ScrubReport, SpareState,
};
use crate::mutate::{
    CompactionReport, MutableNode, MutationPolicy, MutationState, SlotState, WearSummary,
};
use crate::soa::{self, SoaCodes};
use ferex_analog::crossbar::{ArrayOptions, ColumnDrive, Crossbar};
use ferex_analog::delay::DelayModel;
use ferex_analog::lta::LtaParams;
use ferex_analog::parasitics::WireParams;
use ferex_fefet::faults::EffectiveCell;
use ferex_fefet::math::splitmix64;
use ferex_fefet::units::{Amp, Volt};
use ferex_fefet::{CellFault, CellReadback, CellVerify, FaultPlan, Technology, VariationModel};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// Domain-separation salt for per-query sensing streams, keeping them
/// disjoint from the per-tile seed derivation that feeds the same mixer.
const QUERY_STREAM_SALT: u64 = 0x51E0_D9AD_35B6_9E21;

/// Largest `Noisy` batch served by the scalar path instead of the dense
/// per-batch contribution table. Building the table evaluates every stored
/// cell against *all* `n_search` drive symbols — about `n_search` scalar
/// query passes of work — so batches of one or two queries finish sooner
/// on the scalar path they are bit-identical to anyway.
const NOISY_LUT_CROSSOVER: usize = 2;

/// Resistance scale applied to a [`CellFault::ResistorOpen`] cell in the
/// device-level backend: large enough that the residual current is far
/// below the sensing floor, small enough to keep the bisection solve
/// well-conditioned.
const OPEN_RESISTANCE_SCALE: f64 = 1.0e9;

/// Circuit-backend configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitConfig {
    /// Device-to-device variation model.
    pub variation: VariationModel,
    /// LTA comparator parameters.
    pub lta: LtaParams,
    /// Array electrical options (IR drop, exact solve, ScL bias).
    pub options: ArrayOptions,
    /// Wire parasitics.
    pub wire: WireParams,
    /// Fault-injection and aging campaign. The default plan is benign (no
    /// hard faults, no aging), so existing configurations are unaffected.
    /// Per-cell fault maps derive from this config's `seed`, so the Noisy
    /// and Circuit backends built from the same config fault the same
    /// cells — the basis of the differential conformance checks.
    pub faults: FaultPlan,
    /// Seed for variation sampling, fault maps and LTA offset noise.
    pub seed: u64,
}

impl Default for CircuitConfig {
    fn default() -> Self {
        CircuitConfig {
            variation: VariationModel::default(),
            lta: LtaParams::default(),
            options: ArrayOptions::default(),
            wire: WireParams::default(),
            faults: FaultPlan::none(),
            seed: 0xFE12EC5,
        }
    }
}

/// Which physical fidelity the array simulates at.
#[derive(Debug, Clone, PartialEq)]
pub enum Backend {
    /// Exact integer currents, exact argmin.
    Ideal,
    /// Device-level crossbar with variation and sensing offset: every cell
    /// is a full FeFET (Preisach ensemble + transistor + resistor). Highest
    /// fidelity, heavy — use for arrays up to a few thousand cells.
    Circuit(Box<CircuitConfig>),
    /// Statistical variation model without device objects: per-cell
    /// threshold shifts flip marginal ON/OFF decisions and per-cell resistor
    /// deviations scale ON currents, with the same LTA offset model.
    /// Memory-light — use for application-scale arrays (HDC, KNN). Validated
    /// against `Circuit` in the Fig. 7 cross-check.
    Noisy(Box<CircuitConfig>),
}

/// Result of one search operation.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOutcome {
    /// Sensed row distances in `I_unit` multiples (circuit backends include
    /// analog error).
    pub distances: Vec<f64>,
    /// Row index the LTA reported as nearest.
    pub nearest: usize,
}

/// A FeReX associative-memory array.
///
/// # Examples
///
/// ```
/// use ferex_core::array::{Backend, FerexArray};
/// use ferex_core::sizing::{find_minimal_cell, SizingOptions};
/// use ferex_core::{DistanceMatrix, DistanceMetric};
/// use ferex_fefet::Technology;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let dm = DistanceMatrix::from_metric(DistanceMetric::Hamming, 2);
/// let report = find_minimal_cell(&dm, &SizingOptions::default())?;
/// let mut array = FerexArray::new(Technology::default(), report.encoding, 4, Backend::Ideal);
/// array.store(vec![0, 1, 2, 3])?;
/// array.store(vec![3, 2, 1, 0])?;
/// array.program(); // explicit write→search transition (no-op for Ideal)
/// let out = array.search(&[0, 1, 2, 2])?;
/// assert_eq!(out.nearest, 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct FerexArray {
    tech: Technology,
    encoding: CellEncoding,
    dim: usize,
    backend: Backend,
    stored: Vec<Vec<u32>>,
    /// Structure-of-arrays mirror of `stored`: all symbol codes quantized
    /// to `u8` in one contiguous `rows × dim` buffer, maintained eagerly by
    /// every mutator. The batched Ideal kernels read this instead of the
    /// row-per-allocation `Vec<Vec<u32>>`.
    codes: SoaCodes,
    crossbar: Option<Crossbar>,
    /// Per-cell variation samples of the `Noisy` backend (row-major).
    noisy_samples: Option<Vec<ferex_fefet::DeviceSample>>,
    /// Per-cell hard-fault map (row-major physical cells), materialized by
    /// [`FerexArray::program`] when the backend's fault plan is non-benign.
    fault_map: Option<Vec<CellFault>>,
    /// Aged per-level thresholds (index = stored level), materialized
    /// alongside `fault_map`; `None` means fresh nominal levels.
    aged_vth: Option<Vec<Volt>>,
    /// Backend seed, cached for per-query stream derivation.
    seed: u64,
    /// Generator consumed by [`FerexArray::program`] (variation sampling).
    program_rng: StdRng,
    /// Monotone query-id source for [`FerexArray::search`] /
    /// [`FerexArray::search_k`]; atomic so issuing searches needs only
    /// `&self`.
    query_counter: AtomicU64,
    /// Self-healing policy; `None` keeps the array byte-identical to the
    /// policy-free behavior (no spares, no sentinels, no verification).
    repair: Option<RepairPolicy>,
    /// Logical-row → health map; empty means identity (no policy active).
    row_map: Vec<RowHealth>,
    /// Allocation state of the spare physical rows.
    spare_state: Vec<SpareState>,
    /// Lifetime health counters (survive re-programming).
    counters: HealthCounters,
    /// Cached report of the last [`FerexArray::program_verified`] pass,
    /// dropped whenever the physical state is invalidated.
    program_report: Option<ProgramReport>,
    /// Online-mutation state (`None` keeps the legacy positional-mutator
    /// behavior byte-identical); see [`FerexArray::enable_mutation`].
    mutation: Option<MutationState>,
}

impl Clone for FerexArray {
    fn clone(&self) -> Self {
        FerexArray {
            tech: self.tech.clone(),
            encoding: self.encoding.clone(),
            dim: self.dim,
            backend: self.backend.clone(),
            stored: self.stored.clone(),
            codes: self.codes.clone(),
            crossbar: self.crossbar.clone(),
            noisy_samples: self.noisy_samples.clone(),
            fault_map: self.fault_map.clone(),
            aged_vth: self.aged_vth.clone(),
            seed: self.seed,
            program_rng: self.program_rng.clone(),
            query_counter: AtomicU64::new(self.query_counter.load(Ordering::Relaxed)),
            repair: self.repair.clone(),
            row_map: self.row_map.clone(),
            spare_state: self.spare_state.clone(),
            counters: self.counters,
            program_report: self.program_report.clone(),
            mutation: self.mutation.clone(),
        }
    }
}

impl FerexArray {
    /// Creates an empty array for vectors of `dim` symbols.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(tech: Technology, encoding: CellEncoding, dim: usize, backend: Backend) -> Self {
        assert!(dim > 0, "vector dimension must be positive");
        let seed = match &backend {
            Backend::Ideal => 0,
            Backend::Circuit(c) | Backend::Noisy(c) => c.seed,
        };
        FerexArray {
            tech,
            encoding,
            dim,
            backend,
            stored: Vec::new(),
            codes: SoaCodes::new(dim),
            crossbar: None,
            noisy_samples: None,
            fault_map: None,
            aged_vth: None,
            seed,
            program_rng: StdRng::seed_from_u64(seed),
            query_counter: AtomicU64::new(0),
            repair: None,
            row_map: Vec::new(),
            spare_state: Vec::new(),
            counters: HealthCounters::default(),
            program_report: None,
            mutation: None,
        }
    }

    /// Number of stored vectors (array rows in use).
    pub fn len(&self) -> usize {
        self.stored.len()
    }

    /// `true` if no vectors are stored.
    pub fn is_empty(&self) -> bool {
        self.stored.is_empty()
    }

    /// Symbols per stored vector.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Physical FeFET columns per row (`dim × K`).
    pub fn physical_cols(&self) -> usize {
        self.dim * self.encoding.k
    }

    /// The cell encoding this array is programmed with.
    pub fn encoding(&self) -> &CellEncoding {
        &self.encoding
    }

    /// The simulation backend driving this array.
    pub fn backend(&self) -> &Backend {
        &self.backend
    }

    /// The stored vectors, in row order.
    pub fn stored(&self) -> &[Vec<u32>] {
        &self.stored
    }

    /// Swaps in a new encoding (reconfiguration to another distance
    /// function). Stored data is kept; the physical array will be
    /// re-programmed on the next search.
    pub fn reconfigure(&mut self, encoding: CellEncoding) -> Result<(), FerexError> {
        for v in &self.stored {
            for &s in v {
                if s as usize >= encoding.n_stored() {
                    return Err(FerexError::SymbolOutOfRange {
                        value: s,
                        n_values: encoding.n_stored(),
                    });
                }
            }
        }
        self.encoding = encoding;
        self.invalidate_physical_state();
        Ok(())
    }

    /// Drops all materialized physical state (crossbar cells, variation
    /// samples, fault maps, row health): any mutation re-stales the array
    /// until the next [`FerexArray::program`]. The lifetime health
    /// counters survive.
    fn invalidate_physical_state(&mut self) {
        self.crossbar = None;
        self.noisy_samples = None;
        self.fault_map = None;
        self.aged_vth = None;
        self.row_map.clear();
        self.spare_state.clear();
        self.program_report = None;
    }

    /// Spare physical rows reserved by the repair policy.
    fn spares(&self) -> usize {
        self.repair.as_ref().map_or(0, |p| p.spare_rows)
    }

    /// Sentinel physical rows reserved by the repair policy.
    fn sentinels(&self) -> usize {
        self.repair.as_ref().map_or(0, |p| p.sentinel_rows)
    }

    /// Physical rows the backends materialize: logical rows first (so their
    /// variation draws and fault-map entries stay exactly where the
    /// policy-free array puts them), then spares, then sentinels.
    fn physical_rows(&self) -> usize {
        self.stored.len() + self.spares() + self.sentinels()
    }

    /// Physical index of spare slot `j`.
    fn spare_phys(&self, j: usize) -> usize {
        self.stored.len() + j
    }

    /// Physical index of sentinel `j`.
    fn sentinel_phys(&self, j: usize) -> usize {
        self.stored.len() + self.spares() + j
    }

    /// The physical row currently serving logical row `r`, or `None` when
    /// the row is excluded from search — quarantined without a spare, or
    /// (in mutation mode) a free/tombstoned slot. Every distance kernel
    /// routes exclusions through here, so tombstones are skipped
    /// bit-identically on the scalar and batched paths.
    fn physical_row(&self, r: usize) -> Option<usize> {
        if let Some(m) = &self.mutation {
            if !m.is_live(r) {
                return None;
            }
        }
        self.phys_for_slot(r)
    }

    /// The physical row backing slot `r` through the repair map alone,
    /// ignoring slot liveness — the write target of mutation-path delta
    /// programs (which fill slots that are not live *yet*).
    fn phys_for_slot(&self, r: usize) -> Option<usize> {
        match self.row_map.get(r).copied().unwrap_or(RowHealth::Healthy) {
            RowHealth::Healthy => Some(r),
            RowHealth::Remapped { spare } => Some(spare),
            RowHealth::Quarantined => None,
        }
    }

    /// The known codeword sentinel `j` is programmed with: a rotating ramp
    /// over the stored alphabet, so every level appears and adjacent
    /// sentinels differ.
    fn sentinel_codeword(&self, j: usize) -> Vec<u32> {
        let n = self.encoding.n_stored();
        (0..self.dim).map(|d| ((d + j) % n) as u32).collect() // lint:allow(cast-truncation/narrowing, reason = "value < n_stored, which fits u32 by construction")
    }

    /// `true` when every logical row is quarantined (or, in mutation mode,
    /// no slot is live) — nothing left to serve.
    fn all_excluded(&self) -> bool {
        if let Some(m) = &self.mutation {
            if m.live_len() == 0 {
                return true;
            }
        }
        !self.row_map.is_empty() && self.row_map.iter().all(|h| matches!(h, RowHealth::Quarantined))
    }

    /// Checks that a vector has this array's dimension and that every
    /// symbol is representable under the current encoding, without storing
    /// anything (used by callers that need all-or-nothing store semantics,
    /// e.g. [`crate::tile::TiledArray::store`]).
    ///
    /// # Errors
    ///
    /// Dimension or symbol-range violations.
    pub fn validate(&self, vector: &[u32]) -> Result<(), FerexError> {
        if vector.len() != self.dim {
            return Err(FerexError::DimensionMismatch { expected: self.dim, got: vector.len() });
        }
        for &s in vector {
            if s as usize >= self.encoding.n_stored() {
                return Err(FerexError::SymbolOutOfRange {
                    value: s,
                    n_values: self.encoding.n_stored(),
                });
            }
        }
        Ok(())
    }

    /// Stores one vector into the next free row.
    ///
    /// # Errors
    ///
    /// Dimension or symbol-range violations;
    /// [`FerexError::InvalidPolicy`] on a mutation-enabled array (the slot
    /// table owns row assignment — use [`FerexArray::insert`]).
    pub fn store(&mut self, vector: Vec<u32>) -> Result<(), FerexError> {
        if self.mutation.is_some() {
            return Err(FerexError::InvalidPolicy {
                what: "positional store on a mutation-enabled array; use insert(id, vector)",
            });
        }
        self.validate(&vector)?;
        self.codes.push_row(&vector);
        self.stored.push(vector);
        self.invalidate_physical_state(); // re-program lazily
        Ok(())
    }

    /// Stores many vectors.
    pub fn store_all<I: IntoIterator<Item = Vec<u32>>>(
        &mut self,
        vectors: I,
    ) -> Result<(), FerexError> {
        for v in vectors {
            self.store(v)?;
        }
        Ok(())
    }

    /// Clears all stored vectors. On a mutation-enabled array this also
    /// drops the slot table and wear counters — the array reverts to the
    /// positional-mutator lifecycle.
    pub fn clear(&mut self) {
        self.stored.clear();
        self.codes.clear();
        self.mutation = None;
        self.invalidate_physical_state();
    }

    /// Removes the vector at `row` (later rows shift up — the physical
    /// analogue is erasing the row and compacting the row map). Returns the
    /// removed vector.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range, or on a mutation-enabled array
    /// (row indices shift here, which would corrupt the slot table — use
    /// [`FerexArray::delete`]).
    pub fn remove(&mut self, row: usize) -> Vec<u32> {
        assert!(
            self.mutation.is_none(),
            "positional remove on a mutation-enabled array; use delete(id)"
        );
        assert!(row < self.stored.len(), "row {row} out of range");
        let removed = self.stored.remove(row);
        self.codes.remove_row(row);
        self.invalidate_physical_state();
        removed
    }

    /// Replaces the vector at `row` in place (a row re-program).
    ///
    /// # Errors
    ///
    /// Validation errors; [`FerexError::InvalidPolicy`] on a
    /// mutation-enabled array (use [`FerexArray::update_id`]). The array
    /// is unchanged on error.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn update(&mut self, row: usize, vector: Vec<u32>) -> Result<(), FerexError> {
        if self.mutation.is_some() {
            return Err(FerexError::InvalidPolicy {
                what: "positional update on a mutation-enabled array; use update_id(id, vector)",
            });
        }
        assert!(row < self.stored.len(), "row {row} out of range");
        self.validate(&vector)?;
        self.codes.set_row(row, &vector);
        self.stored[row] = vector; // lint:allow(panic-safety/index, reason = "row asserted in range above")
        self.invalidate_physical_state();
        Ok(())
    }

    /// Builds the column drives for a query (shared by search and the cost
    /// models).
    pub fn drives_for(&self, query: &[u32]) -> Result<Vec<ColumnDrive>, FerexError> {
        self.validate(query)?;
        let k = self.encoding.k;
        let mut drives = Vec::with_capacity(self.dim * k);
        // lint:allow(panic-safety/index, reason = "query symbols are validated against the encoding above; f < k and every encoding carries exactly k levels")
        for &q in query {
            let se = &self.encoding.search[q as usize];
            for f in 0..k {
                let v_gate = self.tech.search_voltage(se.vgs_levels[f]);
                let m = se.vds_multiples[f];
                let v_dl = if m == 0 { Volt(0.0) } else { self.tech.vds_for_multiple(m as usize) };
                drives.push(ColumnDrive { v_gate, v_dl });
            }
        }
        Ok(drives)
    }

    /// Programs the physical state for the current contents: the crossbar
    /// cells (`Circuit`) or the per-cell variation samples (`Noisy`). The
    /// explicit write→search phase transition: idempotent — re-invoking on
    /// an already-programmed array is a no-op — and required after any
    /// mutation before the `&self` read path will serve a stochastic
    /// backend. The ideal backend has no physical state; for it this is
    /// always a no-op.
    pub fn program(&mut self) {
        // A repair policy reserves spare and sentinel rows *after* the
        // logical rows, so the logical rows' variation draws and fault-map
        // entries are byte-identical to the policy-free layout.
        if self.repair.is_some() && self.row_map.len() != self.stored.len() {
            self.row_map = vec![RowHealth::Healthy; self.stored.len()];
            self.spare_state = vec![SpareState::Free; self.spares()];
        }
        match &self.backend {
            Backend::Ideal => {}
            Backend::Circuit(cfg) => {
                if self.crossbar.is_some() || self.stored.is_empty() {
                    return;
                }
                let rows = self.physical_rows();
                let cols = self.physical_cols();
                let plan = cfg.faults;
                let mut xb = Crossbar::with_variation(
                    self.tech.clone(),
                    cfg.wire,
                    rows,
                    cols,
                    &cfg.variation,
                    &mut self.program_rng,
                );
                let fault_map = (!plan.is_benign()).then(|| plan.fault_map(self.seed, rows * cols));
                let aged = plan.has_aging().then(|| plan.aged_vth_table(&self.tech));
                for (r, vector) in self.stored.iter().enumerate() {
                    program_crossbar_row(
                        &mut xb,
                        &self.tech,
                        &self.encoding,
                        &plan,
                        fault_map.as_deref(),
                        aged.as_deref(),
                        r,
                        vector,
                    );
                }
                // Sentinels carry known codewords; spares stay erased until
                // a remap re-stores a logical vector onto them.
                for j in 0..self.sentinels() {
                    let codeword = self.sentinel_codeword(j);
                    program_crossbar_row(
                        &mut xb,
                        &self.tech,
                        &self.encoding,
                        &plan,
                        fault_map.as_deref(),
                        aged.as_deref(),
                        self.sentinel_phys(j),
                        &codeword,
                    );
                }
                self.crossbar = Some(xb);
                self.fault_map = fault_map;
                self.aged_vth = aged;
            }
            Backend::Noisy(cfg) => {
                if self.noisy_samples.is_some() || self.stored.is_empty() {
                    return;
                }
                let n = self.physical_rows() * self.physical_cols();
                let variation = cfg.variation;
                let plan = cfg.faults;
                let samples = (0..n)
                    .map(|_| {
                        if variation.is_nominal() {
                            ferex_fefet::DeviceSample::NOMINAL
                        } else {
                            variation.sample(&mut self.program_rng)
                        }
                    })
                    .collect();
                self.noisy_samples = Some(samples);
                if !plan.is_benign() {
                    self.fault_map = Some(plan.fault_map(self.seed, n));
                    self.aged_vth = Some(plan.aged_vth_table(&self.tech));
                }
            }
        }
    }

    /// The per-cell fault map materialized by the last
    /// [`FerexArray::program`] (row-major physical cells), or `None` when
    /// the fault plan is benign, the array unprogrammed, or the backend
    /// ideal.
    pub fn fault_map(&self) -> Option<&[CellFault]> {
        self.fault_map.as_deref()
    }

    /// `true` when the physical state matches the stored contents — i.e.
    /// the `&self` read path will serve. Always `true` for the ideal
    /// backend and for an empty array.
    pub fn is_programmed(&self) -> bool {
        match &self.backend {
            Backend::Ideal => true,
            Backend::Circuit(_) => self.stored.is_empty() || self.crossbar.is_some(),
            Backend::Noisy(_) => self.stored.is_empty() || self.noisy_samples.is_some(),
        }
    }

    fn require_programmed(&self) -> Result<(), FerexError> {
        if self.is_programmed() {
            Ok(())
        } else {
            Err(FerexError::NotProgrammed)
        }
    }

    /// The sensing-noise generator for query id `qid`: derived from the
    /// backend seed by avalanche mixing, so streams for distinct ids (and
    /// for adjacent base seeds) are decorrelated, and a given `(seed, qid)`
    /// pair always reproduces the same draw.
    fn rng_for_query(&self, qid: u64) -> StdRng {
        StdRng::seed_from_u64(splitmix64(self.seed ^ splitmix64(qid ^ QUERY_STREAM_SALT)))
    }

    fn lta(&self) -> LtaParams {
        match &self.backend {
            Backend::Ideal => LtaParams::ideal(),
            Backend::Circuit(cfg) | Backend::Noisy(cfg) => cfg.lta,
        }
    }

    fn to_currents(&self, distances: &[f64]) -> Vec<Amp> {
        let i_unit = self.tech.i_unit().value();
        distances.iter().map(|&d| Amp(d * i_unit)).collect()
    }

    /// Raw sensed row distances (in `I_unit` multiples) for a query,
    /// without the LTA decision.
    ///
    /// # Errors
    ///
    /// [`FerexError::Empty`] if nothing is stored; validation errors for a
    /// malformed query; [`FerexError::NotProgrammed`] if a stochastic
    /// backend's state is stale (call [`FerexArray::program`] after
    /// mutating).
    /// Quarantined rows (no spare left) sense as `f64::INFINITY`: they
    /// still occupy their logical index — so every other row keeps its id —
    /// but can never win the LTA.
    pub fn distances(&self, query: &[u32]) -> Result<Vec<f64>, FerexError> {
        self.validate(query)?;
        if self.stored.is_empty() {
            return Err(FerexError::Empty);
        }
        self.require_programmed()?;
        if self.all_excluded() {
            return Err(FerexError::Empty);
        }
        match &self.backend {
            Backend::Ideal => Ok((0..self.stored.len())
                .map(|r| {
                    if self.physical_row(r).is_none() {
                        return f64::INFINITY;
                    }
                    self.stored[r] // lint:allow(panic-safety/index, reason = "r < stored.len() by the range bound")
                        .iter()
                        .zip(query)
                        .map(|(&s, &q)| self.encoding.cell_current(q as usize, s as usize) as f64)
                        .sum() // lint:allow(float-order/accumulation, reason = "integer I_unit multiples bounded by dim * k * max_vds << 2^53; d-major order matches the batch path")
                })
                .collect()),
            Backend::Circuit(cfg) => {
                let drives = self.drives_for(query)?;
                let Some(xb) = self.crossbar.as_ref() else {
                    return Err(FerexError::NotProgrammed);
                };
                let i_unit = self.tech.i_unit().value();
                let currents = xb.search(&drives, &cfg.options);
                if self.row_map.is_empty() {
                    return Ok(currents.into_iter().map(|i| i.value() / i_unit).collect());
                }
                Ok((0..self.stored.len())
                    .map(|r| match self.physical_row(r) {
                        Some(p) => currents.get(p).map_or(f64::INFINITY, |i| i.value() / i_unit),
                        None => f64::INFINITY,
                    })
                    .collect())
            }
            Backend::Noisy(cfg) => {
                let Some(samples) = self.noisy_samples.as_ref() else {
                    return Err(FerexError::NotProgrammed);
                };
                let plan = &cfg.faults;
                let k = self.encoding.k;
                let cols = self.physical_cols();
                let mut out = Vec::with_capacity(self.stored.len());
                for (r, row) in self.stored.iter().enumerate() {
                    let Some(phys) = self.physical_row(r) else {
                        out.push(f64::INFINITY);
                        continue;
                    };
                    let mut units = 0.0f64;
                    // lint:allow(panic-safety/index, reason = "stored/query symbols are validated at store and search time; f < k, and index < rows x cols by construction from the same dims the sample table was sized with")
                    for (d, (&s, &q)) in row.iter().zip(query).enumerate() {
                        let st = &self.encoding.stored[s as usize];
                        let se = &self.encoding.search[q as usize];
                        for f in 0..k {
                            let m = se.vds_multiples[f];
                            if m == 0 {
                                continue;
                            }
                            let index = phys * cols + d * k + f;
                            let v_gate = self.tech.search_voltage(se.vgs_levels[f]);
                            // lint:allow(float-order/accumulation, reason = "bounded per-cell units in fixed d-major order shared with the batch path")
                            units += self.noisy_cell_units(
                                plan,
                                index,
                                st.vth_levels[f],
                                &samples[index],
                                v_gate,
                                m,
                            );
                        }
                    }
                    out.push(units);
                }
                Ok(out)
            }
        }
    }

    /// Row distances for every query of a batch.
    ///
    /// Semantically a loop of [`FerexArray::distances`] calls — results are
    /// bit-identical — but served through specialized kernels:
    ///
    /// * `Ideal` reads the contiguous structure-of-arrays code buffer
    ///   instead of the row-per-allocation `Vec<Vec<u32>>`: a Hamming-exact
    ///   encoding runs word-parallel XOR + popcount over packed bit-planes,
    ///   every other encoding runs per-query current LUTs laid out
    ///   contiguously, both cache-blocked rows-outer / queries-inner over
    ///   balanced query chunks.
    /// * `Noisy` precomputes one table of (stored cell × query symbol)
    ///   current contributions per batch — built row-parallel — turning the
    ///   per-query inner loop into pure lookups; batches of one or two
    ///   queries skip the table (it costs `n_search` query-loops to build,
    ///   so tiny batches are served faster by the scalar path it exactly
    ///   reproduces).
    /// * `Circuit` re-solves the crossbar per query and just fans out.
    ///
    /// # Errors
    ///
    /// As [`FerexArray::distances`]; the whole batch is validated before
    /// any work happens.
    pub fn distances_batch(&self, queries: &[Vec<u32>]) -> Result<Vec<Vec<f64>>, FerexError> {
        // An empty batch asks for nothing: answer it before any state
        // checks, so it cannot trip over an empty or stale array.
        if queries.is_empty() {
            return Ok(Vec::new());
        }
        for q in queries {
            self.validate(q)?;
        }
        if self.stored.is_empty() {
            return Err(FerexError::Empty);
        }
        self.require_programmed()?;
        if self.all_excluded() {
            return Err(FerexError::Empty);
        }
        match &self.backend {
            Backend::Noisy(_) if queries.len() <= NOISY_LUT_CROSSOVER => {
                queries.iter().map(|q| self.distances(q)).collect()
            }
            Backend::Noisy(_) => self.noisy_distances_batch(queries),
            // The SoA kernels read u8 codes; any encoding wider than 256
            // stored levels (none exist today — the encoder caps alphabets
            // at 64) falls back to the scalar fan-out.
            Backend::Ideal if self.encoding.n_stored() <= 256 => {
                Ok(self.ideal_distances_batch_soa(queries))
            }
            // Circuit re-solves the crossbar per query; fan the scalar
            // path out over threads.
            Backend::Ideal | Backend::Circuit(_) => {
                let out: Result<Vec<Vec<f64>>, FerexError> =
                    queries.par_iter().map(|q| self.distances(q)).collect();
                out
            }
        }
    }

    /// Names the kernel [`FerexArray::distances_batch`] would dispatch a
    /// batch of `batch` queries to, mirroring its dispatch exactly:
    /// `"scalar"` (per-query fan-out or the small-batch Noisy crossover),
    /// `"contrib-table"` (Noisy dense contribution table),
    /// `"bitplane-popcount"` (Ideal + realized XOR-popcount encoding), or
    /// `"lut"` (Ideal per-query current LUTs). Purely informational — used
    /// by benchmarks and reports to label measurements.
    pub fn batch_kernel(&self, batch: usize) -> &'static str {
        match &self.backend {
            Backend::Noisy(_) if batch <= NOISY_LUT_CROSSOVER => "scalar",
            Backend::Noisy(_) => "contrib-table",
            Backend::Ideal if self.encoding.n_stored() <= 256 => {
                if soa::is_xor_popcount(&self.encoding) {
                    "bitplane-popcount"
                } else {
                    "lut"
                }
            }
            Backend::Ideal | Backend::Circuit(_) => "scalar",
        }
    }

    /// The `Ideal` batched kernels over the structure-of-arrays code
    /// buffer. Dispatches to XOR-popcount over packed bit-planes when the
    /// realized encoding is exactly bitwise Hamming, and to per-query
    /// current LUTs otherwise. Both kernels accumulate exact integer
    /// currents in `u64` and convert once per row — bit-identical to the
    /// scalar `f64` sum because every partial sum is an integer below 2⁵³
    /// (see `soa` module docs).
    fn ideal_distances_batch_soa(&self, queries: &[Vec<u32>]) -> Vec<Vec<f64>> {
        let rows = self.stored.len();
        debug_assert_eq!(self.codes.rows(), rows, "SoA code buffer out of sync");
        let dim = self.dim;
        let phys_of: Vec<Option<usize>> = (0..rows).map(|r| self.physical_row(r)).collect();
        let ranges = soa::balanced_ranges(queries.len(), rayon::current_num_threads());

        if soa::is_xor_popcount(&self.encoding) {
            // Bit-plane path: pack stored codes once per batch (row-major,
            // planes contiguous per row), pack each chunk's queries the
            // same way, and reduce every (row, query) pair to XOR +
            // popcount over `bits × ceil(dim/64)` words.
            let bits = self.encoding.n_stored().trailing_zeros();
            let words = dim.div_ceil(64);
            let stride = bits as usize * words;
            let mut row_planes = vec![0u64; rows * stride];
            row_planes.par_chunks_mut(stride).enumerate().for_each(|(r, planes)| {
                soa::pack_bit_planes(self.codes.row(r), bits, words, planes);
            });
            // lint:allow(panic-safety/index, reason = "hot kernel: chunk ranges come from balanced_ranges(queries.len()), plane strides and row indices are sized in this function; checked indexing would defeat the batch win")
            let per_chunk: Vec<Vec<Vec<f64>>> = ranges
                .par_iter()
                .map(|range| {
                    let qs = &queries[range.clone()];
                    let mut q_planes = vec![0u64; qs.len() * stride];
                    let mut q_codes = vec![0u8; dim];
                    for (qi, q) in qs.iter().enumerate() {
                        for (c, &s) in q_codes.iter_mut().zip(q.iter()) {
                            *c = (s & 0xff) as u8; // lint:allow(cast-truncation/narrowing, reason = "masked to the low 8 bits first; symbols validated < 256 for the SoA path")
                        }
                        soa::pack_bit_planes(
                            &q_codes,
                            bits,
                            words,
                            &mut q_planes[qi * stride..(qi + 1) * stride],
                        );
                    }
                    let mut out = vec![vec![0.0f64; rows]; qs.len()];
                    for r in 0..rows {
                        if phys_of[r].is_none() {
                            for row_out in &mut out {
                                row_out[r] = f64::INFINITY;
                            }
                            continue;
                        }
                        let rp = &row_planes[r * stride..(r + 1) * stride];
                        for (qi, row_out) in out.iter_mut().enumerate() {
                            let qp = &q_planes[qi * stride..(qi + 1) * stride];
                            row_out[r] = soa::popcount_distance(rp, qp) as f64;
                        }
                    }
                    out
                })
                .collect();
            return per_chunk.into_iter().flatten().collect();
        }

        // LUT path: one contiguous current LUT per query in the chunk
        // (`dim` rows of `n_stored` entries each), then rows-outer /
        // queries-inner so each row's code slice stays cache-hot across
        // the whole chunk.
        let n_stored = self.encoding.n_stored();
        let lut_stride = dim * n_stored;
        // lint:allow(panic-safety/index, reason = "hot kernel: chunk ranges come from balanced_ranges(queries.len()), LUT strides and row indices are sized in this function; checked indexing would defeat the batch win")
        let per_chunk: Vec<Vec<Vec<f64>>> = ranges
            .par_iter()
            .map(|range| {
                let qs = &queries[range.clone()];
                let mut luts = Vec::with_capacity(qs.len() * lut_stride);
                for q in qs {
                    luts.extend(soa::query_lut(&self.encoding, q));
                }
                let mut out = vec![vec![0.0f64; rows]; qs.len()];
                for r in 0..rows {
                    if phys_of[r].is_none() {
                        for row_out in &mut out {
                            row_out[r] = f64::INFINITY;
                        }
                        continue;
                    }
                    let codes = self.codes.row(r);
                    for (qi, row_out) in out.iter_mut().enumerate() {
                        let lut = &luts[qi * lut_stride..(qi + 1) * lut_stride];
                        row_out[r] = soa::lut_distance(lut, n_stored, codes) as f64;
                    }
                }
                out
            })
            .collect();
        per_chunk.into_iter().flatten().collect()
    }

    /// One `Noisy`-backend cell's current contribution in `I_unit`
    /// multiples — the single definition shared by the scalar
    /// ([`FerexArray::distances`]) and batched
    /// ([`FerexArray::noisy_distances_batch`]) read paths, so the two stay
    /// bit-identical under any fault plan. With no fault state materialized
    /// this reduces to the nominal resistor-clamp expression
    /// `I = m / r_factor` gated on `V_gate > V_th + ΔV_th`.
    #[inline]
    fn noisy_cell_units(
        &self,
        plan: &FaultPlan,
        index: usize,
        level: usize,
        sample: &ferex_fefet::DeviceSample,
        v_gate: Volt,
        m: u32,
    ) -> f64 {
        if let (Some(map), Some(aged)) = (&self.fault_map, &self.aged_vth) {
            let fault = map.get(index).copied().unwrap_or(CellFault::None);
            let eff: EffectiveCell = plan.effective_cell(&self.tech, fault, aged, level, sample);
            match eff.vth {
                Some(vth) if v_gate > vth => m as f64 / eff.r_factor,
                _ => 0.0,
            }
        } else {
            let vth = self.tech.vth_level(level) + sample.dvth;
            if v_gate > vth {
                // Resistor clamp: I = V_ds / (R·r_factor).
                m as f64 / sample.r_factor
            } else {
                0.0
            }
        }
    }

    /// The `Noisy` fast path: one contribution table per batch.
    ///
    /// `contrib[((r·dim + d)·n_search + q)·k + f]` holds the current (in
    /// `I_unit` multiples) cell `(r, d, f)` adds when driven with query
    /// symbol `q` — zero for OFF cells. Summation order over `(d, f)`
    /// matches the scalar path exactly, and adding the 0.0 entries the
    /// scalar path skips is exact for these non-negative terms, so batch
    /// distances are bit-identical to [`FerexArray::distances`].
    fn noisy_distances_batch(&self, queries: &[Vec<u32>]) -> Result<Vec<Vec<f64>>, FerexError> {
        let (Some(samples), Backend::Noisy(cfg)) = (self.noisy_samples.as_ref(), &self.backend)
        else {
            return Err(FerexError::NotProgrammed);
        };
        let plan = &cfg.faults;
        let k = self.encoding.k;
        let dim = self.dim;
        let cols = self.physical_cols();
        let n_search = self.encoding.search.len();
        let rows = self.stored.len();
        let row_stride = dim * n_search * k;

        // Each logical row reads through its current physical row (itself,
        // or the spare it was remapped to); excluded rows keep a zeroed LUT
        // slice and are forced to INFINITY after accumulation, matching the
        // scalar path bit for bit.
        let phys_of: Vec<Option<usize>> = (0..rows).map(|r| self.physical_row(r)).collect();
        // Build the table row-parallel: each worker owns one row's
        // contiguous `row_stride` slice, so there is no sharing and the
        // table contents are independent of the thread count.
        let mut contrib = vec![0.0f64; rows * row_stride];
        // lint:allow(panic-safety/index, reason = "hot kernel: each worker owns one row_stride slice of the table it indexes with offsets sized from the same dims; stored/encoding indices are validated at store time")
        contrib.par_chunks_mut(row_stride).enumerate().for_each(|(r, row_lut)| {
            let Some(phys) = phys_of[r] else { return };
            for (d, &s) in self.stored[r].iter().enumerate() {
                let st = &self.encoding.stored[s as usize];
                let cell_base = d * n_search * k;
                for (q, se) in self.encoding.search.iter().enumerate() {
                    for f in 0..k {
                        let m = se.vds_multiples[f];
                        if m == 0 {
                            continue;
                        }
                        let index = phys * cols + d * k + f;
                        let v_gate = self.tech.search_voltage(se.vgs_levels[f]);
                        row_lut[cell_base + q * k + f] = self.noisy_cell_units(
                            plan,
                            index,
                            st.vth_levels[f],
                            &samples[index],
                            v_gate,
                            m,
                        );
                    }
                }
            }
        });

        // Fan queries out in balanced contiguous chunks — every worker gets
        // a chunk, sizes differing by at most one (the old `div_ceil`
        // chunking could idle workers on non-divisible batches). Within a
        // chunk iterate rows outer / queries inner so one row's table slice
        // stays cache-hot across the whole chunk.
        let ranges = soa::balanced_ranges(queries.len(), rayon::current_num_threads());
        // lint:allow(panic-safety/index, reason = "hot kernel: chunk ranges come from balanced_ranges(queries.len()), table offsets are sized from the same dims the table was built with; query symbols are validated before dispatch")
        let per_chunk: Vec<Vec<Vec<f64>>> = ranges
            .par_iter()
            .map(|range| {
                let qs = &queries[range.clone()];
                let mut out = vec![vec![0.0f64; rows]; qs.len()];
                for r in 0..rows {
                    let row_lut = &contrib[r * row_stride..(r + 1) * row_stride];
                    for (qi, query) in qs.iter().enumerate() {
                        let mut units = 0.0f64;
                        for (d, &q) in query.iter().enumerate() {
                            let base = (d * n_search + q as usize) * k;
                            for c in &row_lut[base..base + k] {
                                units += c; // lint:allow(float-order/accumulation, reason = "bounded per-cell units in fixed d-major LUT order shared with the scalar path")
                            }
                        }
                        out[qi][r] = if phys_of[r].is_some() { units } else { f64::INFINITY };
                    }
                }
                out
            })
            .collect();
        Ok(per_chunk.into_iter().flatten().collect())
    }

    /// One associative search with an explicit query id: senses all rows
    /// and reports the LTA's nearest row, drawing sensing noise from the
    /// stream derived for `qid`. The deterministic building block —
    /// `search_at(q, i)` always reproduces the same outcome on the same
    /// programmed array, from any thread.
    ///
    /// # Errors
    ///
    /// As [`FerexArray::distances`].
    pub fn search_at(&self, query: &[u32], qid: u64) -> Result<SearchOutcome, FerexError> {
        let distances = self.distances(query)?;
        Ok(self.sense_nearest(distances, qid))
    }

    fn sense_nearest(&self, distances: Vec<f64>, qid: u64) -> SearchOutcome {
        let currents = self.to_currents(&distances);
        let decision = self.lta().sense(&currents, &mut self.rng_for_query(qid));
        SearchOutcome { distances, nearest: decision.loser }
    }

    /// One associative search: [`FerexArray::search_at`] with the next id
    /// from the array's internal query counter (fresh sensing noise per
    /// call, no `&mut` needed).
    ///
    /// # Errors
    ///
    /// As [`FerexArray::distances`].
    pub fn search(&self, query: &[u32]) -> Result<SearchOutcome, FerexError> {
        let qid = self.query_counter.fetch_add(1, Ordering::Relaxed);
        self.search_at(query, qid)
    }

    /// Searches a whole batch, assigning query ids `0..queries.len()`:
    /// equivalent to `queries.iter().enumerate().map(|(i, q)|
    /// self.search_at(q, i as u64))`, with distances served through the
    /// batched fast path of [`FerexArray::distances_batch`]. Pure in
    /// `&self` — concurrent batches over a shared array return identical
    /// results.
    ///
    /// # Errors
    ///
    /// As [`FerexArray::distances_batch`].
    pub fn search_batch(&self, queries: &[Vec<u32>]) -> Result<Vec<SearchOutcome>, FerexError> {
        let distances = self.distances_batch(queries)?;
        Ok(distances
            .into_iter()
            .enumerate()
            .map(|(i, d)| self.sense_nearest(d, i as u64))
            .collect())
    }

    /// Searches a whole batch with an explicit query id per entry:
    /// equivalent to `queries.iter().zip(qids).map(|(q, &id)|
    /// self.search_at(q, id))`, with distances served through the batched
    /// fast path. Because sensing noise is keyed purely on the query id,
    /// outcomes are bit-identical to the individual searches regardless of
    /// how requests were grouped into batches — the property the serving
    /// loop's batch former relies on.
    ///
    /// # Errors
    ///
    /// [`FerexError::DimensionMismatch`] when `qids` and `queries` differ
    /// in length; otherwise as [`FerexArray::distances_batch`].
    pub fn search_batch_at(
        &self,
        queries: &[Vec<u32>],
        qids: &[u64],
    ) -> Result<Vec<SearchOutcome>, FerexError> {
        if qids.len() != queries.len() {
            return Err(FerexError::DimensionMismatch { expected: queries.len(), got: qids.len() });
        }
        let distances = self.distances_batch(queries)?;
        Ok(distances.into_iter().zip(qids).map(|(d, &qid)| self.sense_nearest(d, qid)).collect())
    }

    /// Digital distance readout: senses all rows and digitizes the row
    /// currents with the given ADC (full scale auto-ranged to the encoding
    /// maximum if `adc.full_scale` is zero). Returns per-row distance
    /// *codes* plus the conversion cost — the readout mode used when the
    /// application needs distance values rather than just the argmin
    /// (e.g. cross-tile accumulation or confidence scores).
    ///
    /// # Errors
    ///
    /// As [`FerexArray::distances`].
    pub fn read_digital(
        &self,
        query: &[u32],
        adc: &ferex_analog::adc::AdcParams,
        parallelism: usize,
    ) -> Result<ferex_analog::adc::AdcReadout, FerexError> {
        let distances = self.distances(query)?;
        let i_unit = self.tech.i_unit().value();
        let currents = self.to_currents(&distances);
        let adc = if adc.full_scale.value() > 0.0 {
            *adc
        } else {
            // Auto-range: the worst-case row distance is max-DM-entry per
            // symbol across the whole vector.
            let max_units =
                (self.encoding.max_vds_multiple as usize * self.encoding.k * self.dim) as f64;
            ferex_analog::adc::AdcParams { full_scale: Amp(max_units * i_unit), ..*adc }
        };
        Ok(adc.read_out(&currents, parallelism))
    }

    fn sense_k(&self, distances: &[f64], k: usize, qid: u64) -> Result<Vec<usize>, FerexError> {
        // Quarantined rows sense as INFINITY: they stay in the current
        // vector (so RNG draws and logical ids line up with the healthy
        // case) but can never be reported, so k is bounded by the rows
        // actually served.
        let active = distances.iter().filter(|d| d.is_finite()).count();
        if k == 0 || k > active {
            return Err(FerexError::InvalidK { k, rows: active });
        }
        let currents = self.to_currents(distances);
        Ok(self.lta().sense_k(&currents, k, &mut self.rng_for_query(qid)))
    }

    /// k-nearest search via iterative LTA masking, with an explicit query
    /// id (see [`FerexArray::search_at`]).
    ///
    /// # Errors
    ///
    /// As [`FerexArray::distances`]; [`FerexError::InvalidK`] when `k` is
    /// zero or exceeds the number of stored vectors.
    pub fn search_k_at(&self, query: &[u32], k: usize, qid: u64) -> Result<Vec<usize>, FerexError> {
        let distances = self.distances(query)?;
        self.sense_k(&distances, k, qid)
    }

    /// k-nearest search via iterative LTA masking, drawing the query id
    /// from the internal counter.
    ///
    /// # Errors
    ///
    /// As [`FerexArray::search_k_at`].
    pub fn search_k(&self, query: &[u32], k: usize) -> Result<Vec<usize>, FerexError> {
        let qid = self.query_counter.fetch_add(1, Ordering::Relaxed);
        self.search_k_at(query, k, qid)
    }

    /// k-nearest search for a whole batch, assigning query ids
    /// `0..queries.len()`; distances come through the batched fast path.
    ///
    /// # Errors
    ///
    /// As [`FerexArray::distances_batch`] and [`FerexArray::search_k_at`].
    pub fn search_k_batch(
        &self,
        queries: &[Vec<u32>],
        k: usize,
    ) -> Result<Vec<Vec<usize>>, FerexError> {
        let distances = self.distances_batch(queries)?;
        distances.into_iter().enumerate().map(|(i, d)| self.sense_k(&d, k, i as u64)).collect()
    }

    // ------------------------------------------------------------------
    // Self-healing: write-verify, scrub, row sparing, health surface.
    // ------------------------------------------------------------------

    /// Installs a repair policy. Any physical state is invalidated (the
    /// layout gains spare and sentinel rows), so the array must be
    /// re-programmed.
    ///
    /// # Errors
    ///
    /// [`FerexError::InvalidPolicy`] if any knob is out of range; the
    /// array is left unchanged.
    pub fn set_repair_policy(&mut self, policy: RepairPolicy) -> Result<(), FerexError> {
        policy.validate()?;
        self.repair = Some(policy);
        self.invalidate_physical_state();
        Ok(())
    }

    /// The installed repair policy, if any.
    pub fn repair_policy(&self) -> Option<&RepairPolicy> {
        self.repair.as_ref()
    }

    /// Health of one logical row ([`RowHealth::Healthy`] before any policy
    /// has acted).
    pub fn row_health(&self, row: usize) -> RowHealth {
        self.row_map.get(row).copied().unwrap_or(RowHealth::Healthy)
    }

    /// The report of the last [`FerexArray::program_verified`] pass, if the
    /// physical state is still current.
    pub fn program_report(&self) -> Option<&ProgramReport> {
        self.program_report.as_ref()
    }

    /// Point-in-time health view: lifetime counters plus the current spare
    /// and row-map occupancy.
    pub fn health(&self) -> HealthSnapshot {
        let spares_in_use =
            self.spare_state.iter().filter(|s| matches!(s, SpareState::Assigned(_))).count();
        let spares_burned =
            self.spare_state.iter().filter(|s| matches!(s, SpareState::Burned)).count();
        let quarantined =
            self.row_map.iter().filter(|h| matches!(h, RowHealth::Quarantined)).count();
        let remapped =
            self.row_map.iter().filter(|h| matches!(h, RowHealth::Remapped { .. })).count();
        // Wear surface: percentiles of the per-slot mutation write counts
        // plus the endurance headroom left on the hottest slot. Without
        // mutation no wear is recorded, so the device reads as fresh.
        let (wear, headroom) = match &self.mutation {
            Some(m) => {
                let w = m.wear();
                let margin = Volt(m.policy.min_margin_volts);
                let h = m.policy.endurance.headroom_milli(&self.tech, w.max_cycles as f64, margin);
                (w, h)
            }
            None => (WearSummary::default(), 1000),
        };
        HealthSnapshot {
            counters: self.counters,
            spare_rows: if self.row_map.is_empty() {
                self.spares()
            } else {
                self.spare_state.len()
            },
            spares_in_use,
            spares_burned,
            rows_active: self.stored.len() - quarantined,
            rows_quarantined_now: quarantined,
            rows_remapped_now: remapped,
            wear_max_cycles: wear.max_cycles,
            wear_mean_milli: wear.mean_milli,
            wear_p50_cycles: wear.p50_cycles,
            wear_p90_cycles: wear.p90_cycles,
            wear_headroom_milli: headroom,
        }
    }

    /// The fault plan behind the backend (benign for the ideal backend).
    fn plan(&self) -> FaultPlan {
        match &self.backend {
            Backend::Ideal => FaultPlan::none(),
            Backend::Circuit(cfg) | Backend::Noisy(cfg) => cfg.faults,
        }
    }

    /// Post-program readback of the cell at (`phys`, `col`), programmed to
    /// threshold `level`: the signal the write-verify loop judges.
    ///
    /// # Errors
    ///
    /// [`FerexError::NotProgrammed`] when the physical state backing the
    /// cell is missing (e.g. a mutation landed mid-repair) — the serving
    /// process must survive that, not abort.
    fn readback_cell(
        &self,
        phys: usize,
        col: usize,
        level: usize,
    ) -> Result<CellReadback, FerexError> {
        let index = phys * self.physical_cols() + col;
        let fault =
            self.fault_map.as_ref().and_then(|m| m.get(index)).copied().unwrap_or(CellFault::None);
        let target = self
            .aged_vth
            .as_ref()
            .and_then(|a| a.get(level))
            .copied()
            .unwrap_or_else(|| self.tech.vth_level(level));
        Ok(match &self.backend {
            Backend::Ideal => CellReadback {
                residual: Volt(0.0),
                r_deviation: 0.0,
                conducts: true,
                repairable: true,
            },
            Backend::Noisy(cfg) => {
                let samples = self.noisy_samples.as_ref().ok_or(FerexError::NotProgrammed)?;
                // A cell outside the sample table was never programmed.
                let sample = samples.get(index).ok_or(FerexError::NotProgrammed)?;
                let r_dev = (sample.r_factor - 1.0).abs();
                match fault {
                    CellFault::None => CellReadback {
                        residual: sample.dvth,
                        r_deviation: r_dev,
                        conducts: true,
                        repairable: true,
                    },
                    CellFault::StuckAtLowVth => CellReadback {
                        residual: self.tech.vth_level(0) + sample.dvth - target,
                        r_deviation: r_dev,
                        conducts: true,
                        repairable: false,
                    },
                    CellFault::StuckAtHighVth | CellFault::ResistorOpen => CellReadback {
                        residual: Volt(0.0),
                        r_deviation: f64::INFINITY,
                        conducts: false,
                        repairable: false,
                    },
                    CellFault::ResistorShort => CellReadback {
                        residual: sample.dvth,
                        r_deviation: (sample.r_factor * cfg.faults.short_residual_r - 1.0).abs(),
                        conducts: true,
                        repairable: false,
                    },
                }
            }
            Backend::Circuit(_) => {
                let cell = self.crossbar.as_ref().ok_or(FerexError::NotProgrammed)?.cell(phys, col);
                let (conducts, repairable) = match fault {
                    CellFault::None => (true, true),
                    CellFault::StuckAtLowVth | CellFault::ResistorShort => (true, false),
                    CellFault::StuckAtHighVth | CellFault::ResistorOpen => (false, false),
                };
                CellReadback {
                    residual: cell.fefet().vth(&self.tech) - target,
                    r_deviation: cell.r_deviation(&self.tech),
                    conducts,
                    repairable,
                }
            }
        })
    }

    /// Commits a trim of `delta` volts onto the cell's threshold (the net
    /// effect of the retry pulses the verify loop spent).
    ///
    /// # Errors
    ///
    /// [`FerexError::NotProgrammed`] when there is no physical state to
    /// trim.
    fn apply_trim(&mut self, phys: usize, col: usize, delta: Volt) -> Result<(), FerexError> {
        let index = phys * self.physical_cols() + col;
        match &self.backend {
            Backend::Ideal => {}
            Backend::Noisy(_) => {
                let samples = self.noisy_samples.as_mut().ok_or(FerexError::NotProgrammed)?;
                if let Some(s) = samples.get_mut(index) {
                    s.dvth += delta;
                }
            }
            Backend::Circuit(_) => {
                let tech = self.tech.clone();
                let fe = self
                    .crossbar
                    .as_mut()
                    .ok_or(FerexError::NotProgrammed)?
                    .cell_mut(phys, col)
                    .fefet_mut()
                    .ferroelectric_mut();
                let base = tech.vth_from_polarization(fe.polarization());
                fe.set_polarization(tech.polarization_for_vth(base + delta));
            }
        }
        Ok(())
    }

    /// Write-verifies every cell of the physical row holding `symbols`,
    /// committing trims for repaired cells; returns the per-row tally.
    ///
    /// # Errors
    ///
    /// [`FerexError::NotProgrammed`] when the physical state vanished
    /// underneath the verify loop.
    fn verify_row(
        &mut self,
        phys: usize,
        symbols: &[u32],
        policy: &RepairPolicy,
    ) -> Result<RowVerify, FerexError> {
        let k = self.encoding.k;
        let mut rv = RowVerify::default();
        for (d, &s) in symbols.iter().enumerate() {
            let levels = self.encoding.stored[s as usize].vth_levels.clone(); // lint:allow(panic-safety/index, reason = "symbols validated at store time")
            for (f, &level) in levels.iter().enumerate().take(k) {
                let col = d * k + f;
                let rb = self.readback_cell(phys, col, level)?;
                match policy.verify.verify(&rb) {
                    CellVerify::Clean => rv.clean += 1,
                    CellVerify::Repaired { retries, residual } => {
                        rv.repaired += 1;
                        rv.retries += retries;
                        self.counters.repairs_attempted += 1;
                        self.counters.repairs_succeeded += 1;
                        self.apply_trim(phys, col, residual - rb.residual)?;
                    }
                    CellVerify::Failed { retries } => {
                        rv.failed += 1;
                        rv.retries += retries;
                        self.counters.repairs_attempted += 1;
                        self.counters.cells_given_up += 1;
                        rv.bad.push(col);
                    }
                }
            }
        }
        Ok(rv)
    }

    /// Quarantines a logical row and tries to bring up a spare for it:
    /// each free spare is programmed with the row's vector and
    /// write-verified; a spare that fails verify itself is burned and the
    /// next one is tried. With no spare left the row is excluded.
    ///
    /// # Errors
    ///
    /// [`FerexError::NotProgrammed`] when the physical state is missing
    /// mid-quarantine; the row stays quarantined, nothing is served stale.
    fn quarantine_internal(
        &mut self,
        row: usize,
        policy: &RepairPolicy,
    ) -> Result<RemapResult, FerexError> {
        self.counters.rows_quarantined += 1;
        // Re-quarantining a remapped row retires the spare that just
        // misbehaved.
        // lint:allow(panic-safety/index, reason = "row_map is sized to stored at program time and row comes from a bounds-checked caller; j < spare_state.len() by the loop bound")
        if let RowHealth::Remapped { spare } = self.row_map[row] {
            for j in 0..self.spare_state.len() {
                if self.spare_phys(j) == spare {
                    self.spare_state[j] = SpareState::Burned;
                }
            }
        }
        let mut result = RemapResult::default();
        let symbols = self.stored[row].clone(); // lint:allow(panic-safety/index, reason = "row bounds-checked by the quarantine caller")
                                                // lint:allow(panic-safety/index, reason = "j < spare_state.len() by the loop bound; row_map is sized to stored at program time")
        for j in 0..self.spare_state.len() {
            if self.spare_state[j] != SpareState::Free {
                continue;
            }
            let phys = self.spare_phys(j);
            if matches!(self.backend, Backend::Circuit(_)) {
                // Re-store the logical vector onto the spare's cells (they
                // were left erased by program()).
                let plan = self.plan();
                let mut xb = match self.crossbar.take() {
                    Some(xb) => xb,
                    None => {
                        self.row_map[row] = RowHealth::Quarantined;
                        return Err(FerexError::NotProgrammed);
                    }
                };
                program_crossbar_row(
                    &mut xb,
                    &self.tech,
                    &self.encoding,
                    &plan,
                    self.fault_map.as_deref(),
                    self.aged_vth.as_deref(),
                    phys,
                    &symbols,
                );
                self.crossbar = Some(xb);
            }
            let rv = self.verify_row(phys, &symbols, policy)?;
            result.retries += rv.retries;
            if rv.bad.len() <= policy.max_bad_cells_per_row {
                self.spare_state[j] = SpareState::Assigned(row);
                self.row_map[row] = RowHealth::Remapped { spare: phys };
                result.spare = Some(phys);
                return Ok(result);
            }
            self.spare_state[j] = SpareState::Burned;
            result.burned += 1;
        }
        self.row_map[row] = RowHealth::Quarantined;
        Ok(result)
    }

    /// Programs the array and write-verifies every cell: in-tolerance cells
    /// pass, out-of-tolerance repairable cells are re-pulsed with the
    /// policy's bounded exponential backoff, and rows with more failed
    /// cells than the policy tolerates are quarantined and remapped onto
    /// spares (excluded when the pool runs dry). Installs
    /// [`RepairPolicy::default`] if no policy is set.
    ///
    /// Idempotent like [`FerexArray::program`]: on an already-verified
    /// array the cached report is returned unchanged. Deterministic under a
    /// fixed seed — two identically built arrays produce identical reports.
    ///
    /// # Errors
    ///
    /// [`FerexError::VerifyFailed`] in strict mode when a row cannot be
    /// verified (the array is left partially trimmed and should be
    /// re-programmed); [`FerexError::InvalidPolicy`] if the installed
    /// policy's knobs are out of range.
    pub fn program_verified(&mut self) -> Result<ProgramReport, FerexError> {
        let policy = match &self.repair {
            Some(p) => p.clone(),
            None => {
                let p = RepairPolicy::default();
                self.repair = Some(p.clone());
                self.invalidate_physical_state();
                p
            }
        };
        policy.validate()?;
        if self.is_programmed() {
            if let Some(report) = &self.program_report {
                return Ok(report.clone());
            }
        }
        self.program();
        let cols = self.physical_cols();
        let mut report = ProgramReport {
            rows: self.stored.len(),
            cells: self.stored.len() * cols,
            ..Default::default()
        };
        if matches!(self.backend, Backend::Ideal) || self.stored.is_empty() {
            // No physical state to verify: everything is trivially clean.
            report.cells_clean = report.cells;
            self.program_report = Some(report.clone());
            return Ok(report);
        }
        for r in 0..self.stored.len() {
            // Mutation mode: free and tombstoned slots are excluded from
            // search and may hold reclaimed (stale) physical content —
            // there is nothing to verify, they count as trivially clean.
            if let Some(m) = &self.mutation {
                if !m.is_live(r) {
                    report.cells_clean += cols;
                    continue;
                }
            }
            let symbols = self.stored[r].clone(); // lint:allow(panic-safety/index, reason = "r < stored.len() by the loop bound")
            let rv = self.verify_row(r, &symbols, &policy)?;
            report.cells_clean += rv.clean;
            report.cells_repaired += rv.repaired;
            report.cells_failed += rv.failed;
            report.retries += rv.retries;
            if rv.bad.len() > policy.max_bad_cells_per_row {
                if policy.strict {
                    let cell = rv.bad.first().copied().unwrap_or(0);
                    return Err(FerexError::VerifyFailed { row: r, cell });
                }
                report.rows_quarantined.push(r);
                let res = self.quarantine_internal(r, &policy)?;
                report.retries += res.retries;
                report.spares_burned += res.burned;
                match res.spare {
                    Some(phys) => report.rows_remapped.push((r, phys)),
                    None => report.rows_excluded.push(r),
                }
            }
        }
        for j in 0..self.sentinels() {
            let codeword = self.sentinel_codeword(j);
            let rv = self.verify_row(self.sentinel_phys(j), &codeword, &policy)?;
            report.retries += rv.retries;
            report.sentinel_cells_failed += rv.failed;
        }
        self.program_report = Some(report.clone());
        Ok(report)
    }

    /// Readback of the physical row holding `symbols` under a uniform
    /// probe, in `I_unit` multiples.
    ///
    /// # Errors
    ///
    /// [`FerexError::NotProgrammed`] when the backend's physical state is
    /// missing; probe-validation errors from the drive encoding.
    fn probe_row_units(
        &self,
        phys: usize,
        symbols: &[u32],
        probe: &[u32],
    ) -> Result<f64, FerexError> {
        match &self.backend {
            Backend::Ideal => Ok(symbols
                .iter()
                .zip(probe)
                .map(|(&s, &q)| self.encoding.cell_current(q as usize, s as usize) as f64)
                .sum()), // lint:allow(float-order/accumulation, reason = "integer I_unit multiples bounded by dim * k * max_vds << 2^53; d-major order matches the batch path")
            Backend::Circuit(cfg) => {
                let drives = self.drives_for(probe)?;
                let Some(xb) = self.crossbar.as_ref() else {
                    return Err(FerexError::NotProgrammed);
                };
                Ok(xb.row_current(phys, &drives, &cfg.options).value() / self.tech.i_unit().value())
            }
            Backend::Noisy(cfg) => {
                let Some(samples) = self.noisy_samples.as_ref() else {
                    return Err(FerexError::NotProgrammed);
                };
                let plan = &cfg.faults;
                let k = self.encoding.k;
                let cols = self.physical_cols();
                let mut units = 0.0f64;
                // lint:allow(panic-safety/index, reason = "probe symbols mirror validated stored symbols; f < k, and index < rows x cols by construction from the same dims the sample table was sized with")
                for (d, (&s, &q)) in symbols.iter().zip(probe).enumerate() {
                    let st = &self.encoding.stored[s as usize];
                    let se = &self.encoding.search[q as usize];
                    for f in 0..k {
                        let m = se.vds_multiples[f];
                        if m == 0 {
                            continue;
                        }
                        let index = phys * cols + d * k + f;
                        let v_gate = self.tech.search_voltage(se.vgs_levels[f]);
                        // lint:allow(float-order/accumulation, reason = "bounded per-cell units in fixed d-major order shared with the batch path")
                        units += self.noisy_cell_units(
                            plan,
                            index,
                            st.vth_levels[f],
                            &samples[index],
                            v_gate,
                            m,
                        );
                    }
                }
                Ok(units)
            }
        }
    }

    /// Probes one row with every uniform codeword and compares against the
    /// exact expected readback; returns a finding when any probe diverges
    /// beyond the policy's tolerances.
    ///
    /// # Errors
    ///
    /// As [`FerexArray::probe_row_units`].
    fn scrub_row(
        &self,
        phys: usize,
        row_id: usize,
        symbols: &[u32],
        policy: &RepairPolicy,
    ) -> Result<Option<ScrubFinding>, FerexError> {
        let mut worst: Option<(f64, f64)> = None;
        let mut saw_pos = false;
        let mut saw_neg = false;
        for q in 0..self.encoding.n_stored() {
            let probe = vec![q as u32; self.dim]; // lint:allow(cast-truncation/narrowing, reason = "q < n_stored, which fits u32 by construction")
            let expected: f64 =
                symbols.iter().map(|&s| self.encoding.cell_current(q, s as usize) as f64).sum(); // lint:allow(float-order/accumulation, reason = "integer I_unit multiples bounded by dim * k * max_vds << 2^53; d-major order matches the probe path")
            let measured = self.probe_row_units(phys, symbols, &probe)?;
            let div = measured - expected;
            let tol = policy.scrub_abs_tolerance.max(policy.scrub_rel_tolerance * expected);
            if div.abs() > tol {
                if div > 0.0 {
                    saw_pos = true;
                } else {
                    saw_neg = true;
                }
                if worst.is_none_or(|(w, _)| div.abs() > w.abs()) {
                    worst = Some((div, expected));
                }
            }
        }
        Ok(worst.map(|(divergence, expected)| ScrubFinding {
            row: row_id,
            divergence,
            expected,
            attribution: match (saw_pos, saw_neg) {
                (true, true) => FaultAttribution::Mixed,
                (true, false) => FaultAttribution::ExcessCurrent,
                _ => FaultAttribution::MissingCurrent,
            },
        }))
    }

    /// Modeled duration of one scrub probe (a single-row read) under the
    /// backend's LTA and wire parameters, in seconds. Pure arithmetic from
    /// the analog delay model — the scrub path never reads a wall clock,
    /// so scrub reports are bit-reproducible across runs and machines.
    fn probe_delay_seconds(&self) -> f64 {
        let (lta, wire) = match &self.backend {
            Backend::Ideal => (LtaParams::ideal(), WireParams::default()),
            Backend::Circuit(cfg) | Backend::Noisy(cfg) => (cfg.lta, cfg.wire),
        };
        let model = DelayModel { lta, wire, ..DelayModel::default() };
        model.search_delay(1, self.physical_cols().max(1)).total().value()
    }

    /// One online self-check pass: every active logical row and every
    /// sentinel is probed with the full stored alphabet and its readback
    /// compared against the exact expectation. Diverging rows are
    /// attributed to the fault taxonomy and quarantined (remapped onto
    /// spares where possible) — unless the divergence is array-wide, which
    /// is attributed to global drift and left for a re-program. Run it
    /// between batches or on a maintenance schedule.
    ///
    /// # Errors
    ///
    /// [`FerexError::NotProgrammed`] on a stale array,
    /// [`FerexError::Empty`] when nothing is stored.
    pub fn scrub(&mut self) -> Result<ScrubReport, FerexError> {
        self.require_programmed()?;
        if self.stored.is_empty() {
            return Err(FerexError::Empty);
        }
        let policy = self.repair.clone().unwrap_or(RepairPolicy {
            spare_rows: 0,
            sentinel_rows: 0,
            ..Default::default()
        });
        policy.validate()?;
        if self.row_map.is_empty() {
            self.row_map = vec![RowHealth::Healthy; self.stored.len()];
        }
        let mut findings: Vec<ScrubFinding> = Vec::new();
        let mut checked_logical = 0usize;
        for r in 0..self.stored.len() {
            let Some(phys) = self.physical_row(r) else { continue };
            checked_logical += 1;
            let symbols = self.stored[r].clone(); // lint:allow(panic-safety/index, reason = "r < stored.len() by the loop bound")
            if let Some(f) = self.scrub_row(phys, r, &symbols, &policy)? {
                findings.push(f);
            }
        }
        let mut sentinel_findings = 0usize;
        for j in 0..self.sentinels() {
            let codeword = self.sentinel_codeword(j);
            let finding =
                self.scrub_row(self.sentinel_phys(j), self.stored.len() + j, &codeword, &policy)?;
            if let Some(f) = finding {
                sentinel_findings += 1;
                findings.push(f);
            }
        }
        let logical_flagged = findings.len() - sentinel_findings;
        let global_drift = logical_flagged >= 2
            && logical_flagged as f64 >= policy.drift_fraction * checked_logical as f64;
        let mut rows_remapped = Vec::new();
        let mut rows_excluded = Vec::new();
        if global_drift {
            for f in &mut findings {
                f.attribution = FaultAttribution::Drift;
            }
        } else {
            let flagged: Vec<usize> =
                findings.iter().map(|f| f.row).filter(|&r| r < self.stored.len()).collect();
            for r in flagged {
                let res = self.quarantine_internal(r, &policy)?;
                match res.spare {
                    Some(phys) => rows_remapped.push((r, phys)),
                    None => rows_excluded.push(r),
                }
            }
        }
        // Modeled latency, not wall clock: probes issued times the analog
        // per-probe search delay — deterministic for a given geometry, so
        // two identical scrubs report identical latencies.
        let probes = (checked_logical + self.sentinels()) * self.encoding.n_stored();
        let elapsed = probes as f64 * self.probe_delay_seconds();
        self.counters.scrubs_completed += 1;
        self.counters.last_scrub_seconds = elapsed;
        Ok(ScrubReport {
            rows_checked: checked_logical + self.sentinels(),
            probes_per_row: self.encoding.n_stored(),
            findings,
            rows_remapped,
            rows_excluded,
            sentinel_findings,
            global_drift,
            latency_seconds: elapsed,
        })
    }

    /// Explicitly quarantines a logical row (e.g. on an external fault
    /// report) and remaps it onto a spare. Returns the spare's physical
    /// index on success.
    ///
    /// # Errors
    ///
    /// [`FerexError::NotProgrammed`] on a stale array;
    /// [`FerexError::SparesExhausted`] when no usable spare is left — the
    /// row is then *excluded* from search (graceful degradation), so the
    /// error reports the state change, it does not roll it back.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn quarantine_row(&mut self, row: usize) -> Result<usize, FerexError> {
        assert!(row < self.stored.len(), "row {row} out of range");
        self.require_programmed()?;
        let policy = self.repair.clone().unwrap_or(RepairPolicy {
            spare_rows: 0,
            sentinel_rows: 0,
            ..Default::default()
        });
        if self.row_map.is_empty() {
            self.row_map = vec![RowHealth::Healthy; self.stored.len()];
        }
        let res = self.quarantine_internal(row, &policy)?;
        match res.spare {
            Some(phys) => Ok(phys),
            None => Err(FerexError::SparesExhausted { row, spares: self.spare_state.len() }),
        }
    }
}

// ----------------------------------------------------------------------
// Online mutation: slot table, delta programming, wear leveling. See the
// `mutate` module docs for the state machine.
// ----------------------------------------------------------------------
impl FerexArray {
    /// Switches the array to online-mutation mode with a fixed physical
    /// capacity: the currently stored rows become live slots carrying
    /// their row index as logical id, the remaining slots up to
    /// `policy.capacity` are pre-expanded with zero vectors and marked
    /// free. Fixing the geometry up front means churn never changes the
    /// physical row count — variation-sample and fault-map draws stay
    /// exactly where a from-scratch `program()` puts them, which is what
    /// makes mutated arrays byte-comparable to freshly built ones.
    ///
    /// Any physical state is invalidated (the layout may have grown);
    /// re-program before searching a stochastic backend.
    ///
    /// # Errors
    ///
    /// [`FerexError::InvalidPolicy`] when the policy is out of range,
    /// mutation is already enabled, or more rows are stored than
    /// `policy.capacity`.
    pub fn enable_mutation(&mut self, policy: MutationPolicy) -> Result<(), FerexError> {
        policy.validate()?;
        if self.mutation.is_some() {
            return Err(FerexError::InvalidPolicy { what: "mutation is already enabled" });
        }
        if self.stored.len() > policy.capacity {
            return Err(FerexError::InvalidPolicy {
                what: "mutation capacity below the stored row count",
            });
        }
        let state = MutationState::new(policy, self.stored.len());
        while self.stored.len() < policy.capacity {
            let zeros = vec![0u32; self.dim];
            self.codes.push_row(&zeros);
            self.stored.push(zeros);
        }
        self.mutation = Some(state);
        self.invalidate_physical_state();
        Ok(())
    }

    /// `true` once [`FerexArray::enable_mutation`] succeeded.
    pub fn mutation_enabled(&self) -> bool {
        self.mutation.is_some()
    }

    /// The installed mutation policy, if mutation is enabled.
    pub fn mutation_policy(&self) -> Option<&MutationPolicy> {
        self.mutation.as_ref().map(|m| &m.policy)
    }

    /// Occupancy of physical slot `slot` (`None` out of range or when
    /// mutation is disabled).
    pub fn slot_state(&self, slot: usize) -> Option<SlotState> {
        self.mutation.as_ref().and_then(|m| m.slots.get(slot).copied())
    }

    /// The logical id slot `slot` serves, when live.
    pub fn id_at(&self, slot: usize) -> Option<u64> {
        match self.slot_state(slot) {
            Some(SlotState::Live(id)) => Some(id),
            _ => None,
        }
    }

    /// The slot currently serving logical id `id`.
    pub fn slot_of(&self, id: u64) -> Option<usize> {
        self.mutation.as_ref().and_then(|m| m.id_to_slot.get(&id).copied())
    }

    /// The stored vector of a live logical id.
    pub fn vector_of(&self, id: u64) -> Option<&[u32]> {
        self.slot_of(id).and_then(|s| self.stored.get(s)).map(|v| v.as_slice())
    }

    /// Live logical ids, ascending.
    pub fn live_ids(&self) -> Vec<u64> {
        self.mutation.as_ref().map(|m| m.id_to_slot.keys().copied().collect()).unwrap_or_default()
    }

    /// Count of live logical ids.
    pub fn live_len(&self) -> usize {
        self.mutation.as_ref().map_or(0, |m| m.live_len())
    }

    /// Count of tombstoned slots awaiting compaction.
    pub fn tombstones(&self) -> usize {
        self.mutation.as_ref().map_or(0, |m| m.tombstones())
    }

    /// The wear distribution across physical slots (all zero when
    /// mutation is disabled — bulk programming is not counted).
    pub fn wear(&self) -> WearSummary {
        self.mutation.as_ref().map(|m| m.wear()).unwrap_or_default()
    }

    /// `true` when slot `r` is serving a live id (always `true` when
    /// mutation is disabled — every row of a legacy array is live).
    pub fn slot_live(&self, r: usize) -> bool {
        self.mutation.as_ref().is_none_or(|m| m.is_live(r))
    }

    fn mutation_required(&self) -> Result<&MutationState, FerexError> {
        self.mutation
            .as_ref()
            .ok_or(FerexError::InvalidPolicy { what: "mutation is not enabled on this array" })
    }

    /// Replaces slot `slot`'s logical contents (stored vector + SoA code
    /// mirror) without touching slot state.
    fn set_slot_contents(&mut self, slot: usize, vector: Vec<u32>) {
        if let Some(s) = self.stored.get_mut(slot) {
            self.codes.set_row(slot, &vector);
            *s = vector;
        }
    }

    /// Zeroes slot `slot`'s logical contents in place (stored row and SoA
    /// mirror) — the reclaim/rollback twin of `set_slot_contents`, with
    /// no scratch allocation.
    fn zero_slot_contents(&mut self, slot: usize) {
        if let Some(s) = self.stored.get_mut(slot) {
            s.fill(0);
            self.codes.zero_row(slot);
        }
    }

    /// Delta-programs physical slot `slot` with the contents already
    /// committed to `stored[slot]`, through the same write-verify path as
    /// [`FerexArray::program_verified`]: program the row, verify every
    /// cell with bounded retry and trim commits, quarantine-and-remap on
    /// unrepairable rows (or fail typed in strict mode). Counts one wear
    /// cycle for the attempt — succeeded or not, the pulse was spent.
    ///
    /// On an unprogrammed array this is a pure accounting step: the
    /// pending bulk `program()` will write the row.
    ///
    /// # Errors
    ///
    /// [`FerexError::VerifyFailed`] under a strict repair policy;
    /// [`FerexError::NotProgrammed`] when the physical state vanished
    /// mid-write.
    pub(crate) fn mutation_write_slot(
        &mut self,
        slot: usize,
        vector: &[u32],
    ) -> Result<(), FerexError> {
        let Some(m) = self.mutation.as_mut() else {
            return Err(FerexError::InvalidPolicy {
                what: "mutation is not enabled on this array",
            });
        };
        m.writes += 1;
        if let Some(c) = m.row_cycles.get_mut(slot) {
            *c += 1;
        }
        // Whatever verify report was cached describes the pre-mutation
        // contents.
        self.program_report = None;
        if !self.is_programmed() {
            return Ok(());
        }
        let Some(phys) = self.phys_for_slot(slot) else {
            // The slot's home row is quarantined with no spare: there is
            // no physical target and the row stays excluded from search.
            return Ok(());
        };
        if let Backend::Circuit(_) = &self.backend {
            let plan = self.plan();
            let mut xb = self.crossbar.take().ok_or(FerexError::NotProgrammed)?;
            program_crossbar_row(
                &mut xb,
                &self.tech,
                &self.encoding,
                &plan,
                self.fault_map.as_deref(),
                self.aged_vth.as_deref(),
                phys,
                vector,
            );
            self.crossbar = Some(xb);
        }
        // The Noisy backend reads stored codes against persistent per-cell
        // samples, and the Ideal backend has no physical state: for both,
        // the logical commit *is* the write.
        if matches!(self.backend, Backend::Ideal) {
            return Ok(());
        }
        if let Some(policy) = self.repair.clone() {
            if self.row_map.is_empty() {
                self.row_map = vec![RowHealth::Healthy; self.stored.len()];
                self.spare_state = vec![SpareState::Free; self.spares()];
            }
            let rv = self.verify_row(phys, vector, &policy)?;
            if rv.bad.len() > policy.max_bad_cells_per_row {
                if policy.strict {
                    let cell = rv.bad.first().copied().unwrap_or(0);
                    return Err(FerexError::VerifyFailed { row: slot, cell });
                }
                self.quarantine_internal(slot, &policy)?;
            }
        }
        Ok(())
    }

    /// Inserts a new `(id, vector)` pair: the slot choice is the coldest
    /// free slot under wear leveling (lowest index otherwise), the write
    /// goes through the delta write-verify path, and the slot flips live
    /// only after the write settles — a failed write touches nothing that
    /// search can see.
    ///
    /// # Errors
    ///
    /// [`FerexError::DuplicateId`] when `id` is already live;
    /// [`FerexError::CapacityExhausted`] when no slot is free even after
    /// compaction; validation errors; strict-mode write-verify errors.
    pub fn insert(&mut self, id: u64, vector: Vec<u32>) -> Result<(), FerexError> {
        self.validate(&vector)?;
        let m = self.mutation_required()?;
        if m.id_to_slot.contains_key(&id) {
            return Err(FerexError::DuplicateId { id });
        }
        let capacity = m.policy.capacity;
        let slot = match m.choose_insert_slot() {
            Some(s) => s,
            None if m.tombstones() > 0 => {
                // Every free slot is spoken for but tombstones can be
                // reclaimed: compact, then retry the choice.
                self.compact();
                self.mutation_required()?
                    .choose_insert_slot()
                    .ok_or(FerexError::CapacityExhausted { capacity })?
            }
            None => return Err(FerexError::CapacityExhausted { capacity }),
        };
        self.set_slot_contents(slot, vector.clone());
        if let Err(e) = self.mutation_write_slot(slot, &vector) {
            // Never made live: zero the logical contents back out.
            self.zero_slot_contents(slot);
            return Err(e);
        }
        self.mutation_commit_live(id, slot);
        Ok(())
    }

    /// Replaces the vector of live id `id`. Under wear leveling the write
    /// lands out of place on the coldest free slot and the old slot is
    /// tombstoned (so repeated updates of a hot id spread across the
    /// array); without leveling — or with no free slot left — the row is
    /// re-programmed in place, restoring the old contents logically and
    /// physically if the write fails.
    ///
    /// # Errors
    ///
    /// [`FerexError::UnknownId`]; validation errors; strict-mode
    /// write-verify errors.
    pub fn update_id(&mut self, id: u64, vector: Vec<u32>) -> Result<(), FerexError> {
        self.validate(&vector)?;
        let m = self.mutation_required()?;
        let Some(&old) = m.id_to_slot.get(&id) else {
            return Err(FerexError::UnknownId { id });
        };
        let target = if m.policy.wear_leveling { m.choose_insert_slot() } else { None };
        match target {
            Some(new) if new != old => {
                self.set_slot_contents(new, vector.clone());
                if let Err(e) = self.mutation_write_slot(new, &vector) {
                    self.zero_slot_contents(new);
                    return Err(e);
                }
                self.mutation_commit_move(id, old, new);
                self.maybe_auto_compact();
                Ok(())
            }
            _ => {
                let previous = self.stored.get(old).cloned().unwrap_or_default();
                self.set_slot_contents(old, vector.clone());
                match self.mutation_write_slot(old, &vector) {
                    Ok(()) => Ok(()),
                    Err(e) => {
                        // Crash consistency: roll the row back to its old
                        // contents, logically and (best-effort) physically.
                        self.set_slot_contents(old, previous.clone());
                        let _ = self.mutation_write_slot(old, &previous);
                        Err(e)
                    }
                }
            }
        }
    }

    /// Tombstones live id `id`: a purely logical transition (the kernels
    /// skip the slot like a quarantined row), no erase pulse, no wear.
    /// Auto-compacts when the tombstone fraction reaches the policy
    /// threshold.
    ///
    /// # Errors
    ///
    /// [`FerexError::UnknownId`].
    pub fn delete(&mut self, id: u64) -> Result<(), FerexError> {
        let Some(m) = self.mutation.as_mut() else {
            return Err(FerexError::InvalidPolicy {
                what: "mutation is not enabled on this array",
            });
        };
        let Some(slot) = m.id_to_slot.remove(&id) else {
            return Err(FerexError::UnknownId { id });
        };
        if let Some(s) = m.slots.get_mut(slot) {
            *s = SlotState::Dead;
        }
        // The cached verify report counted this row live.
        self.program_report = None;
        self.maybe_auto_compact();
        Ok(())
    }

    /// Reclaims every tombstoned slot back to free, zeroing its logical
    /// contents. Deterministic and purely logical — stale physical
    /// content on a reclaimed slot is unreachable (excluded from search,
    /// skipped by verify and scrub) until an insert re-programs it, so no
    /// erase pulses are spent. Logical ids never move: compaction
    /// reclaims *slots*, the id → slot map is untouched.
    pub fn compact(&mut self) -> CompactionReport {
        let Some(m) = self.mutation.as_mut() else {
            return CompactionReport::default();
        };
        m.compactions += 1;
        let mut reclaimed = Vec::new();
        for (i, s) in m.slots.iter_mut().enumerate() {
            if matches!(s, SlotState::Dead) {
                *s = SlotState::Free;
                reclaimed.push(i);
            }
        }
        let report = CompactionReport { reclaimed: reclaimed.len(), rotated: 0 };
        for i in reclaimed {
            self.zero_slot_contents(i);
        }
        if report.reclaimed > 0 {
            self.program_report = None;
        }
        report
    }

    fn maybe_auto_compact(&mut self) {
        if self.mutation.as_ref().is_some_and(|m| m.should_auto_compact()) {
            self.compact();
        }
    }

    /// One background maintenance step, meant to run on the scrub
    /// cadence: compacts when the tombstone fraction has reached the
    /// policy threshold, then (under wear leveling) re-encodes the
    /// hottest live row onto the coldest free slot when its wear exceeds
    /// the target's by more than one cycle. The rotation is abandoned —
    /// with no logical change — if the delta write fails, so maintenance
    /// itself never errors.
    pub fn maintenance(&mut self) -> CompactionReport {
        let mut report = CompactionReport::default();
        let Some(m) = self.mutation.as_ref() else {
            return report;
        };
        if m.should_auto_compact() {
            report = self.compact();
        }
        let Some(m) = self.mutation.as_ref() else {
            return report;
        };
        let Some((src, dst)) = m.rotation_candidate() else {
            return report;
        };
        let Some(SlotState::Live(id)) = m.slots.get(src).copied() else {
            return report;
        };
        let vector = self.stored.get(src).cloned().unwrap_or_default();
        self.set_slot_contents(dst, vector.clone());
        if self.mutation_write_slot(dst, &vector).is_err() {
            // Abandon the rotation: the destination stays free (its stale
            // physical content is excluded from search), no logical change.
            self.zero_slot_contents(dst);
            return report;
        }
        self.mutation_commit_move(id, src, dst);
        report.rotated += 1;
        report
    }

    /// Crate-internal: the mutation book-keeping, for the tiled array's
    /// two-phase coordination.
    pub(crate) fn mutation_state(&self) -> Option<&MutationState> {
        self.mutation.as_ref()
    }

    /// Crate-internal: replaces slot contents without touching slot state
    /// (phase one of a coordinated mutation, or its rollback).
    pub(crate) fn mutation_set_contents(&mut self, slot: usize, vector: Vec<u32>) {
        self.set_slot_contents(slot, vector);
    }

    /// Crate-internal: marks a prepared slot live for `id` (phase two of a
    /// coordinated insert). Infallible and purely logical.
    pub(crate) fn mutation_commit_live(&mut self, id: u64, slot: usize) {
        if let Some(m) = self.mutation.as_mut() {
            if let Some(s) = m.slots.get_mut(slot) {
                *s = SlotState::Live(id);
            }
            m.id_to_slot.insert(id, slot);
        }
    }

    /// Crate-internal: commits a move of `id` from `src` to the prepared
    /// slot `dst`, tombstoning `src` (phase two of a coordinated
    /// out-of-place update or wear rotation). Infallible and purely
    /// logical.
    pub(crate) fn mutation_commit_move(&mut self, id: u64, src: usize, dst: usize) {
        if let Some(m) = self.mutation.as_mut() {
            if let Some(s) = m.slots.get_mut(dst) {
                *s = SlotState::Live(id);
            }
            if let Some(s) = m.slots.get_mut(src) {
                *s = SlotState::Dead;
            }
            m.id_to_slot.insert(id, dst);
        }
    }
}

impl MutableNode for FerexArray {
    fn insert(&mut self, id: u64, vector: Vec<u32>) -> Result<(), FerexError> {
        FerexArray::insert(self, id, vector)
    }

    fn update(&mut self, id: u64, vector: Vec<u32>) -> Result<(), FerexError> {
        FerexArray::update_id(self, id, vector)
    }

    fn delete(&mut self, id: u64) -> Result<(), FerexError> {
        FerexArray::delete(self, id)
    }

    fn compact(&mut self) -> CompactionReport {
        FerexArray::compact(self)
    }

    fn maintenance(&mut self) -> CompactionReport {
        FerexArray::maintenance(self)
    }

    fn slot_of(&self, id: u64) -> Option<usize> {
        FerexArray::slot_of(self, id)
    }

    fn vector_of(&self, id: u64) -> Option<Vec<u32>> {
        FerexArray::vector_of(self, id).map(<[u32]>::to_vec)
    }

    fn live_ids(&self) -> Vec<u64> {
        FerexArray::live_ids(self)
    }

    fn live_len(&self) -> usize {
        FerexArray::live_len(self)
    }

    fn tombstones(&self) -> usize {
        FerexArray::tombstones(self)
    }

    fn wear(&self) -> WearSummary {
        FerexArray::wear(self)
    }
}

/// Per-row tally of one write-verify pass.
#[derive(Debug, Default)]
struct RowVerify {
    clean: usize,
    repaired: usize,
    failed: usize,
    retries: usize,
    /// Columns whose cells failed verify.
    bad: Vec<usize>,
}

/// Result of trying to remap a quarantined row onto the spare pool.
#[derive(Debug, Default)]
struct RemapResult {
    /// Physical index of the spare now serving the row, or `None` when the
    /// pool ran dry and the row was excluded.
    spare: Option<usize>,
    /// Spares burned while trying.
    burned: usize,
    /// Retry pulses spent bringing spares up.
    retries: usize,
}

/// Programs one physical crossbar row with the encoding of `symbols`,
/// applying the row's fault-map entries and aging — the single definition
/// used for logical rows, sentinels, and spare bring-up, so all three see
/// identical device behavior.
#[allow(clippy::too_many_arguments)]
fn program_crossbar_row(
    xb: &mut Crossbar,
    tech: &Technology,
    encoding: &CellEncoding,
    plan: &FaultPlan,
    fault_map: Option<&[CellFault]>,
    aged: Option<&[Volt]>,
    phys_row: usize,
    symbols: &[u32],
) {
    let k = encoding.k;
    let cols = symbols.len() * k;
    // lint:allow(panic-safety/index, reason = "symbols are validated against the encoding before programming; f < k and stored encodings carry exactly k levels")
    for (d, &s) in symbols.iter().enumerate() {
        let st = &encoding.stored[s as usize];
        for f in 0..k {
            let col = d * k + f;
            let level = st.vth_levels[f];
            let fault = fault_map
                .and_then(|m| m.get(phys_row * cols + col))
                .copied()
                .unwrap_or(CellFault::None);
            match fault {
                CellFault::None | CellFault::ResistorShort => {
                    xb.program(phys_row, col, level);
                    if let Some(aged) = aged {
                        // Aging moves the written polarization; the
                        // device's own ΔVth stays intact.
                        let vth = aged.get(level).copied().unwrap_or_else(|| tech.vth_level(level));
                        let p = tech.polarization_for_vth(vth);
                        xb.cell_mut(phys_row, col)
                            .fefet_mut()
                            .ferroelectric_mut()
                            .set_polarization(p);
                    }
                    if fault == CellFault::ResistorShort {
                        xb.cell_mut(phys_row, col).scale_resistance(plan.short_residual_r);
                    }
                }
                // Stuck fully set: conducts as the lowest level.
                CellFault::StuckAtLowVth => xb.program(phys_row, col, 0),
                // Stuck fully reset: the erased state sits above every
                // search level, so leave the fresh cell.
                CellFault::StuckAtHighVth => {}
                CellFault::ResistorOpen => {
                    xb.program(phys_row, col, level);
                    xb.cell_mut(phys_row, col).scale_resistance(OPEN_RESISTANCE_SCALE);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::DistanceMetric;
    use crate::dm::DistanceMatrix;
    use crate::sizing::{find_minimal_cell, SizingOptions};

    fn hamming_array(dim: usize, backend: Backend) -> FerexArray {
        let dm = DistanceMatrix::from_metric(DistanceMetric::Hamming, 2);
        let report = find_minimal_cell(&dm, &SizingOptions::default()).expect("sizes");
        FerexArray::new(Technology::default(), report.encoding, dim, backend)
    }

    #[test]
    fn ideal_search_matches_metric() {
        let mut a = hamming_array(4, Backend::Ideal);
        a.store(vec![0, 1, 2, 3]).unwrap();
        a.store(vec![3, 2, 1, 0]).unwrap();
        a.store(vec![0, 0, 0, 0]).unwrap();
        let q = [0, 1, 2, 0];
        let out = a.search(&q).unwrap();
        let m = DistanceMetric::Hamming;
        for (r, stored) in a.stored().iter().enumerate() {
            let expected = m.vector_distance(&q, stored) as f64;
            assert_eq!(out.distances[r], expected, "row {r}");
        }
        assert_eq!(out.nearest, 0);
    }

    #[test]
    fn circuit_search_agrees_with_ideal_when_nominal() {
        let cfg = CircuitConfig {
            variation: VariationModel::none(),
            lta: LtaParams::ideal(),
            ..Default::default()
        };
        let mut ideal = hamming_array(6, Backend::Ideal);
        let mut circuit = hamming_array(6, Backend::Circuit(Box::new(cfg)));
        let vectors = [vec![0, 1, 2, 3, 0, 1], vec![3, 3, 3, 3, 3, 3], vec![0, 0, 1, 1, 2, 2]];
        for v in &vectors {
            ideal.store(v.clone()).unwrap();
            circuit.store(v.clone()).unwrap();
        }
        let q = [0, 1, 2, 3, 1, 1];
        circuit.program();
        let oi = ideal.search(&q).unwrap();
        let oc = circuit.search(&q).unwrap();
        assert_eq!(oi.nearest, oc.nearest);
        for (a, b) in oi.distances.iter().zip(&oc.distances) {
            assert!((a - b).abs() < 0.1, "ideal {a} vs circuit {b}");
        }
    }

    #[test]
    fn search_k_orders_by_distance() {
        let mut a = hamming_array(4, Backend::Ideal);
        a.store(vec![0, 0, 0, 0]).unwrap(); // d = 4 from q
        a.store(vec![1, 1, 1, 1]).unwrap(); // d = 0
        a.store(vec![1, 1, 0, 0]).unwrap(); // d = 2
        let top = a.search_k(&[1, 1, 1, 1], 3).unwrap();
        assert_eq!(top, vec![1, 2, 0]);
    }

    #[test]
    fn reconfigure_keeps_stored_data() {
        let mut a = hamming_array(3, Backend::Ideal);
        a.store(vec![0, 3, 1]).unwrap();
        a.store(vec![2, 2, 2]).unwrap();
        let dm = DistanceMatrix::from_metric(DistanceMetric::Manhattan, 2);
        let enc = find_minimal_cell(&dm, &SizingOptions::default()).unwrap().encoding;
        a.reconfigure(enc).unwrap();
        let q = [0, 3, 0];
        let out = a.search(&q).unwrap();
        let m = DistanceMetric::Manhattan;
        for (r, stored) in a.stored().iter().enumerate() {
            assert_eq!(out.distances[r], m.vector_distance(&q, stored) as f64);
        }
    }

    #[test]
    fn validation_errors() {
        let mut a = hamming_array(3, Backend::Ideal);
        assert!(matches!(
            a.store(vec![0, 1]),
            Err(FerexError::DimensionMismatch { expected: 3, got: 2 })
        ));
        assert!(matches!(
            a.store(vec![0, 1, 4]),
            Err(FerexError::SymbolOutOfRange { value: 4, .. })
        ));
        assert!(matches!(a.search(&[0, 0, 0]), Err(FerexError::Empty)));
    }

    #[test]
    fn noisy_backend_matches_ideal_when_nominal() {
        let cfg = CircuitConfig {
            variation: VariationModel::none(),
            lta: LtaParams::ideal(),
            ..Default::default()
        };
        let mut ideal = hamming_array(8, Backend::Ideal);
        let mut noisy = hamming_array(8, Backend::Noisy(Box::new(cfg)));
        for v in [vec![0u32; 8], vec![3; 8], vec![0, 1, 2, 3, 0, 1, 2, 3]] {
            ideal.store(v.clone()).unwrap();
            noisy.store(v).unwrap();
        }
        let q = [0, 1, 2, 3, 3, 2, 1, 0];
        noisy.program();
        let oi = ideal.search(&q).unwrap();
        let on = noisy.search(&q).unwrap();
        assert_eq!(oi.distances, on.distances);
        assert_eq!(oi.nearest, on.nearest);
    }

    #[test]
    fn noisy_and_circuit_statistics_agree() {
        // The fast statistical backend must reproduce the device-level
        // backend's current statistics on the same workload: identical ON
        // counts in the nominal part, comparable spread under variation.
        let stored = vec![vec![0u32; 12], vec![1; 12]];
        let q = vec![3u32; 12]; // every cell conducts per the ladder
        let run = |backend: Backend| -> Vec<f64> {
            let mut a = hamming_array(12, backend);
            a.store_all(stored.clone()).unwrap();
            a.program();
            a.distances(&q).unwrap()
        };
        let mut noisy_spread = Vec::new();
        let mut circuit_spread = Vec::new();
        for seed in 0..6 {
            let cfg = CircuitConfig { seed, ..Default::default() };
            let n = run(Backend::Noisy(Box::new(cfg.clone())));
            let c = run(Backend::Circuit(Box::new(cfg)));
            for (dn, dc) in n.iter().zip(&c) {
                noisy_spread.push(*dn);
                circuit_spread.push(*dc);
                // Same workload, same error mechanisms: within a few
                // percent of each other on aggregate row current.
                assert!((dn - dc).abs() / dc < 0.15, "noisy {dn} vs circuit {dc} diverge");
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!((mean(&noisy_spread) - mean(&circuit_spread)).abs() < 1.0);
    }

    #[test]
    fn digital_readout_codes_track_distances() {
        use ferex_analog::adc::AdcParams;
        let mut a = hamming_array(8, Backend::Ideal);
        a.store(vec![0; 8]).unwrap();
        a.store(vec![1; 8]).unwrap();
        a.store(vec![3; 8]).unwrap();
        let q = vec![0u32; 8];
        // 10-bit ADC auto-ranged: integer distances must come back as
        // proportional codes preserving the ordering.
        let adc =
            AdcParams { bits: 10, full_scale: ferex_fefet::units::Amp(0.0), ..Default::default() };
        let readout = a.read_digital(&q, &adc, 1).unwrap();
        assert_eq!(readout.codes.len(), 3);
        assert!(readout.codes[0] < readout.codes[1]);
        assert!(readout.codes[1] < readout.codes[2]);
        assert!(readout.time.value() > 0.0);
        assert!(readout.energy.value() > 0.0);
    }

    #[test]
    fn remove_and_update_rows() {
        let mut a = hamming_array(2, Backend::Ideal);
        a.store(vec![0, 0]).unwrap();
        a.store(vec![1, 1]).unwrap();
        a.store(vec![2, 2]).unwrap();
        let removed = a.remove(1);
        assert_eq!(removed, vec![1, 1]);
        assert_eq!(a.len(), 2);
        assert_eq!(a.stored()[1], vec![2, 2]);
        a.update(0, vec![3, 3]).unwrap();
        let out = a.search(&[3, 3]).unwrap();
        assert_eq!(out.nearest, 0);
        assert_eq!(out.distances[0], 0.0);
        // Invalid update leaves the array unchanged.
        assert!(a.update(0, vec![9, 9]).is_err());
        assert_eq!(a.stored()[0], vec![3, 3]);
    }

    #[test]
    fn circuit_with_variation_is_deterministic_per_seed() {
        let mk = || {
            let cfg = CircuitConfig { seed: 42, ..Default::default() };
            let mut a = hamming_array(8, Backend::Circuit(Box::new(cfg)));
            a.store(vec![0; 8]).unwrap();
            a.store(vec![1; 8]).unwrap();
            a.program();
            a.search(&[0, 0, 0, 0, 1, 1, 1, 1]).unwrap()
        };
        assert_eq!(mk(), mk());
    }

    fn noisy_cfg(seed: u64) -> Backend {
        Backend::Noisy(Box::new(CircuitConfig { seed, ..Default::default() }))
    }

    #[test]
    fn stale_stochastic_state_is_rejected_until_programmed() {
        let mut a = hamming_array(4, noisy_cfg(11));
        a.store(vec![0, 1, 2, 3]).unwrap();
        assert_eq!(a.search(&[0, 1, 2, 3]), Err(FerexError::NotProgrammed));
        assert!(!a.is_programmed());
        a.program();
        assert!(a.is_programmed());
        assert!(a.search(&[0, 1, 2, 3]).is_ok());
        // Any mutation re-stales the state…
        a.store(vec![3, 3, 3, 3]).unwrap();
        assert_eq!(a.distances(&[0; 4]), Err(FerexError::NotProgrammed));
        // …and program() is idempotent once re-run.
        a.program();
        a.program();
        assert!(a.search_k(&[0; 4], 2).is_ok());
    }

    #[test]
    fn program_is_idempotent_for_variation_samples() {
        let mut a = hamming_array(6, noisy_cfg(5));
        a.store(vec![0; 6]).unwrap();
        a.program();
        let before = a.distances(&[3; 6]).unwrap();
        a.program(); // no-op: must not redraw the variation samples
        assert_eq!(before, a.distances(&[3; 6]).unwrap());
    }

    #[test]
    fn invalid_k_reports_dedicated_error() {
        let mut a = hamming_array(2, Backend::Ideal);
        a.store(vec![0, 0]).unwrap();
        a.store(vec![1, 1]).unwrap();
        assert_eq!(a.search_k(&[0, 0], 0), Err(FerexError::InvalidK { k: 0, rows: 2 }));
        assert_eq!(a.search_k(&[0, 0], 3), Err(FerexError::InvalidK { k: 3, rows: 2 }));
        // An empty array still reports Empty, not InvalidK.
        let empty = hamming_array(2, Backend::Ideal);
        assert_eq!(empty.search_k(&[0, 0], 1), Err(FerexError::Empty));
    }

    fn batch_fixture(backend: Backend) -> (FerexArray, Vec<Vec<u32>>) {
        let mut a = hamming_array(8, backend);
        for r in 0..12u32 {
            a.store((0..8).map(|d| (r + d) % 4).collect()).unwrap();
        }
        a.program();
        let queries: Vec<Vec<u32>> =
            (0..9u32).map(|q| (0..8).map(|d| (q * 3 + d) % 4).collect()).collect();
        (a, queries)
    }

    #[test]
    fn batch_search_is_bit_identical_to_sequential() {
        for backend in [
            Backend::Ideal,
            Backend::Circuit(Box::new(CircuitConfig { seed: 77, ..Default::default() })),
            Backend::Noisy(Box::new(CircuitConfig { seed: 77, ..Default::default() })),
        ] {
            let (a, queries) = batch_fixture(backend.clone());
            let batched = a.search_batch(&queries).unwrap();
            let sequential: Vec<SearchOutcome> = queries
                .iter()
                .enumerate()
                .map(|(i, q)| a.search_at(q, i as u64).unwrap())
                .collect();
            assert_eq!(batched, sequential, "backend {backend:?}");
            // On a fresh array the counter starts at 0, so plain search()
            // in a loop reproduces the batch too.
            let counted: Vec<SearchOutcome> =
                queries.iter().map(|q| a.search(q).unwrap()).collect();
            assert_eq!(batched, counted, "counter path, backend {backend:?}");
        }
    }

    #[test]
    fn batch_search_k_is_bit_identical_to_sequential() {
        let (a, queries) = batch_fixture(noisy_cfg(13));
        let batched = a.search_k_batch(&queries, 3).unwrap();
        for (i, q) in queries.iter().enumerate() {
            assert_eq!(batched[i], a.search_k_at(q, 3, i as u64).unwrap());
        }
    }

    #[test]
    fn batch_validates_every_query_before_serving() {
        let (a, mut queries) = batch_fixture(Backend::Ideal);
        queries.last_mut().unwrap()[0] = 9; // out of range, last query
        assert!(matches!(
            a.search_batch(&queries),
            Err(FerexError::SymbolOutOfRange { value: 9, .. })
        ));
        assert_eq!(a.search_batch(&[]).unwrap(), Vec::<SearchOutcome>::new());
    }

    /// Deterministic fault-study corner: no variation, ideal LTA, so every
    /// difference from the benign run is attributable to the plan.
    fn faulty_cfg(plan: FaultPlan, seed: u64) -> CircuitConfig {
        CircuitConfig {
            variation: VariationModel::none(),
            lta: LtaParams::ideal(),
            faults: plan,
            seed,
            ..Default::default()
        }
    }

    #[test]
    fn benign_plan_materializes_no_fault_state() {
        let mut a = hamming_array(4, Backend::Noisy(Box::new(faulty_cfg(FaultPlan::none(), 3))));
        a.store(vec![0, 1, 2, 3]).unwrap();
        a.program();
        assert!(a.fault_map().is_none());
        assert!(a.is_programmed());
    }

    #[test]
    fn dead_cells_never_conduct() {
        for plan in [
            FaultPlan { sa1_rate: 1.0, ..Default::default() },
            FaultPlan { open_rate: 1.0, ..Default::default() },
        ] {
            let mut a = hamming_array(4, Backend::Noisy(Box::new(faulty_cfg(plan, 1))));
            a.store(vec![0, 1, 2, 3]).unwrap();
            a.program();
            assert_eq!(a.distances(&[3, 2, 1, 0]).unwrap(), vec![0.0], "{plan:?}");
        }
    }

    #[test]
    fn sa0_cells_conduct_as_level_zero() {
        let plan = FaultPlan { sa0_rate: 1.0, ..Default::default() };
        let mut a = hamming_array(4, Backend::Noisy(Box::new(faulty_cfg(plan, 1))));
        a.store(vec![0, 1, 2, 3]).unwrap();
        a.program();
        let q = [2u32, 2, 2, 2];
        // Every cell behaves as stored level 0, so the row current is the
        // query's total drive over fets whose search level turns level 0 on.
        let enc = a.encoding().clone();
        let expected: f64 = q
            .iter()
            .map(|&qq| {
                let se = &enc.search[qq as usize];
                (0..enc.k)
                    .map(|f| if se.vgs_levels[f] > 0 { se.vds_multiples[f] as f64 } else { 0.0 })
                    .sum::<f64>()
            })
            .sum();
        assert_eq!(a.distances(&q).unwrap(), vec![expected]);
    }

    #[test]
    fn shorted_cells_scale_contributions_exactly() {
        let short = FaultPlan { short_rate: 1.0, short_residual_r: 0.5, ..Default::default() };
        let run = |plan: FaultPlan| {
            let mut a = hamming_array(4, Backend::Noisy(Box::new(faulty_cfg(plan, 1))));
            a.store(vec![0, 1, 2, 3]).unwrap();
            a.program();
            a.distances(&[2, 2, 2, 2]).unwrap()
        };
        let benign = run(FaultPlan::none());
        let shorted = run(short);
        assert!(benign[0] > 0.0);
        for (b, s) in benign.iter().zip(&shorted) {
            assert_eq!(*s, b * 2.0, "residual 0.5 must exactly double the clamp current");
        }
    }

    #[test]
    fn aging_alters_distances_deterministically() {
        // Deep fatigue contracts the window far enough that search levels
        // stop resolving adjacent stored levels.
        let plan = FaultPlan { endurance_cycles: 1.0e9, ..Default::default() };
        let run = |plan: FaultPlan| {
            let mut a = hamming_array(6, Backend::Noisy(Box::new(faulty_cfg(plan, 2))));
            a.store(vec![0, 1, 2, 3, 0, 1]).unwrap();
            a.store(vec![3, 2, 1, 0, 3, 2]).unwrap();
            a.program();
            a.distances(&[0, 1, 2, 3, 3, 3]).unwrap()
        };
        let aged = run(plan);
        assert_eq!(aged, run(plan), "aging must be deterministic");
        assert_ne!(aged, run(FaultPlan::none()), "deep fatigue must move the distances");
    }

    #[test]
    fn faulted_batch_distances_match_scalar_exactly() {
        let plan = FaultPlan {
            sa0_rate: 0.1,
            sa1_rate: 0.1,
            open_rate: 0.1,
            short_rate: 0.1,
            retention_seconds: 1.0e7,
            endurance_cycles: 1.0e8,
            ..Default::default()
        };
        // Full variation on top of the faults: the scalar and batched reads
        // must still agree bit-for-bit.
        let cfg = CircuitConfig { faults: plan, seed: 21, ..Default::default() };
        let (a, queries) = batch_fixture(Backend::Noisy(Box::new(cfg)));
        let batched = a.distances_batch(&queries).unwrap();
        for (i, q) in queries.iter().enumerate() {
            assert_eq!(batched[i], a.distances(q).unwrap(), "query {i}");
        }
    }

    #[test]
    fn noisy_and_circuit_fault_the_same_cells() {
        let plan = FaultPlan { sa1_rate: 0.25, open_rate: 0.25, ..Default::default() };
        let mk = |backend: Backend| {
            let mut a = hamming_array(12, backend);
            a.store(vec![0; 12]).unwrap();
            a.store(vec![1; 12]).unwrap();
            a.program();
            a
        };
        let noisy = mk(Backend::Noisy(Box::new(faulty_cfg(plan, 17))));
        let circuit = mk(Backend::Circuit(Box::new(faulty_cfg(plan, 17))));
        // Same config seed → identical fault maps across backends.
        assert_eq!(noisy.fault_map().unwrap(), circuit.fault_map().unwrap());
        let q = vec![3u32; 12]; // drives every healthy cell on
        let dn = noisy.distances(&q).unwrap();
        let dc = circuit.distances(&q).unwrap();
        for (n, c) in dn.iter().zip(&dc) {
            assert!((n - c).abs() < 0.1 * n.max(1.0), "noisy {n} vs circuit {c}");
        }
    }

    #[test]
    fn fault_state_invalidated_on_mutation() {
        let plan = FaultPlan { sa0_rate: 0.5, ..Default::default() };
        let mut a = hamming_array(4, Backend::Noisy(Box::new(faulty_cfg(plan, 4))));
        a.store(vec![0, 1, 2, 3]).unwrap();
        a.program();
        assert!(a.fault_map().is_some());
        a.store(vec![3, 3, 3, 3]).unwrap();
        assert!(a.fault_map().is_none(), "mutation must drop the stale fault map");
        a.program();
        let map = a.fault_map().unwrap().to_vec();
        // Per-index hashing: the original prefix survives the re-program.
        assert_eq!(&map[..a.physical_cols()], &plan.fault_map(4, a.physical_cols())[..]);
    }

    #[test]
    fn query_ids_draw_decorrelated_sensing_noise() {
        // Two rows at identical distance: the LTA coin-flip is decided
        // purely by the per-query offset stream, so over many ids both
        // outcomes must appear (a correlated stream would pin one).
        let cfg = CircuitConfig { variation: VariationModel::none(), ..Default::default() };
        let mut a = hamming_array(2, Backend::Noisy(Box::new(cfg)));
        a.store(vec![0, 1]).unwrap();
        a.store(vec![1, 0]).unwrap();
        a.program();
        let wins: Vec<usize> =
            (0..64).map(|qid| a.search_at(&[0, 0], qid).unwrap().nearest).collect();
        assert!(wins.contains(&0) && wins.contains(&1), "offsets look frozen: {wins:?}");
    }

    // ------------------------------------------------------------------
    // Self-healing: write-verify, sparing, scrub.
    // ------------------------------------------------------------------

    fn stored_rows(dim: usize) -> Vec<Vec<u32>> {
        (0..6).map(|r| (0..dim).map(|d| ((r + d) % 4) as u32).collect()).collect()
    }

    #[test]
    fn no_repair_policy_keeps_legacy_layout_and_health() {
        let mut a = hamming_array(4, noisy_cfg(11));
        for v in stored_rows(4) {
            a.store(v).unwrap();
        }
        a.program();
        let h = a.health();
        assert_eq!(h.spare_rows, 0);
        assert_eq!(h.rows_active, 6);
        assert_eq!(h.rows_quarantined_now, 0);
        assert_eq!(a.row_health(0), RowHealth::Healthy);
        assert!(a.program_report().is_none());
    }

    #[test]
    fn program_verified_report_is_deterministic_and_cached() {
        let plan = FaultPlan { sa1_rate: 0.15, ..Default::default() };
        let mk = || {
            let mut a = hamming_array(4, Backend::Noisy(Box::new(faulty_cfg(plan, 9))));
            a.set_repair_policy(RepairPolicy { spare_rows: 8, ..Default::default() }).unwrap();
            for v in stored_rows(4) {
                a.store(v).unwrap();
            }
            let report = a.program_verified().unwrap();
            (a, report)
        };
        let (mut a, first) = mk();
        let (_, second) = mk();
        assert_eq!(first, second, "same seed must give the same report");
        // Re-verifying an already-verified array replays the cached report
        // without double-counting.
        let counters = a.health().counters;
        let replay = a.program_verified().unwrap();
        assert_eq!(replay, first);
        assert_eq!(a.health().counters, counters);
    }

    #[test]
    fn program_verified_trims_default_variation_to_ideal() {
        let cfg = CircuitConfig { lta: LtaParams::ideal(), ..Default::default() };
        let mut a = hamming_array(4, Backend::Noisy(Box::new(cfg)));
        a.set_repair_policy(RepairPolicy::default()).unwrap();
        for v in stored_rows(4) {
            a.store(v).unwrap();
        }
        let report = a.program_verified().unwrap();
        assert_eq!(report.cells_failed, 0, "default variation must be repairable");
        assert!(report.cells_repaired > 0, "σ_Vth = 54 mV must need some trims");
        assert!(report.rows_quarantined.is_empty());
        // After trimming, every |ΔVth| is within tolerance (30 mV), far from
        // the 200 mV decision margin: each cell's ON/OFF decision is exact
        // and only the ±8 % resistor spread remains on the magnitude.
        let q = [0, 1, 2, 3];
        let out = a.search(&q).unwrap();
        for (r, stored) in a.stored().iter().enumerate() {
            let expected = DistanceMetric::Hamming.vector_distance(&q, stored) as f64;
            assert!(
                (out.distances[r] - expected).abs() < 0.2 * expected.max(1.0),
                "row {r}: read {} expected {expected}",
                out.distances[r]
            );
        }
    }

    #[test]
    fn quarantine_and_remap_preserve_logical_row_ids() {
        let plan = FaultPlan { sa1_rate: 0.05, ..Default::default() };
        for backend in [
            Backend::Noisy(Box::new(faulty_cfg(plan, 21))),
            Backend::Circuit(Box::new(faulty_cfg(plan, 21))),
        ] {
            let mut a = hamming_array(4, backend);
            a.set_repair_policy(RepairPolicy { spare_rows: 16, ..Default::default() }).unwrap();
            for v in stored_rows(4) {
                a.store(v).unwrap();
            }
            let report = a.program_verified().unwrap();
            assert!(!report.rows_remapped.is_empty(), "seed must fault at least one row");
            let q = [0, 1, 2, 3];
            let out = a.search(&q).unwrap();
            assert_eq!(out.distances.len(), 6, "results stay keyed by logical row id");
            for (r, stored) in a.stored().iter().enumerate() {
                let expected = DistanceMetric::Hamming.vector_distance(&q, stored) as f64;
                match a.row_health(r) {
                    RowHealth::Quarantined => assert!(out.distances[r].is_infinite()),
                    // Healthy rows passed verify, remapped rows sit on
                    // verified spares: both read back the metric (up to the
                    // circuit solver's numerical tolerance).
                    _ => assert!(
                        (out.distances[r] - expected).abs() < 0.1,
                        "row {r}: read {} expected {expected}",
                        out.distances[r]
                    ),
                }
            }
        }
    }

    #[test]
    fn exhausted_spares_degrade_to_row_exclusion() {
        let mut a = hamming_array(4, Backend::Noisy(Box::new(faulty_cfg(FaultPlan::none(), 5))));
        a.set_repair_policy(RepairPolicy { spare_rows: 1, ..Default::default() }).unwrap();
        for v in stored_rows(4) {
            a.store(v).unwrap();
        }
        a.program_verified().unwrap();
        let spare = a.quarantine_row(0).unwrap();
        assert_eq!(a.row_health(0), RowHealth::Remapped { spare });
        assert_eq!(a.quarantine_row(1), Err(FerexError::SparesExhausted { row: 1, spares: 1 }));
        assert_eq!(a.row_health(1), RowHealth::Quarantined);
        let out = a.search(&[0, 1, 2, 3]).unwrap();
        assert!(out.distances[1].is_infinite(), "excluded row reads ∞");
        assert_eq!(out.distances[0], 0.0, "remapped row still serves its vector");
        // k-nearest sees 5 active rows, not 6.
        assert_eq!(a.search_k(&[0, 1, 2, 3], 5).unwrap().len(), 5);
        assert_eq!(a.search_k(&[0, 1, 2, 3], 6), Err(FerexError::InvalidK { k: 6, rows: 5 }));
        let h = a.health();
        assert_eq!((h.spares_in_use, h.rows_quarantined_now, h.rows_active), (1, 1, 5));
    }

    #[test]
    fn strict_policy_rejects_unverifiable_rows() {
        let plan = FaultPlan { sa1_rate: 1.0, ..Default::default() };
        let mut a = hamming_array(4, Backend::Noisy(Box::new(faulty_cfg(plan, 1))));
        a.set_repair_policy(RepairPolicy { strict: true, ..Default::default() }).unwrap();
        a.store(vec![0, 1, 2, 3]).unwrap();
        match a.program_verified() {
            Err(FerexError::VerifyFailed { row: 0, .. }) => {}
            other => panic!("expected VerifyFailed on row 0, got {other:?}"),
        }
    }

    #[test]
    fn scrub_is_clean_on_healthy_arrays() {
        for backend in [
            Backend::Noisy(Box::new(faulty_cfg(FaultPlan::none(), 7))),
            Backend::Circuit(Box::new(faulty_cfg(FaultPlan::none(), 7))),
        ] {
            let mut a = hamming_array(4, backend);
            a.set_repair_policy(RepairPolicy::default()).unwrap();
            for v in stored_rows(4) {
                a.store(v).unwrap();
            }
            a.program_verified().unwrap();
            let report = a.scrub().unwrap();
            assert!(report.findings.is_empty(), "healthy array flagged: {:?}", report.findings);
            assert!(!report.global_drift);
            assert_eq!(report.rows_checked, 6 + 1, "six logical rows plus one sentinel");
            assert_eq!(a.health().counters.scrubs_completed, 1);
        }
    }

    #[test]
    fn scrub_attributes_and_quarantines_stuck_rows() {
        let plan = FaultPlan { sa0_rate: 1.0, ..Default::default() };
        let mut a = hamming_array(4, Backend::Noisy(Box::new(faulty_cfg(plan, 1))));
        // Disable drift attribution so per-row quarantine is exercised, and
        // drop sparing: the spares are as stuck as the rows.
        a.set_repair_policy(RepairPolicy {
            spare_rows: 0,
            drift_fraction: 2.0,
            ..Default::default()
        })
        .unwrap();
        for v in stored_rows(4) {
            a.store(v).unwrap();
        }
        a.program();
        let report = a.scrub().unwrap();
        assert_eq!(report.findings.len() - report.sentinel_findings, 6, "every row is stuck");
        for f in &report.findings {
            assert_eq!(f.attribution, FaultAttribution::ExcessCurrent, "SA0 conducts too much");
            assert!(f.divergence > 0.0);
        }
        assert_eq!(report.rows_excluded.len(), 6);
        // Graceful floor: with every row excluded there is no neighbor left.
        assert_eq!(a.search(&[0, 1, 2, 3]), Err(FerexError::Empty));
    }

    #[test]
    fn scrub_attributes_array_wide_divergence_to_drift() {
        let plan = FaultPlan { sa0_rate: 1.0, ..Default::default() };
        let mut a = hamming_array(4, Backend::Noisy(Box::new(faulty_cfg(plan, 1))));
        a.set_repair_policy(RepairPolicy { drift_fraction: 0.5, ..Default::default() }).unwrap();
        for v in stored_rows(4) {
            a.store(v).unwrap();
        }
        a.program();
        let report = a.scrub().unwrap();
        assert!(report.global_drift, "all rows moved together");
        assert!(report.rows_remapped.is_empty() && report.rows_excluded.is_empty());
        assert!(report.findings.iter().all(|f| f.attribution == FaultAttribution::Drift));
        // No quarantine: the array still serves every row.
        assert_eq!(a.health().rows_active, 6);
    }

    #[test]
    fn invalid_repair_policy_returns_typed_error_instead_of_panicking() {
        // Regression: these inputs used to panic inside assert_valid();
        // every serve-path entry point now rejects them with
        // FerexError::InvalidPolicy.
        let mut a = hamming_array(4, Backend::Ideal);
        let bad_tolerance = RepairPolicy { scrub_abs_tolerance: 0.0, ..Default::default() };
        assert!(matches!(
            a.set_repair_policy(bad_tolerance.clone()),
            Err(FerexError::InvalidPolicy { .. })
        ));
        let bad_backoff = RepairPolicy {
            verify: ferex_fefet::VerifyPolicy { backoff: 1.5, ..Default::default() },
            ..Default::default()
        };
        assert!(matches!(
            a.set_repair_policy(bad_backoff),
            Err(FerexError::InvalidPolicy { what }) if what.contains("backoff")
        ));
        // A rejected policy leaves the array unchanged and serving.
        assert!(a.repair_policy().is_none());
        for v in stored_rows(4) {
            a.store(v).unwrap();
        }
        // A policy smuggled past installation is still caught by the
        // verified-program and scrub paths instead of panicking there.
        a.repair = Some(bad_tolerance);
        assert!(matches!(a.program_verified(), Err(FerexError::InvalidPolicy { .. })));
        a.program();
        assert!(matches!(a.scrub(), Err(FerexError::InvalidPolicy { .. })));
    }

    #[test]
    fn scrub_latency_is_modeled_and_deterministic() {
        let build = || {
            let mut a = hamming_array(4, Backend::Noisy(Box::default()));
            a.set_repair_policy(RepairPolicy::default()).unwrap();
            for v in stored_rows(4) {
                a.store(v).unwrap();
            }
            a.program();
            a
        };
        let mut a = build();
        let mut b = build();
        let ra = a.scrub().unwrap();
        let rb = b.scrub().unwrap();
        assert!(ra.latency_seconds > 0.0, "modeled latency must be positive");
        assert_eq!(
            ra.latency_seconds, rb.latency_seconds,
            "identical arrays must report bit-identical scrub latency"
        );
        // Repeating the scrub on the same array reproduces the same value —
        // no wall clock leaks into the report.
        let ra2 = a.scrub().unwrap();
        assert_eq!(ra.latency_seconds, ra2.latency_seconds);
        assert_eq!(a.health().counters.last_scrub_seconds, ra2.latency_seconds);
    }

    // ------------------------------------------------------------------
    // Online mutation.
    // ------------------------------------------------------------------

    fn mutable_ideal(capacity: usize) -> FerexArray {
        let mut a = hamming_array(4, Backend::Ideal);
        a.enable_mutation(MutationPolicy::with_capacity(capacity)).unwrap();
        a
    }

    #[test]
    fn insert_then_search_finds_the_vector() {
        let mut a = mutable_ideal(4);
        a.insert(10, vec![0, 1, 2, 3]).unwrap();
        a.insert(20, vec![3, 2, 1, 0]).unwrap();
        let out = a.search(&[0, 1, 2, 3]).unwrap();
        let nearest_id = a.id_at(out.nearest).unwrap();
        assert_eq!(nearest_id, 10);
        assert_eq!(a.live_len(), 2);
        // Free slots are excluded, not served as zero vectors.
        let zero_out = a.search(&[0, 0, 0, 0]).unwrap();
        assert!(a.id_at(zero_out.nearest).is_some(), "free slot won the search");
    }

    #[test]
    fn delete_tombstones_the_slot_bit_identically() {
        // Capacity 8 keeps one tombstone below the 250-per-mille
        // auto-compaction threshold, so the Dead state is observable.
        let mut a = mutable_ideal(8);
        a.insert(1, vec![0, 0, 0, 0]).unwrap();
        a.insert(2, vec![3, 3, 3, 3]).unwrap();
        a.delete(1).unwrap();
        let out = a.search(&[0, 0, 0, 0]).unwrap();
        assert_eq!(a.id_at(out.nearest), Some(2), "tombstoned row must not serve");
        let slot = 0; // id 1 lived in slot 0
        assert!(out.distances[slot].is_infinite());
        assert_eq!(a.tombstones(), 1);
        assert!(matches!(a.delete(1), Err(FerexError::UnknownId { id: 1 })));
    }

    #[test]
    fn mutation_misuse_is_typed_not_a_panic() {
        let mut a = mutable_ideal(2);
        a.insert(7, vec![0; 4]).unwrap();
        assert!(matches!(a.insert(7, vec![1; 4]), Err(FerexError::DuplicateId { id: 7 })));
        assert!(matches!(a.update_id(9, vec![1; 4]), Err(FerexError::UnknownId { id: 9 })));
        a.insert(8, vec![1; 4]).unwrap();
        assert!(matches!(
            a.insert(9, vec![2; 4]),
            Err(FerexError::CapacityExhausted { capacity: 2 })
        ));
        // Positional mutation is rejected in mutation mode.
        assert!(matches!(a.store(vec![0; 4]), Err(FerexError::InvalidPolicy { .. })));
        assert!(matches!(a.update(0, vec![0; 4]), Err(FerexError::InvalidPolicy { .. })));
    }

    #[test]
    fn insert_reclaims_tombstones_by_compaction() {
        let mut a = mutable_ideal(2);
        // Disable auto-compaction so the insert itself must reclaim.
        let mut policy = MutationPolicy::with_capacity(2);
        policy.compact_tombstone_milli = 0;
        let mut a2 = hamming_array(4, Backend::Ideal);
        a2.enable_mutation(policy).unwrap();
        std::mem::swap(&mut a, &mut a2);
        a.insert(1, vec![0; 4]).unwrap();
        a.insert(2, vec![1; 4]).unwrap();
        a.delete(1).unwrap();
        assert_eq!(a.tombstones(), 1);
        a.insert(3, vec![2; 4]).unwrap();
        assert_eq!(a.live_len(), 2);
        assert_eq!(a.tombstones(), 0, "insert must compact to find the slot");
    }

    #[test]
    fn update_moves_out_of_place_under_leveling_and_in_place_without() {
        let mut leveled = mutable_ideal(4);
        leveled.insert(1, vec![0; 4]).unwrap();
        let before = leveled.slot_of(1).unwrap();
        leveled.update_id(1, vec![1; 4]).unwrap();
        let after = leveled.slot_of(1).unwrap();
        assert_ne!(before, after, "leveling must move the write to a cold slot");
        assert_eq!(leveled.vector_of(1).unwrap(), &[1, 1, 1, 1]);

        let mut policy = MutationPolicy::with_capacity(4);
        policy.wear_leveling = false;
        let mut flat = hamming_array(4, Backend::Ideal);
        flat.enable_mutation(policy).unwrap();
        flat.insert(1, vec![0; 4]).unwrap();
        let before = flat.slot_of(1).unwrap();
        flat.update_id(1, vec![1; 4]).unwrap();
        assert_eq!(flat.slot_of(1).unwrap(), before, "no leveling: update stays in place");
    }

    #[test]
    fn maintenance_rotates_hot_rows_onto_cold_slots() {
        let mut a = mutable_ideal(8);
        let mut policy = MutationPolicy::with_capacity(8);
        policy.wear_leveling = false; // make slot 0 hot without moves
        let mut hot = hamming_array(4, Backend::Ideal);
        hot.enable_mutation(policy).unwrap();
        hot.insert(1, vec![0; 4]).unwrap();
        for i in 0..10 {
            hot.update_id(1, vec![(i % 4) as u32; 4]).unwrap();
        }
        std::mem::swap(&mut a, &mut hot);
        assert_eq!(a.slot_of(1), Some(0));
        // Re-enable leveling for the maintenance step.
        if let Some(m) = a.mutation.as_mut() {
            m.policy.wear_leveling = true;
        }
        let report = a.maintenance();
        assert_eq!(report.rotated, 1);
        assert_ne!(a.slot_of(1), Some(0), "hot row must move off its worn slot");
        let out = a.search(&[0; 4]).unwrap();
        assert_eq!(a.id_at(out.nearest), Some(1));
    }

    #[test]
    fn churn_wear_leveling_bounds_the_imbalance() {
        let run = |leveling: bool| {
            let mut policy = MutationPolicy::with_capacity(16);
            policy.wear_leveling = leveling;
            let mut a = hamming_array(4, Backend::Ideal);
            a.enable_mutation(policy).unwrap();
            for id in 0..12u64 {
                a.insert(id, vec![(id % 4) as u32; 4]).unwrap();
            }
            for round in 0..200u64 {
                // Hot set: ids 0 and 1 absorb all updates.
                let id = round % 2;
                a.update_id(id, vec![(round % 4) as u32; 4]).unwrap();
                if round % 8 == 0 {
                    a.maintenance();
                }
            }
            a.wear()
        };
        let leveled = run(true);
        let flat = run(false);
        assert!(
            leveled.imbalance_milli() <= 2000,
            "leveled max/mean {} per-mille",
            leveled.imbalance_milli()
        );
        assert!(
            flat.imbalance_milli() >= 5000,
            "unleveled max/mean {} per-mille",
            flat.imbalance_milli()
        );
    }

    #[test]
    fn mutated_array_matches_from_scratch_rebuild() {
        // Interleaved schedule on a mutated array vs a fresh array holding
        // the same logical contents: logical-id-keyed distances byte-match.
        let mut a = mutable_ideal(8);
        for id in 0..6u64 {
            a.insert(id, vec![(id % 4) as u32, 0, 1, 2]).unwrap();
        }
        a.delete(2).unwrap();
        a.update_id(4, vec![3, 3, 3, 3]).unwrap();
        a.compact();
        a.insert(9, vec![1, 1, 1, 1]).unwrap();

        let mut fresh = mutable_ideal(8);
        for id in a.live_ids() {
            fresh.insert(id, a.vector_of(id).unwrap().to_vec()).unwrap();
        }
        let q = [1, 2, 3, 0];
        let got = a.search(&q).unwrap();
        let want = fresh.search(&q).unwrap();
        for id in a.live_ids() {
            let da = got.distances[a.slot_of(id).unwrap()];
            let db = want.distances[fresh.slot_of(id).unwrap()];
            assert_eq!(da.to_bits(), db.to_bits(), "id {id}");
        }
    }

    #[test]
    fn mutation_delta_writes_circuit_backend() {
        let cfg = CircuitConfig {
            variation: VariationModel::none(),
            lta: LtaParams::ideal(),
            ..Default::default()
        };
        let mut a = hamming_array(4, Backend::Circuit(Box::new(cfg)));
        a.enable_mutation(MutationPolicy::with_capacity(4)).unwrap();
        a.insert(1, vec![0, 1, 2, 3]).unwrap();
        a.insert(2, vec![3, 2, 1, 0]).unwrap();
        a.program();
        // Delta write against live physical state: no full re-program.
        a.insert(3, vec![0, 0, 3, 3]).unwrap();
        assert!(a.is_programmed(), "delta write must not invalidate the crossbar");
        let out = a.search(&[0, 0, 3, 3]).unwrap();
        assert_eq!(a.id_at(out.nearest), Some(3));
        a.delete(1).unwrap();
        let out = a.search(&[0, 1, 2, 3]).unwrap();
        assert_ne!(a.id_at(out.nearest), Some(1));
    }

    #[test]
    fn mutation_health_reports_wear() {
        let mut a = mutable_ideal(4);
        a.insert(1, vec![0; 4]).unwrap();
        a.insert(2, vec![1; 4]).unwrap();
        a.update_id(1, vec![2; 4]).unwrap();
        let h = a.health();
        assert_eq!(h.wear_max_cycles, 1, "each slot absorbed at most one write");
        assert!(h.wear_headroom_milli > 900, "three writes must leave headroom");
        let w = a.wear();
        assert_eq!(w.total_writes, 3);
        // A non-mutating array reports zero wear and full headroom.
        let plain = hamming_array(4, Backend::Ideal);
        let h = plain.health();
        assert_eq!(h.wear_max_cycles, 0);
        assert_eq!(h.wear_headroom_milli, 1000);
    }
}
