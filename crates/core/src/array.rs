//! The FeReX associative-memory array: stored symbol vectors, searched in
//! one shot, nearest row reported by the LTA.
//!
//! A *logical* vector of `dim` b-bit symbols occupies one array row of
//! `dim × K` physical FeFET columns (K FeFETs per AM cell, from the sizing
//! step). Three backends expose the same API:
//!
//! * [`Backend::Ideal`] — noiseless functional model: cell currents are the
//!   encoding's exact integer units and the LTA is an exact argmin. This is
//!   the "software-based implementation" the paper compares accuracy
//!   against.
//! * [`Backend::Circuit`] — device-level model: a [`Crossbar`] of
//!   [`ferex_fefet::Cell`]s with device-to-device variation, IR drop and an
//!   offset-afflicted LTA. This is the Monte-Carlo subject of Fig. 7.
//! * [`Backend::Noisy`] — statistical variation model with the same error
//!   mechanisms but no per-cell device objects; tractable at
//!   application scale (HDC/KNN) and cross-validated against `Circuit`.

use crate::encoding::CellEncoding;
use crate::error::FerexError;
use ferex_analog::crossbar::{ArrayOptions, ColumnDrive, Crossbar};
use ferex_analog::lta::LtaParams;
use ferex_analog::parasitics::WireParams;
use ferex_fefet::units::{Amp, Volt};
use ferex_fefet::{Technology, VariationModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Circuit-backend configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitConfig {
    /// Device-to-device variation model.
    pub variation: VariationModel,
    /// LTA comparator parameters.
    pub lta: LtaParams,
    /// Array electrical options (IR drop, exact solve, ScL bias).
    pub options: ArrayOptions,
    /// Wire parasitics.
    pub wire: WireParams,
    /// Seed for variation sampling and LTA offset noise.
    pub seed: u64,
}

impl Default for CircuitConfig {
    fn default() -> Self {
        CircuitConfig {
            variation: VariationModel::default(),
            lta: LtaParams::default(),
            options: ArrayOptions::default(),
            wire: WireParams::default(),
            seed: 0xFE12EC5,
        }
    }
}

/// Which physical fidelity the array simulates at.
#[derive(Debug, Clone, PartialEq)]
pub enum Backend {
    /// Exact integer currents, exact argmin.
    Ideal,
    /// Device-level crossbar with variation and sensing offset: every cell
    /// is a full FeFET (Preisach ensemble + transistor + resistor). Highest
    /// fidelity, heavy — use for arrays up to a few thousand cells.
    Circuit(Box<CircuitConfig>),
    /// Statistical variation model without device objects: per-cell
    /// threshold shifts flip marginal ON/OFF decisions and per-cell resistor
    /// deviations scale ON currents, with the same LTA offset model.
    /// Memory-light — use for application-scale arrays (HDC, KNN). Validated
    /// against `Circuit` in the Fig. 7 cross-check.
    Noisy(Box<CircuitConfig>),
}

/// Result of one search operation.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOutcome {
    /// Sensed row distances in `I_unit` multiples (circuit backends include
    /// analog error).
    pub distances: Vec<f64>,
    /// Row index the LTA reported as nearest.
    pub nearest: usize,
}

/// A FeReX associative-memory array.
///
/// # Examples
///
/// ```
/// use ferex_core::array::{Backend, FerexArray};
/// use ferex_core::sizing::{find_minimal_cell, SizingOptions};
/// use ferex_core::{DistanceMatrix, DistanceMetric};
/// use ferex_fefet::Technology;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let dm = DistanceMatrix::from_metric(DistanceMetric::Hamming, 2);
/// let report = find_minimal_cell(&dm, &SizingOptions::default())?;
/// let mut array = FerexArray::new(Technology::default(), report.encoding, 4, Backend::Ideal);
/// array.store(vec![0, 1, 2, 3])?;
/// array.store(vec![3, 2, 1, 0])?;
/// let out = array.search(&[0, 1, 2, 2])?;
/// assert_eq!(out.nearest, 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FerexArray {
    tech: Technology,
    encoding: CellEncoding,
    dim: usize,
    backend: Backend,
    stored: Vec<Vec<u32>>,
    crossbar: Option<Crossbar>,
    /// Per-cell variation samples of the `Noisy` backend (row-major).
    noisy_samples: Option<Vec<ferex_fefet::DeviceSample>>,
    rng: StdRng,
}

impl FerexArray {
    /// Creates an empty array for vectors of `dim` symbols.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(tech: Technology, encoding: CellEncoding, dim: usize, backend: Backend) -> Self {
        assert!(dim > 0, "vector dimension must be positive");
        let seed = match &backend {
            Backend::Ideal => 0,
            Backend::Circuit(c) | Backend::Noisy(c) => c.seed,
        };
        FerexArray {
            tech,
            encoding,
            dim,
            backend,
            stored: Vec::new(),
            crossbar: None,
            noisy_samples: None,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Number of stored vectors (array rows in use).
    pub fn len(&self) -> usize {
        self.stored.len()
    }

    /// `true` if no vectors are stored.
    pub fn is_empty(&self) -> bool {
        self.stored.is_empty()
    }

    /// Symbols per stored vector.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Physical FeFET columns per row (`dim × K`).
    pub fn physical_cols(&self) -> usize {
        self.dim * self.encoding.k
    }

    /// The cell encoding this array is programmed with.
    pub fn encoding(&self) -> &CellEncoding {
        &self.encoding
    }

    /// The stored vectors, in row order.
    pub fn stored(&self) -> &[Vec<u32>] {
        &self.stored
    }

    /// Swaps in a new encoding (reconfiguration to another distance
    /// function). Stored data is kept; the physical array will be
    /// re-programmed on the next search.
    pub fn reconfigure(&mut self, encoding: CellEncoding) -> Result<(), FerexError> {
        for v in &self.stored {
            for &s in v {
                if s as usize >= encoding.n_stored() {
                    return Err(FerexError::SymbolOutOfRange {
                        value: s,
                        n_values: encoding.n_stored(),
                    });
                }
            }
        }
        self.encoding = encoding;
        self.crossbar = None;
        self.noisy_samples = None;
        Ok(())
    }

    fn validate(&self, vector: &[u32]) -> Result<(), FerexError> {
        if vector.len() != self.dim {
            return Err(FerexError::DimensionMismatch { expected: self.dim, got: vector.len() });
        }
        for &s in vector {
            if s as usize >= self.encoding.n_stored() {
                return Err(FerexError::SymbolOutOfRange {
                    value: s,
                    n_values: self.encoding.n_stored(),
                });
            }
        }
        Ok(())
    }

    /// Stores one vector into the next free row.
    ///
    /// # Errors
    ///
    /// Dimension or symbol-range violations.
    pub fn store(&mut self, vector: Vec<u32>) -> Result<(), FerexError> {
        self.validate(&vector)?;
        self.stored.push(vector);
        self.crossbar = None; // re-program lazily
        self.noisy_samples = None;
        Ok(())
    }

    /// Stores many vectors.
    pub fn store_all<I: IntoIterator<Item = Vec<u32>>>(
        &mut self,
        vectors: I,
    ) -> Result<(), FerexError> {
        for v in vectors {
            self.store(v)?;
        }
        Ok(())
    }

    /// Clears all stored vectors.
    pub fn clear(&mut self) {
        self.stored.clear();
        self.crossbar = None;
        self.noisy_samples = None;
    }

    /// Removes the vector at `row` (later rows shift up — the physical
    /// analogue is erasing the row and compacting the row map). Returns the
    /// removed vector.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn remove(&mut self, row: usize) -> Vec<u32> {
        assert!(row < self.stored.len(), "row {row} out of range");
        let removed = self.stored.remove(row);
        self.crossbar = None;
        self.noisy_samples = None;
        removed
    }

    /// Replaces the vector at `row` in place (a row re-program).
    ///
    /// # Errors
    ///
    /// Validation errors; the array is unchanged on error.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn update(&mut self, row: usize, vector: Vec<u32>) -> Result<(), FerexError> {
        assert!(row < self.stored.len(), "row {row} out of range");
        self.validate(&vector)?;
        self.stored[row] = vector;
        self.crossbar = None;
        self.noisy_samples = None;
        Ok(())
    }

    /// Builds the column drives for a query (shared by search and the cost
    /// models).
    pub fn drives_for(&self, query: &[u32]) -> Result<Vec<ColumnDrive>, FerexError> {
        self.validate(query)?;
        let k = self.encoding.k;
        let mut drives = Vec::with_capacity(self.dim * k);
        for &q in query {
            let se = &self.encoding.search[q as usize];
            for f in 0..k {
                let v_gate = self.tech.search_voltage(se.vgs_levels[f]);
                let m = se.vds_multiples[f];
                let v_dl =
                    if m == 0 { Volt(0.0) } else { self.tech.vds_for_multiple(m as usize) };
                drives.push(ColumnDrive { v_gate, v_dl });
            }
        }
        Ok(drives)
    }

    /// Programs (or re-programs) the physical crossbar for the circuit
    /// backend. Called lazily by [`FerexArray::search`]; exposed for cost
    /// accounting.
    pub fn program(&mut self) {
        match &self.backend {
            Backend::Ideal => {}
            Backend::Circuit(cfg) => {
                if self.crossbar.is_some() || self.stored.is_empty() {
                    return;
                }
                let rows = self.stored.len();
                let cols = self.physical_cols();
                let mut xb = Crossbar::with_variation(
                    self.tech.clone(),
                    cfg.wire,
                    rows,
                    cols,
                    &cfg.variation,
                    &mut self.rng,
                );
                let k = self.encoding.k;
                for (r, vector) in self.stored.iter().enumerate() {
                    for (d, &s) in vector.iter().enumerate() {
                        let st = &self.encoding.stored[s as usize];
                        for f in 0..k {
                            xb.program(r, d * k + f, st.vth_levels[f]);
                        }
                    }
                }
                self.crossbar = Some(xb);
            }
            Backend::Noisy(cfg) => {
                if self.noisy_samples.is_some() || self.stored.is_empty() {
                    return;
                }
                let n = self.stored.len() * self.physical_cols();
                let variation = cfg.variation;
                let samples = (0..n)
                    .map(|_| {
                        if variation.is_nominal() {
                            ferex_fefet::DeviceSample::NOMINAL
                        } else {
                            variation.sample(&mut self.rng)
                        }
                    })
                    .collect();
                self.noisy_samples = Some(samples);
            }
        }
    }

    /// Raw sensed row distances (in `I_unit` multiples) for a query,
    /// without the LTA decision.
    pub fn distances(&mut self, query: &[u32]) -> Result<Vec<f64>, FerexError> {
        self.validate(query)?;
        if self.stored.is_empty() {
            return Err(FerexError::Empty);
        }
        match &self.backend {
            Backend::Ideal => Ok(self
                .stored
                .iter()
                .map(|row| {
                    row.iter()
                        .zip(query)
                        .map(|(&s, &q)| self.encoding.cell_current(q as usize, s as usize) as f64)
                        .sum()
                })
                .collect()),
            Backend::Circuit(cfg) => {
                let options = cfg.options;
                self.program();
                let drives = self.drives_for(query)?;
                let xb = self.crossbar.as_ref().expect("programmed above");
                let i_unit = self.tech.i_unit().value();
                Ok(xb
                    .search(&drives, &options)
                    .into_iter()
                    .map(|i| i.value() / i_unit)
                    .collect())
            }
            Backend::Noisy(_) => {
                self.program();
                let samples = self.noisy_samples.as_ref().expect("programmed above");
                let k = self.encoding.k;
                let cols = self.physical_cols();
                let mut out = Vec::with_capacity(self.stored.len());
                for (r, row) in self.stored.iter().enumerate() {
                    let mut units = 0.0f64;
                    for (d, (&s, &q)) in row.iter().zip(query).enumerate() {
                        let st = &self.encoding.stored[s as usize];
                        let se = &self.encoding.search[q as usize];
                        for f in 0..k {
                            let m = se.vds_multiples[f];
                            if m == 0 {
                                continue;
                            }
                            let sample = &samples[r * cols + d * k + f];
                            let v_gate = self.tech.search_voltage(se.vgs_levels[f]);
                            let vth =
                                self.tech.vth_level(st.vth_levels[f]) + sample.dvth;
                            if v_gate > vth {
                                // Resistor clamp: I = V_ds / (R·r_factor).
                                units += m as f64 / sample.r_factor;
                            }
                        }
                    }
                    out.push(units);
                }
                Ok(out)
            }
        }
    }

    /// One associative search: senses all rows and reports the LTA's
    /// nearest row.
    ///
    /// # Errors
    ///
    /// [`FerexError::Empty`] if nothing is stored; validation errors for a
    /// malformed query.
    pub fn search(&mut self, query: &[u32]) -> Result<SearchOutcome, FerexError> {
        let distances = self.distances(query)?;
        let i_unit = self.tech.i_unit().value();
        let currents: Vec<Amp> = distances.iter().map(|&d| Amp(d * i_unit)).collect();
        let lta = match &self.backend {
            Backend::Ideal => LtaParams::ideal(),
            Backend::Circuit(cfg) | Backend::Noisy(cfg) => cfg.lta,
        };
        let decision = lta.sense(&currents, &mut self.rng);
        Ok(SearchOutcome { distances, nearest: decision.loser })
    }

    /// Digital distance readout: senses all rows and digitizes the row
    /// currents with the given ADC (full scale auto-ranged to the encoding
    /// maximum if `adc.full_scale` is zero). Returns per-row distance
    /// *codes* plus the conversion cost — the readout mode used when the
    /// application needs distance values rather than just the argmin
    /// (e.g. cross-tile accumulation or confidence scores).
    ///
    /// # Errors
    ///
    /// As [`FerexArray::distances`].
    pub fn read_digital(
        &mut self,
        query: &[u32],
        adc: &ferex_analog::adc::AdcParams,
        parallelism: usize,
    ) -> Result<ferex_analog::adc::AdcReadout, FerexError> {
        let distances = self.distances(query)?;
        let i_unit = self.tech.i_unit().value();
        let currents: Vec<Amp> = distances.iter().map(|&d| Amp(d * i_unit)).collect();
        let adc = if adc.full_scale.value() > 0.0 {
            *adc
        } else {
            // Auto-range: the worst-case row distance is max-DM-entry per
            // symbol across the whole vector.
            let max_units = (self.encoding.max_vds_multiple as usize
                * self.encoding.k
                * self.dim) as f64;
            ferex_analog::adc::AdcParams {
                full_scale: Amp(max_units * i_unit),
                ..*adc
            }
        };
        Ok(adc.read_out(&currents, parallelism))
    }

    /// k-nearest search via iterative LTA masking.
    ///
    /// # Errors
    ///
    /// As [`FerexArray::search`]; additionally if `k` exceeds the number of
    /// stored vectors.
    pub fn search_k(&mut self, query: &[u32], k: usize) -> Result<Vec<usize>, FerexError> {
        let distances = self.distances(query)?;
        if k == 0 || k > distances.len() {
            return Err(FerexError::Empty);
        }
        let i_unit = self.tech.i_unit().value();
        let currents: Vec<Amp> = distances.iter().map(|&d| Amp(d * i_unit)).collect();
        let lta = match &self.backend {
            Backend::Ideal => LtaParams::ideal(),
            Backend::Circuit(cfg) | Backend::Noisy(cfg) => cfg.lta,
        };
        Ok(lta.sense_k(&currents, k, &mut self.rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::DistanceMetric;
    use crate::dm::DistanceMatrix;
    use crate::sizing::{find_minimal_cell, SizingOptions};

    fn hamming_array(dim: usize, backend: Backend) -> FerexArray {
        let dm = DistanceMatrix::from_metric(DistanceMetric::Hamming, 2);
        let report = find_minimal_cell(&dm, &SizingOptions::default()).expect("sizes");
        FerexArray::new(Technology::default(), report.encoding, dim, backend)
    }

    #[test]
    fn ideal_search_matches_metric() {
        let mut a = hamming_array(4, Backend::Ideal);
        a.store(vec![0, 1, 2, 3]).unwrap();
        a.store(vec![3, 2, 1, 0]).unwrap();
        a.store(vec![0, 0, 0, 0]).unwrap();
        let q = [0, 1, 2, 0];
        let out = a.search(&q).unwrap();
        let m = DistanceMetric::Hamming;
        for (r, stored) in a.stored().iter().enumerate() {
            let expected = m.vector_distance(&q, stored) as f64;
            assert_eq!(out.distances[r], expected, "row {r}");
        }
        assert_eq!(out.nearest, 0);
    }

    #[test]
    fn circuit_search_agrees_with_ideal_when_nominal() {
        let cfg = CircuitConfig {
            variation: VariationModel::none(),
            lta: LtaParams::ideal(),
            ..Default::default()
        };
        let mut ideal = hamming_array(6, Backend::Ideal);
        let mut circuit = hamming_array(6, Backend::Circuit(Box::new(cfg)));
        let vectors = [vec![0, 1, 2, 3, 0, 1], vec![3, 3, 3, 3, 3, 3], vec![0, 0, 1, 1, 2, 2]];
        for v in &vectors {
            ideal.store(v.clone()).unwrap();
            circuit.store(v.clone()).unwrap();
        }
        let q = [0, 1, 2, 3, 1, 1];
        let oi = ideal.search(&q).unwrap();
        let oc = circuit.search(&q).unwrap();
        assert_eq!(oi.nearest, oc.nearest);
        for (a, b) in oi.distances.iter().zip(&oc.distances) {
            assert!((a - b).abs() < 0.1, "ideal {a} vs circuit {b}");
        }
    }

    #[test]
    fn search_k_orders_by_distance() {
        let mut a = hamming_array(4, Backend::Ideal);
        a.store(vec![0, 0, 0, 0]).unwrap(); // d = 4 from q
        a.store(vec![1, 1, 1, 1]).unwrap(); // d = 0
        a.store(vec![1, 1, 0, 0]).unwrap(); // d = 2
        let top = a.search_k(&[1, 1, 1, 1], 3).unwrap();
        assert_eq!(top, vec![1, 2, 0]);
    }

    #[test]
    fn reconfigure_keeps_stored_data() {
        let mut a = hamming_array(3, Backend::Ideal);
        a.store(vec![0, 3, 1]).unwrap();
        a.store(vec![2, 2, 2]).unwrap();
        let dm = DistanceMatrix::from_metric(DistanceMetric::Manhattan, 2);
        let enc = find_minimal_cell(&dm, &SizingOptions::default()).unwrap().encoding;
        a.reconfigure(enc).unwrap();
        let q = [0, 3, 0];
        let out = a.search(&q).unwrap();
        let m = DistanceMetric::Manhattan;
        for (r, stored) in a.stored().iter().enumerate() {
            assert_eq!(out.distances[r], m.vector_distance(&q, stored) as f64);
        }
    }

    #[test]
    fn validation_errors() {
        let mut a = hamming_array(3, Backend::Ideal);
        assert!(matches!(
            a.store(vec![0, 1]),
            Err(FerexError::DimensionMismatch { expected: 3, got: 2 })
        ));
        assert!(matches!(
            a.store(vec![0, 1, 4]),
            Err(FerexError::SymbolOutOfRange { value: 4, .. })
        ));
        assert!(matches!(a.search(&[0, 0, 0]), Err(FerexError::Empty)));
    }

    #[test]
    fn noisy_backend_matches_ideal_when_nominal() {
        let cfg = CircuitConfig {
            variation: VariationModel::none(),
            lta: LtaParams::ideal(),
            ..Default::default()
        };
        let mut ideal = hamming_array(8, Backend::Ideal);
        let mut noisy = hamming_array(8, Backend::Noisy(Box::new(cfg)));
        for v in [vec![0u32; 8], vec![3; 8], vec![0, 1, 2, 3, 0, 1, 2, 3]] {
            ideal.store(v.clone()).unwrap();
            noisy.store(v).unwrap();
        }
        let q = [0, 1, 2, 3, 3, 2, 1, 0];
        let oi = ideal.search(&q).unwrap();
        let on = noisy.search(&q).unwrap();
        assert_eq!(oi.distances, on.distances);
        assert_eq!(oi.nearest, on.nearest);
    }

    #[test]
    fn noisy_and_circuit_statistics_agree() {
        // The fast statistical backend must reproduce the device-level
        // backend's current statistics on the same workload: identical ON
        // counts in the nominal part, comparable spread under variation.
        let stored = vec![vec![0u32; 12], vec![1; 12]];
        let q = vec![3u32; 12]; // every cell conducts per the ladder
        let run = |backend: Backend| -> Vec<f64> {
            let mut a = hamming_array(12, backend);
            a.store_all(stored.clone()).unwrap();
            a.distances(&q).unwrap()
        };
        let mut noisy_spread = Vec::new();
        let mut circuit_spread = Vec::new();
        for seed in 0..6 {
            let cfg = CircuitConfig { seed, ..Default::default() };
            let n = run(Backend::Noisy(Box::new(cfg.clone())));
            let c = run(Backend::Circuit(Box::new(cfg)));
            for (dn, dc) in n.iter().zip(&c) {
                noisy_spread.push(*dn);
                circuit_spread.push(*dc);
                // Same workload, same error mechanisms: within a few
                // percent of each other on aggregate row current.
                assert!(
                    (dn - dc).abs() / dc < 0.15,
                    "noisy {dn} vs circuit {dc} diverge"
                );
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!((mean(&noisy_spread) - mean(&circuit_spread)).abs() < 1.0);
    }

    #[test]
    fn digital_readout_codes_track_distances() {
        use ferex_analog::adc::AdcParams;
        let mut a = hamming_array(8, Backend::Ideal);
        a.store(vec![0; 8]).unwrap();
        a.store(vec![1; 8]).unwrap();
        a.store(vec![3; 8]).unwrap();
        let q = vec![0u32; 8];
        // 10-bit ADC auto-ranged: integer distances must come back as
        // proportional codes preserving the ordering.
        let adc = AdcParams { bits: 10, full_scale: ferex_fefet::units::Amp(0.0), ..Default::default() };
        let readout = a.read_digital(&q, &adc, 1).unwrap();
        assert_eq!(readout.codes.len(), 3);
        assert!(readout.codes[0] < readout.codes[1]);
        assert!(readout.codes[1] < readout.codes[2]);
        assert!(readout.time.value() > 0.0);
        assert!(readout.energy.value() > 0.0);
    }

    #[test]
    fn remove_and_update_rows() {
        let mut a = hamming_array(2, Backend::Ideal);
        a.store(vec![0, 0]).unwrap();
        a.store(vec![1, 1]).unwrap();
        a.store(vec![2, 2]).unwrap();
        let removed = a.remove(1);
        assert_eq!(removed, vec![1, 1]);
        assert_eq!(a.len(), 2);
        assert_eq!(a.stored()[1], vec![2, 2]);
        a.update(0, vec![3, 3]).unwrap();
        let out = a.search(&[3, 3]).unwrap();
        assert_eq!(out.nearest, 0);
        assert_eq!(out.distances[0], 0.0);
        // Invalid update leaves the array unchanged.
        assert!(a.update(0, vec![9, 9]).is_err());
        assert_eq!(a.stored()[0], vec![3, 3]);
    }

    #[test]
    fn circuit_with_variation_is_deterministic_per_seed() {
        let mk = || {
            let cfg = CircuitConfig { seed: 42, ..Default::default() };
            let mut a = hamming_array(8, Backend::Circuit(Box::new(cfg)));
            a.store(vec![0; 8]).unwrap();
            a.store(vec![1; 8]).unwrap();
            a.search(&[0, 0, 0, 0, 1, 1, 1, 1]).unwrap()
        };
        assert_eq!(mk(), mk());
    }
}
