//! The FeReX associative-memory array: stored symbol vectors, searched in
//! one shot, nearest row reported by the LTA.
//!
//! A *logical* vector of `dim` b-bit symbols occupies one array row of
//! `dim × K` physical FeFET columns (K FeFETs per AM cell, from the sizing
//! step). Three backends expose the same API:
//!
//! * [`Backend::Ideal`] — noiseless functional model: cell currents are the
//!   encoding's exact integer units and the LTA is an exact argmin. This is
//!   the "software-based implementation" the paper compares accuracy
//!   against.
//! * [`Backend::Circuit`] — device-level model: a [`Crossbar`] of
//!   [`ferex_fefet::Cell`]s with device-to-device variation, IR drop and an
//!   offset-afflicted LTA. This is the Monte-Carlo subject of Fig. 7.
//! * [`Backend::Noisy`] — statistical variation model with the same error
//!   mechanisms but no per-cell device objects; tractable at
//!   application scale (HDC/KNN) and cross-validated against `Circuit`.
//!
//! # Lifecycle: program, then search
//!
//! Mutation and sensing are separate phases, mirroring the hardware. Writes
//! ([`FerexArray::store`], [`FerexArray::update`], …) mark the physical
//! state stale; [`FerexArray::program`] is the explicit, idempotent
//! transition that instantiates it (crossbar cells or variation samples).
//! Every read — [`FerexArray::distances`], [`FerexArray::search`],
//! [`FerexArray::search_batch`] — then takes `&self`, so a programmed array
//! can serve queries from many threads concurrently. Searching a stochastic
//! backend whose state is stale returns [`FerexError::NotProgrammed`]; the
//! ideal backend has no physical state and never needs programming.
//!
//! Sensing noise (the LTA offset) is drawn from a generator derived per
//! query: [`FerexArray::search_at`] seeds it from the backend seed and the
//! caller's query id, [`FerexArray::search`] assigns ids from an internal
//! counter, and [`FerexArray::search_batch`] uses the batch index — so on a
//! freshly programmed array, a loop of single searches and one batched call
//! produce bit-identical outcomes.

use crate::encoding::CellEncoding;
use crate::error::FerexError;
use ferex_analog::crossbar::{ArrayOptions, ColumnDrive, Crossbar};
use ferex_analog::lta::LtaParams;
use ferex_analog::parasitics::WireParams;
use ferex_fefet::faults::EffectiveCell;
use ferex_fefet::math::splitmix64;
use ferex_fefet::units::{Amp, Volt};
use ferex_fefet::{CellFault, FaultPlan, Technology, VariationModel};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// Domain-separation salt for per-query sensing streams, keeping them
/// disjoint from the per-tile seed derivation that feeds the same mixer.
const QUERY_STREAM_SALT: u64 = 0x51E0_D9AD_35B6_9E21;

/// Resistance scale applied to a [`CellFault::ResistorOpen`] cell in the
/// device-level backend: large enough that the residual current is far
/// below the sensing floor, small enough to keep the bisection solve
/// well-conditioned.
const OPEN_RESISTANCE_SCALE: f64 = 1.0e9;

/// Circuit-backend configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitConfig {
    /// Device-to-device variation model.
    pub variation: VariationModel,
    /// LTA comparator parameters.
    pub lta: LtaParams,
    /// Array electrical options (IR drop, exact solve, ScL bias).
    pub options: ArrayOptions,
    /// Wire parasitics.
    pub wire: WireParams,
    /// Fault-injection and aging campaign. The default plan is benign (no
    /// hard faults, no aging), so existing configurations are unaffected.
    /// Per-cell fault maps derive from this config's `seed`, so the Noisy
    /// and Circuit backends built from the same config fault the same
    /// cells — the basis of the differential conformance checks.
    pub faults: FaultPlan,
    /// Seed for variation sampling, fault maps and LTA offset noise.
    pub seed: u64,
}

impl Default for CircuitConfig {
    fn default() -> Self {
        CircuitConfig {
            variation: VariationModel::default(),
            lta: LtaParams::default(),
            options: ArrayOptions::default(),
            wire: WireParams::default(),
            faults: FaultPlan::none(),
            seed: 0xFE12EC5,
        }
    }
}

/// Which physical fidelity the array simulates at.
#[derive(Debug, Clone, PartialEq)]
pub enum Backend {
    /// Exact integer currents, exact argmin.
    Ideal,
    /// Device-level crossbar with variation and sensing offset: every cell
    /// is a full FeFET (Preisach ensemble + transistor + resistor). Highest
    /// fidelity, heavy — use for arrays up to a few thousand cells.
    Circuit(Box<CircuitConfig>),
    /// Statistical variation model without device objects: per-cell
    /// threshold shifts flip marginal ON/OFF decisions and per-cell resistor
    /// deviations scale ON currents, with the same LTA offset model.
    /// Memory-light — use for application-scale arrays (HDC, KNN). Validated
    /// against `Circuit` in the Fig. 7 cross-check.
    Noisy(Box<CircuitConfig>),
}

/// Result of one search operation.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOutcome {
    /// Sensed row distances in `I_unit` multiples (circuit backends include
    /// analog error).
    pub distances: Vec<f64>,
    /// Row index the LTA reported as nearest.
    pub nearest: usize,
}

/// A FeReX associative-memory array.
///
/// # Examples
///
/// ```
/// use ferex_core::array::{Backend, FerexArray};
/// use ferex_core::sizing::{find_minimal_cell, SizingOptions};
/// use ferex_core::{DistanceMatrix, DistanceMetric};
/// use ferex_fefet::Technology;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let dm = DistanceMatrix::from_metric(DistanceMetric::Hamming, 2);
/// let report = find_minimal_cell(&dm, &SizingOptions::default())?;
/// let mut array = FerexArray::new(Technology::default(), report.encoding, 4, Backend::Ideal);
/// array.store(vec![0, 1, 2, 3])?;
/// array.store(vec![3, 2, 1, 0])?;
/// array.program(); // explicit write→search transition (no-op for Ideal)
/// let out = array.search(&[0, 1, 2, 2])?;
/// assert_eq!(out.nearest, 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct FerexArray {
    tech: Technology,
    encoding: CellEncoding,
    dim: usize,
    backend: Backend,
    stored: Vec<Vec<u32>>,
    crossbar: Option<Crossbar>,
    /// Per-cell variation samples of the `Noisy` backend (row-major).
    noisy_samples: Option<Vec<ferex_fefet::DeviceSample>>,
    /// Per-cell hard-fault map (row-major physical cells), materialized by
    /// [`FerexArray::program`] when the backend's fault plan is non-benign.
    fault_map: Option<Vec<CellFault>>,
    /// Aged per-level thresholds (index = stored level), materialized
    /// alongside `fault_map`; `None` means fresh nominal levels.
    aged_vth: Option<Vec<Volt>>,
    /// Backend seed, cached for per-query stream derivation.
    seed: u64,
    /// Generator consumed by [`FerexArray::program`] (variation sampling).
    program_rng: StdRng,
    /// Monotone query-id source for [`FerexArray::search`] /
    /// [`FerexArray::search_k`]; atomic so issuing searches needs only
    /// `&self`.
    query_counter: AtomicU64,
}

impl Clone for FerexArray {
    fn clone(&self) -> Self {
        FerexArray {
            tech: self.tech.clone(),
            encoding: self.encoding.clone(),
            dim: self.dim,
            backend: self.backend.clone(),
            stored: self.stored.clone(),
            crossbar: self.crossbar.clone(),
            noisy_samples: self.noisy_samples.clone(),
            fault_map: self.fault_map.clone(),
            aged_vth: self.aged_vth.clone(),
            seed: self.seed,
            program_rng: self.program_rng.clone(),
            query_counter: AtomicU64::new(self.query_counter.load(Ordering::Relaxed)),
        }
    }
}

impl FerexArray {
    /// Creates an empty array for vectors of `dim` symbols.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(tech: Technology, encoding: CellEncoding, dim: usize, backend: Backend) -> Self {
        assert!(dim > 0, "vector dimension must be positive");
        let seed = match &backend {
            Backend::Ideal => 0,
            Backend::Circuit(c) | Backend::Noisy(c) => c.seed,
        };
        FerexArray {
            tech,
            encoding,
            dim,
            backend,
            stored: Vec::new(),
            crossbar: None,
            noisy_samples: None,
            fault_map: None,
            aged_vth: None,
            seed,
            program_rng: StdRng::seed_from_u64(seed),
            query_counter: AtomicU64::new(0),
        }
    }

    /// Number of stored vectors (array rows in use).
    pub fn len(&self) -> usize {
        self.stored.len()
    }

    /// `true` if no vectors are stored.
    pub fn is_empty(&self) -> bool {
        self.stored.is_empty()
    }

    /// Symbols per stored vector.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Physical FeFET columns per row (`dim × K`).
    pub fn physical_cols(&self) -> usize {
        self.dim * self.encoding.k
    }

    /// The cell encoding this array is programmed with.
    pub fn encoding(&self) -> &CellEncoding {
        &self.encoding
    }

    /// The stored vectors, in row order.
    pub fn stored(&self) -> &[Vec<u32>] {
        &self.stored
    }

    /// Swaps in a new encoding (reconfiguration to another distance
    /// function). Stored data is kept; the physical array will be
    /// re-programmed on the next search.
    pub fn reconfigure(&mut self, encoding: CellEncoding) -> Result<(), FerexError> {
        for v in &self.stored {
            for &s in v {
                if s as usize >= encoding.n_stored() {
                    return Err(FerexError::SymbolOutOfRange {
                        value: s,
                        n_values: encoding.n_stored(),
                    });
                }
            }
        }
        self.encoding = encoding;
        self.invalidate_physical_state();
        Ok(())
    }

    /// Drops all materialized physical state (crossbar cells, variation
    /// samples, fault maps): any mutation re-stales the array until the
    /// next [`FerexArray::program`].
    fn invalidate_physical_state(&mut self) {
        self.crossbar = None;
        self.noisy_samples = None;
        self.fault_map = None;
        self.aged_vth = None;
    }

    /// Checks that a vector has this array's dimension and that every
    /// symbol is representable under the current encoding, without storing
    /// anything (used by callers that need all-or-nothing store semantics,
    /// e.g. [`crate::tile::TiledArray::store`]).
    ///
    /// # Errors
    ///
    /// Dimension or symbol-range violations.
    pub fn validate(&self, vector: &[u32]) -> Result<(), FerexError> {
        if vector.len() != self.dim {
            return Err(FerexError::DimensionMismatch { expected: self.dim, got: vector.len() });
        }
        for &s in vector {
            if s as usize >= self.encoding.n_stored() {
                return Err(FerexError::SymbolOutOfRange {
                    value: s,
                    n_values: self.encoding.n_stored(),
                });
            }
        }
        Ok(())
    }

    /// Stores one vector into the next free row.
    ///
    /// # Errors
    ///
    /// Dimension or symbol-range violations.
    pub fn store(&mut self, vector: Vec<u32>) -> Result<(), FerexError> {
        self.validate(&vector)?;
        self.stored.push(vector);
        self.invalidate_physical_state(); // re-program lazily
        Ok(())
    }

    /// Stores many vectors.
    pub fn store_all<I: IntoIterator<Item = Vec<u32>>>(
        &mut self,
        vectors: I,
    ) -> Result<(), FerexError> {
        for v in vectors {
            self.store(v)?;
        }
        Ok(())
    }

    /// Clears all stored vectors.
    pub fn clear(&mut self) {
        self.stored.clear();
        self.invalidate_physical_state();
    }

    /// Removes the vector at `row` (later rows shift up — the physical
    /// analogue is erasing the row and compacting the row map). Returns the
    /// removed vector.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn remove(&mut self, row: usize) -> Vec<u32> {
        assert!(row < self.stored.len(), "row {row} out of range");
        let removed = self.stored.remove(row);
        self.invalidate_physical_state();
        removed
    }

    /// Replaces the vector at `row` in place (a row re-program).
    ///
    /// # Errors
    ///
    /// Validation errors; the array is unchanged on error.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn update(&mut self, row: usize, vector: Vec<u32>) -> Result<(), FerexError> {
        assert!(row < self.stored.len(), "row {row} out of range");
        self.validate(&vector)?;
        self.stored[row] = vector;
        self.invalidate_physical_state();
        Ok(())
    }

    /// Builds the column drives for a query (shared by search and the cost
    /// models).
    pub fn drives_for(&self, query: &[u32]) -> Result<Vec<ColumnDrive>, FerexError> {
        self.validate(query)?;
        let k = self.encoding.k;
        let mut drives = Vec::with_capacity(self.dim * k);
        for &q in query {
            let se = &self.encoding.search[q as usize];
            for f in 0..k {
                let v_gate = self.tech.search_voltage(se.vgs_levels[f]);
                let m = se.vds_multiples[f];
                let v_dl = if m == 0 { Volt(0.0) } else { self.tech.vds_for_multiple(m as usize) };
                drives.push(ColumnDrive { v_gate, v_dl });
            }
        }
        Ok(drives)
    }

    /// Programs the physical state for the current contents: the crossbar
    /// cells (`Circuit`) or the per-cell variation samples (`Noisy`). The
    /// explicit write→search phase transition: idempotent — re-invoking on
    /// an already-programmed array is a no-op — and required after any
    /// mutation before the `&self` read path will serve a stochastic
    /// backend. The ideal backend has no physical state; for it this is
    /// always a no-op.
    pub fn program(&mut self) {
        match &self.backend {
            Backend::Ideal => {}
            Backend::Circuit(cfg) => {
                if self.crossbar.is_some() || self.stored.is_empty() {
                    return;
                }
                let rows = self.stored.len();
                let cols = self.physical_cols();
                let plan = cfg.faults;
                let mut xb = Crossbar::with_variation(
                    self.tech.clone(),
                    cfg.wire,
                    rows,
                    cols,
                    &cfg.variation,
                    &mut self.program_rng,
                );
                let fault_map = (!plan.is_benign()).then(|| plan.fault_map(self.seed, rows * cols));
                let aged = plan.has_aging().then(|| plan.aged_vth_table(&self.tech));
                let k = self.encoding.k;
                for (r, vector) in self.stored.iter().enumerate() {
                    for (d, &s) in vector.iter().enumerate() {
                        let st = &self.encoding.stored[s as usize];
                        for f in 0..k {
                            let col = d * k + f;
                            let level = st.vth_levels[f];
                            let fault =
                                fault_map.as_ref().map_or(CellFault::None, |m| m[r * cols + col]);
                            match fault {
                                CellFault::None | CellFault::ResistorShort => {
                                    xb.program(r, col, level);
                                    if let Some(aged) = &aged {
                                        // Aging moves the written polarization;
                                        // the device's own ΔVth stays intact.
                                        let p = self.tech.polarization_for_vth(aged[level]);
                                        xb.cell_mut(r, col)
                                            .fefet_mut()
                                            .ferroelectric_mut()
                                            .set_polarization(p);
                                    }
                                    if fault == CellFault::ResistorShort {
                                        xb.cell_mut(r, col).scale_resistance(plan.short_residual_r);
                                    }
                                }
                                // Stuck fully set: conducts as the lowest level.
                                CellFault::StuckAtLowVth => xb.program(r, col, 0),
                                // Stuck fully reset: the erased state sits above
                                // every search level, so leave the fresh cell.
                                CellFault::StuckAtHighVth => {}
                                CellFault::ResistorOpen => {
                                    xb.program(r, col, level);
                                    xb.cell_mut(r, col).scale_resistance(OPEN_RESISTANCE_SCALE);
                                }
                            }
                        }
                    }
                }
                self.crossbar = Some(xb);
                self.fault_map = fault_map;
                self.aged_vth = aged;
            }
            Backend::Noisy(cfg) => {
                if self.noisy_samples.is_some() || self.stored.is_empty() {
                    return;
                }
                let n = self.stored.len() * self.physical_cols();
                let variation = cfg.variation;
                let plan = cfg.faults;
                let samples = (0..n)
                    .map(|_| {
                        if variation.is_nominal() {
                            ferex_fefet::DeviceSample::NOMINAL
                        } else {
                            variation.sample(&mut self.program_rng)
                        }
                    })
                    .collect();
                self.noisy_samples = Some(samples);
                if !plan.is_benign() {
                    self.fault_map = Some(plan.fault_map(self.seed, n));
                    self.aged_vth = Some(plan.aged_vth_table(&self.tech));
                }
            }
        }
    }

    /// The per-cell fault map materialized by the last
    /// [`FerexArray::program`] (row-major physical cells), or `None` when
    /// the fault plan is benign, the array unprogrammed, or the backend
    /// ideal.
    pub fn fault_map(&self) -> Option<&[CellFault]> {
        self.fault_map.as_deref()
    }

    /// `true` when the physical state matches the stored contents — i.e.
    /// the `&self` read path will serve. Always `true` for the ideal
    /// backend and for an empty array.
    pub fn is_programmed(&self) -> bool {
        match &self.backend {
            Backend::Ideal => true,
            Backend::Circuit(_) => self.stored.is_empty() || self.crossbar.is_some(),
            Backend::Noisy(_) => self.stored.is_empty() || self.noisy_samples.is_some(),
        }
    }

    fn require_programmed(&self) -> Result<(), FerexError> {
        if self.is_programmed() {
            Ok(())
        } else {
            Err(FerexError::NotProgrammed)
        }
    }

    /// The sensing-noise generator for query id `qid`: derived from the
    /// backend seed by avalanche mixing, so streams for distinct ids (and
    /// for adjacent base seeds) are decorrelated, and a given `(seed, qid)`
    /// pair always reproduces the same draw.
    fn rng_for_query(&self, qid: u64) -> StdRng {
        StdRng::seed_from_u64(splitmix64(self.seed ^ splitmix64(qid ^ QUERY_STREAM_SALT)))
    }

    fn lta(&self) -> LtaParams {
        match &self.backend {
            Backend::Ideal => LtaParams::ideal(),
            Backend::Circuit(cfg) | Backend::Noisy(cfg) => cfg.lta,
        }
    }

    fn to_currents(&self, distances: &[f64]) -> Vec<Amp> {
        let i_unit = self.tech.i_unit().value();
        distances.iter().map(|&d| Amp(d * i_unit)).collect()
    }

    /// Raw sensed row distances (in `I_unit` multiples) for a query,
    /// without the LTA decision.
    ///
    /// # Errors
    ///
    /// [`FerexError::Empty`] if nothing is stored; validation errors for a
    /// malformed query; [`FerexError::NotProgrammed`] if a stochastic
    /// backend's state is stale (call [`FerexArray::program`] after
    /// mutating).
    pub fn distances(&self, query: &[u32]) -> Result<Vec<f64>, FerexError> {
        self.validate(query)?;
        if self.stored.is_empty() {
            return Err(FerexError::Empty);
        }
        self.require_programmed()?;
        match &self.backend {
            Backend::Ideal => Ok(self
                .stored
                .iter()
                .map(|row| {
                    row.iter()
                        .zip(query)
                        .map(|(&s, &q)| self.encoding.cell_current(q as usize, s as usize) as f64)
                        .sum()
                })
                .collect()),
            Backend::Circuit(cfg) => {
                let drives = self.drives_for(query)?;
                let xb = self.crossbar.as_ref().expect("guarded by require_programmed");
                let i_unit = self.tech.i_unit().value();
                Ok(xb
                    .search(&drives, &cfg.options)
                    .into_iter()
                    .map(|i| i.value() / i_unit)
                    .collect())
            }
            Backend::Noisy(cfg) => {
                let samples = self.noisy_samples.as_ref().expect("guarded by require_programmed");
                let plan = &cfg.faults;
                let k = self.encoding.k;
                let cols = self.physical_cols();
                let mut out = Vec::with_capacity(self.stored.len());
                for (r, row) in self.stored.iter().enumerate() {
                    let mut units = 0.0f64;
                    for (d, (&s, &q)) in row.iter().zip(query).enumerate() {
                        let st = &self.encoding.stored[s as usize];
                        let se = &self.encoding.search[q as usize];
                        for f in 0..k {
                            let m = se.vds_multiples[f];
                            if m == 0 {
                                continue;
                            }
                            let index = r * cols + d * k + f;
                            let v_gate = self.tech.search_voltage(se.vgs_levels[f]);
                            units += self.noisy_cell_units(
                                plan,
                                index,
                                st.vth_levels[f],
                                &samples[index],
                                v_gate,
                                m,
                            );
                        }
                    }
                    out.push(units);
                }
                Ok(out)
            }
        }
    }

    /// Row distances for every query of a batch.
    ///
    /// Semantically a loop of [`FerexArray::distances`] calls — results are
    /// bit-identical — but served differently: on the `Noisy` backend a
    /// per-batch table of (stored cell × query symbol) current
    /// contributions is precomputed once, turning the per-query inner loop
    /// into pure table lookups and additions, and queries fan out across
    /// worker threads. Amortizes the per-cell voltage/threshold arithmetic
    /// over the whole batch.
    ///
    /// # Errors
    ///
    /// As [`FerexArray::distances`]; the whole batch is validated before
    /// any work happens.
    pub fn distances_batch(&self, queries: &[Vec<u32>]) -> Result<Vec<Vec<f64>>, FerexError> {
        for q in queries {
            self.validate(q)?;
        }
        if self.stored.is_empty() {
            return Err(FerexError::Empty);
        }
        self.require_programmed()?;
        if queries.is_empty() {
            return Ok(Vec::new());
        }
        match &self.backend {
            Backend::Noisy(_) => Ok(self.noisy_distances_batch(queries)),
            // Ideal is pure arithmetic and Circuit re-solves the crossbar
            // per query; both just fan the scalar path out over threads.
            Backend::Ideal | Backend::Circuit(_) => Ok(queries
                .par_iter()
                .map(|q| self.distances(q).expect("batch pre-validated"))
                .collect()),
        }
    }

    /// One `Noisy`-backend cell's current contribution in `I_unit`
    /// multiples — the single definition shared by the scalar
    /// ([`FerexArray::distances`]) and batched
    /// ([`FerexArray::noisy_distances_batch`]) read paths, so the two stay
    /// bit-identical under any fault plan. With no fault state materialized
    /// this reduces to the nominal resistor-clamp expression
    /// `I = m / r_factor` gated on `V_gate > V_th + ΔV_th`.
    #[inline]
    fn noisy_cell_units(
        &self,
        plan: &FaultPlan,
        index: usize,
        level: usize,
        sample: &ferex_fefet::DeviceSample,
        v_gate: Volt,
        m: u32,
    ) -> f64 {
        if let (Some(map), Some(aged)) = (&self.fault_map, &self.aged_vth) {
            let eff: EffectiveCell =
                plan.effective_cell(&self.tech, map[index], aged, level, sample);
            match eff.vth {
                Some(vth) if v_gate > vth => m as f64 / eff.r_factor,
                _ => 0.0,
            }
        } else {
            let vth = self.tech.vth_level(level) + sample.dvth;
            if v_gate > vth {
                // Resistor clamp: I = V_ds / (R·r_factor).
                m as f64 / sample.r_factor
            } else {
                0.0
            }
        }
    }

    /// The `Noisy` fast path: one contribution table per batch.
    ///
    /// `contrib[((r·dim + d)·n_search + q)·k + f]` holds the current (in
    /// `I_unit` multiples) cell `(r, d, f)` adds when driven with query
    /// symbol `q` — zero for OFF cells. Summation order over `(d, f)`
    /// matches the scalar path exactly, and adding the 0.0 entries the
    /// scalar path skips is exact for these non-negative terms, so batch
    /// distances are bit-identical to [`FerexArray::distances`].
    fn noisy_distances_batch(&self, queries: &[Vec<u32>]) -> Vec<Vec<f64>> {
        let samples = self.noisy_samples.as_ref().expect("checked by caller");
        let plan = match &self.backend {
            Backend::Noisy(cfg) => &cfg.faults,
            _ => unreachable!("noisy fast path on non-noisy backend"),
        };
        let k = self.encoding.k;
        let dim = self.dim;
        let cols = self.physical_cols();
        let n_search = self.encoding.search.len();
        let rows = self.stored.len();
        let row_stride = dim * n_search * k;

        let mut contrib = vec![0.0f64; rows * row_stride];
        for (r, row) in self.stored.iter().enumerate() {
            for (d, &s) in row.iter().enumerate() {
                let st = &self.encoding.stored[s as usize];
                let cell_base = (r * dim + d) * n_search * k;
                for (q, se) in self.encoding.search.iter().enumerate() {
                    for f in 0..k {
                        let m = se.vds_multiples[f];
                        if m == 0 {
                            continue;
                        }
                        let index = r * cols + d * k + f;
                        let v_gate = self.tech.search_voltage(se.vgs_levels[f]);
                        contrib[cell_base + q * k + f] = self.noisy_cell_units(
                            plan,
                            index,
                            st.vth_levels[f],
                            &samples[index],
                            v_gate,
                            m,
                        );
                    }
                }
            }
        }

        // Fan queries out in contiguous chunks; within a chunk iterate rows
        // outer / queries inner so one row's table slice stays cache-hot
        // across the whole chunk.
        let chunk = queries.len().div_ceil(rayon::current_num_threads());
        let per_chunk: Vec<Vec<Vec<f64>>> = queries
            .par_chunks(chunk)
            .map(|qs| {
                let mut out = vec![vec![0.0f64; rows]; qs.len()];
                for r in 0..rows {
                    let row_lut = &contrib[r * row_stride..(r + 1) * row_stride];
                    for (qi, query) in qs.iter().enumerate() {
                        let mut units = 0.0f64;
                        for (d, &q) in query.iter().enumerate() {
                            let base = (d * n_search + q as usize) * k;
                            for c in &row_lut[base..base + k] {
                                units += c;
                            }
                        }
                        out[qi][r] = units;
                    }
                }
                out
            })
            .collect();
        per_chunk.into_iter().flatten().collect()
    }

    /// One associative search with an explicit query id: senses all rows
    /// and reports the LTA's nearest row, drawing sensing noise from the
    /// stream derived for `qid`. The deterministic building block —
    /// `search_at(q, i)` always reproduces the same outcome on the same
    /// programmed array, from any thread.
    ///
    /// # Errors
    ///
    /// As [`FerexArray::distances`].
    pub fn search_at(&self, query: &[u32], qid: u64) -> Result<SearchOutcome, FerexError> {
        let distances = self.distances(query)?;
        Ok(self.sense_nearest(distances, qid))
    }

    fn sense_nearest(&self, distances: Vec<f64>, qid: u64) -> SearchOutcome {
        let currents = self.to_currents(&distances);
        let decision = self.lta().sense(&currents, &mut self.rng_for_query(qid));
        SearchOutcome { distances, nearest: decision.loser }
    }

    /// One associative search: [`FerexArray::search_at`] with the next id
    /// from the array's internal query counter (fresh sensing noise per
    /// call, no `&mut` needed).
    ///
    /// # Errors
    ///
    /// As [`FerexArray::distances`].
    pub fn search(&self, query: &[u32]) -> Result<SearchOutcome, FerexError> {
        let qid = self.query_counter.fetch_add(1, Ordering::Relaxed);
        self.search_at(query, qid)
    }

    /// Searches a whole batch, assigning query ids `0..queries.len()`:
    /// equivalent to `queries.iter().enumerate().map(|(i, q)|
    /// self.search_at(q, i as u64))`, with distances served through the
    /// batched fast path of [`FerexArray::distances_batch`]. Pure in
    /// `&self` — concurrent batches over a shared array return identical
    /// results.
    ///
    /// # Errors
    ///
    /// As [`FerexArray::distances_batch`].
    pub fn search_batch(&self, queries: &[Vec<u32>]) -> Result<Vec<SearchOutcome>, FerexError> {
        let distances = self.distances_batch(queries)?;
        Ok(distances
            .into_iter()
            .enumerate()
            .map(|(i, d)| self.sense_nearest(d, i as u64))
            .collect())
    }

    /// Digital distance readout: senses all rows and digitizes the row
    /// currents with the given ADC (full scale auto-ranged to the encoding
    /// maximum if `adc.full_scale` is zero). Returns per-row distance
    /// *codes* plus the conversion cost — the readout mode used when the
    /// application needs distance values rather than just the argmin
    /// (e.g. cross-tile accumulation or confidence scores).
    ///
    /// # Errors
    ///
    /// As [`FerexArray::distances`].
    pub fn read_digital(
        &self,
        query: &[u32],
        adc: &ferex_analog::adc::AdcParams,
        parallelism: usize,
    ) -> Result<ferex_analog::adc::AdcReadout, FerexError> {
        let distances = self.distances(query)?;
        let i_unit = self.tech.i_unit().value();
        let currents = self.to_currents(&distances);
        let adc = if adc.full_scale.value() > 0.0 {
            *adc
        } else {
            // Auto-range: the worst-case row distance is max-DM-entry per
            // symbol across the whole vector.
            let max_units =
                (self.encoding.max_vds_multiple as usize * self.encoding.k * self.dim) as f64;
            ferex_analog::adc::AdcParams { full_scale: Amp(max_units * i_unit), ..*adc }
        };
        Ok(adc.read_out(&currents, parallelism))
    }

    fn sense_k(&self, distances: &[f64], k: usize, qid: u64) -> Result<Vec<usize>, FerexError> {
        if k == 0 || k > distances.len() {
            return Err(FerexError::InvalidK { k, rows: distances.len() });
        }
        let currents = self.to_currents(distances);
        Ok(self.lta().sense_k(&currents, k, &mut self.rng_for_query(qid)))
    }

    /// k-nearest search via iterative LTA masking, with an explicit query
    /// id (see [`FerexArray::search_at`]).
    ///
    /// # Errors
    ///
    /// As [`FerexArray::distances`]; [`FerexError::InvalidK`] when `k` is
    /// zero or exceeds the number of stored vectors.
    pub fn search_k_at(&self, query: &[u32], k: usize, qid: u64) -> Result<Vec<usize>, FerexError> {
        let distances = self.distances(query)?;
        self.sense_k(&distances, k, qid)
    }

    /// k-nearest search via iterative LTA masking, drawing the query id
    /// from the internal counter.
    ///
    /// # Errors
    ///
    /// As [`FerexArray::search_k_at`].
    pub fn search_k(&self, query: &[u32], k: usize) -> Result<Vec<usize>, FerexError> {
        let qid = self.query_counter.fetch_add(1, Ordering::Relaxed);
        self.search_k_at(query, k, qid)
    }

    /// k-nearest search for a whole batch, assigning query ids
    /// `0..queries.len()`; distances come through the batched fast path.
    ///
    /// # Errors
    ///
    /// As [`FerexArray::distances_batch`] and [`FerexArray::search_k_at`].
    pub fn search_k_batch(
        &self,
        queries: &[Vec<u32>],
        k: usize,
    ) -> Result<Vec<Vec<usize>>, FerexError> {
        let distances = self.distances_batch(queries)?;
        distances.into_iter().enumerate().map(|(i, d)| self.sense_k(&d, k, i as u64)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::DistanceMetric;
    use crate::dm::DistanceMatrix;
    use crate::sizing::{find_minimal_cell, SizingOptions};

    fn hamming_array(dim: usize, backend: Backend) -> FerexArray {
        let dm = DistanceMatrix::from_metric(DistanceMetric::Hamming, 2);
        let report = find_minimal_cell(&dm, &SizingOptions::default()).expect("sizes");
        FerexArray::new(Technology::default(), report.encoding, dim, backend)
    }

    #[test]
    fn ideal_search_matches_metric() {
        let mut a = hamming_array(4, Backend::Ideal);
        a.store(vec![0, 1, 2, 3]).unwrap();
        a.store(vec![3, 2, 1, 0]).unwrap();
        a.store(vec![0, 0, 0, 0]).unwrap();
        let q = [0, 1, 2, 0];
        let out = a.search(&q).unwrap();
        let m = DistanceMetric::Hamming;
        for (r, stored) in a.stored().iter().enumerate() {
            let expected = m.vector_distance(&q, stored) as f64;
            assert_eq!(out.distances[r], expected, "row {r}");
        }
        assert_eq!(out.nearest, 0);
    }

    #[test]
    fn circuit_search_agrees_with_ideal_when_nominal() {
        let cfg = CircuitConfig {
            variation: VariationModel::none(),
            lta: LtaParams::ideal(),
            ..Default::default()
        };
        let mut ideal = hamming_array(6, Backend::Ideal);
        let mut circuit = hamming_array(6, Backend::Circuit(Box::new(cfg)));
        let vectors = [vec![0, 1, 2, 3, 0, 1], vec![3, 3, 3, 3, 3, 3], vec![0, 0, 1, 1, 2, 2]];
        for v in &vectors {
            ideal.store(v.clone()).unwrap();
            circuit.store(v.clone()).unwrap();
        }
        let q = [0, 1, 2, 3, 1, 1];
        circuit.program();
        let oi = ideal.search(&q).unwrap();
        let oc = circuit.search(&q).unwrap();
        assert_eq!(oi.nearest, oc.nearest);
        for (a, b) in oi.distances.iter().zip(&oc.distances) {
            assert!((a - b).abs() < 0.1, "ideal {a} vs circuit {b}");
        }
    }

    #[test]
    fn search_k_orders_by_distance() {
        let mut a = hamming_array(4, Backend::Ideal);
        a.store(vec![0, 0, 0, 0]).unwrap(); // d = 4 from q
        a.store(vec![1, 1, 1, 1]).unwrap(); // d = 0
        a.store(vec![1, 1, 0, 0]).unwrap(); // d = 2
        let top = a.search_k(&[1, 1, 1, 1], 3).unwrap();
        assert_eq!(top, vec![1, 2, 0]);
    }

    #[test]
    fn reconfigure_keeps_stored_data() {
        let mut a = hamming_array(3, Backend::Ideal);
        a.store(vec![0, 3, 1]).unwrap();
        a.store(vec![2, 2, 2]).unwrap();
        let dm = DistanceMatrix::from_metric(DistanceMetric::Manhattan, 2);
        let enc = find_minimal_cell(&dm, &SizingOptions::default()).unwrap().encoding;
        a.reconfigure(enc).unwrap();
        let q = [0, 3, 0];
        let out = a.search(&q).unwrap();
        let m = DistanceMetric::Manhattan;
        for (r, stored) in a.stored().iter().enumerate() {
            assert_eq!(out.distances[r], m.vector_distance(&q, stored) as f64);
        }
    }

    #[test]
    fn validation_errors() {
        let mut a = hamming_array(3, Backend::Ideal);
        assert!(matches!(
            a.store(vec![0, 1]),
            Err(FerexError::DimensionMismatch { expected: 3, got: 2 })
        ));
        assert!(matches!(
            a.store(vec![0, 1, 4]),
            Err(FerexError::SymbolOutOfRange { value: 4, .. })
        ));
        assert!(matches!(a.search(&[0, 0, 0]), Err(FerexError::Empty)));
    }

    #[test]
    fn noisy_backend_matches_ideal_when_nominal() {
        let cfg = CircuitConfig {
            variation: VariationModel::none(),
            lta: LtaParams::ideal(),
            ..Default::default()
        };
        let mut ideal = hamming_array(8, Backend::Ideal);
        let mut noisy = hamming_array(8, Backend::Noisy(Box::new(cfg)));
        for v in [vec![0u32; 8], vec![3; 8], vec![0, 1, 2, 3, 0, 1, 2, 3]] {
            ideal.store(v.clone()).unwrap();
            noisy.store(v).unwrap();
        }
        let q = [0, 1, 2, 3, 3, 2, 1, 0];
        noisy.program();
        let oi = ideal.search(&q).unwrap();
        let on = noisy.search(&q).unwrap();
        assert_eq!(oi.distances, on.distances);
        assert_eq!(oi.nearest, on.nearest);
    }

    #[test]
    fn noisy_and_circuit_statistics_agree() {
        // The fast statistical backend must reproduce the device-level
        // backend's current statistics on the same workload: identical ON
        // counts in the nominal part, comparable spread under variation.
        let stored = vec![vec![0u32; 12], vec![1; 12]];
        let q = vec![3u32; 12]; // every cell conducts per the ladder
        let run = |backend: Backend| -> Vec<f64> {
            let mut a = hamming_array(12, backend);
            a.store_all(stored.clone()).unwrap();
            a.program();
            a.distances(&q).unwrap()
        };
        let mut noisy_spread = Vec::new();
        let mut circuit_spread = Vec::new();
        for seed in 0..6 {
            let cfg = CircuitConfig { seed, ..Default::default() };
            let n = run(Backend::Noisy(Box::new(cfg.clone())));
            let c = run(Backend::Circuit(Box::new(cfg)));
            for (dn, dc) in n.iter().zip(&c) {
                noisy_spread.push(*dn);
                circuit_spread.push(*dc);
                // Same workload, same error mechanisms: within a few
                // percent of each other on aggregate row current.
                assert!((dn - dc).abs() / dc < 0.15, "noisy {dn} vs circuit {dc} diverge");
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!((mean(&noisy_spread) - mean(&circuit_spread)).abs() < 1.0);
    }

    #[test]
    fn digital_readout_codes_track_distances() {
        use ferex_analog::adc::AdcParams;
        let mut a = hamming_array(8, Backend::Ideal);
        a.store(vec![0; 8]).unwrap();
        a.store(vec![1; 8]).unwrap();
        a.store(vec![3; 8]).unwrap();
        let q = vec![0u32; 8];
        // 10-bit ADC auto-ranged: integer distances must come back as
        // proportional codes preserving the ordering.
        let adc =
            AdcParams { bits: 10, full_scale: ferex_fefet::units::Amp(0.0), ..Default::default() };
        let readout = a.read_digital(&q, &adc, 1).unwrap();
        assert_eq!(readout.codes.len(), 3);
        assert!(readout.codes[0] < readout.codes[1]);
        assert!(readout.codes[1] < readout.codes[2]);
        assert!(readout.time.value() > 0.0);
        assert!(readout.energy.value() > 0.0);
    }

    #[test]
    fn remove_and_update_rows() {
        let mut a = hamming_array(2, Backend::Ideal);
        a.store(vec![0, 0]).unwrap();
        a.store(vec![1, 1]).unwrap();
        a.store(vec![2, 2]).unwrap();
        let removed = a.remove(1);
        assert_eq!(removed, vec![1, 1]);
        assert_eq!(a.len(), 2);
        assert_eq!(a.stored()[1], vec![2, 2]);
        a.update(0, vec![3, 3]).unwrap();
        let out = a.search(&[3, 3]).unwrap();
        assert_eq!(out.nearest, 0);
        assert_eq!(out.distances[0], 0.0);
        // Invalid update leaves the array unchanged.
        assert!(a.update(0, vec![9, 9]).is_err());
        assert_eq!(a.stored()[0], vec![3, 3]);
    }

    #[test]
    fn circuit_with_variation_is_deterministic_per_seed() {
        let mk = || {
            let cfg = CircuitConfig { seed: 42, ..Default::default() };
            let mut a = hamming_array(8, Backend::Circuit(Box::new(cfg)));
            a.store(vec![0; 8]).unwrap();
            a.store(vec![1; 8]).unwrap();
            a.program();
            a.search(&[0, 0, 0, 0, 1, 1, 1, 1]).unwrap()
        };
        assert_eq!(mk(), mk());
    }

    fn noisy_cfg(seed: u64) -> Backend {
        Backend::Noisy(Box::new(CircuitConfig { seed, ..Default::default() }))
    }

    #[test]
    fn stale_stochastic_state_is_rejected_until_programmed() {
        let mut a = hamming_array(4, noisy_cfg(11));
        a.store(vec![0, 1, 2, 3]).unwrap();
        assert_eq!(a.search(&[0, 1, 2, 3]), Err(FerexError::NotProgrammed));
        assert!(!a.is_programmed());
        a.program();
        assert!(a.is_programmed());
        assert!(a.search(&[0, 1, 2, 3]).is_ok());
        // Any mutation re-stales the state…
        a.store(vec![3, 3, 3, 3]).unwrap();
        assert_eq!(a.distances(&[0; 4]), Err(FerexError::NotProgrammed));
        // …and program() is idempotent once re-run.
        a.program();
        a.program();
        assert!(a.search_k(&[0; 4], 2).is_ok());
    }

    #[test]
    fn program_is_idempotent_for_variation_samples() {
        let mut a = hamming_array(6, noisy_cfg(5));
        a.store(vec![0; 6]).unwrap();
        a.program();
        let before = a.distances(&[3; 6]).unwrap();
        a.program(); // no-op: must not redraw the variation samples
        assert_eq!(before, a.distances(&[3; 6]).unwrap());
    }

    #[test]
    fn invalid_k_reports_dedicated_error() {
        let mut a = hamming_array(2, Backend::Ideal);
        a.store(vec![0, 0]).unwrap();
        a.store(vec![1, 1]).unwrap();
        assert_eq!(a.search_k(&[0, 0], 0), Err(FerexError::InvalidK { k: 0, rows: 2 }));
        assert_eq!(a.search_k(&[0, 0], 3), Err(FerexError::InvalidK { k: 3, rows: 2 }));
        // An empty array still reports Empty, not InvalidK.
        let empty = hamming_array(2, Backend::Ideal);
        assert_eq!(empty.search_k(&[0, 0], 1), Err(FerexError::Empty));
    }

    fn batch_fixture(backend: Backend) -> (FerexArray, Vec<Vec<u32>>) {
        let mut a = hamming_array(8, backend);
        for r in 0..12u32 {
            a.store((0..8).map(|d| (r + d) % 4).collect()).unwrap();
        }
        a.program();
        let queries: Vec<Vec<u32>> =
            (0..9u32).map(|q| (0..8).map(|d| (q * 3 + d) % 4).collect()).collect();
        (a, queries)
    }

    #[test]
    fn batch_search_is_bit_identical_to_sequential() {
        for backend in [
            Backend::Ideal,
            Backend::Circuit(Box::new(CircuitConfig { seed: 77, ..Default::default() })),
            Backend::Noisy(Box::new(CircuitConfig { seed: 77, ..Default::default() })),
        ] {
            let (a, queries) = batch_fixture(backend.clone());
            let batched = a.search_batch(&queries).unwrap();
            let sequential: Vec<SearchOutcome> = queries
                .iter()
                .enumerate()
                .map(|(i, q)| a.search_at(q, i as u64).unwrap())
                .collect();
            assert_eq!(batched, sequential, "backend {backend:?}");
            // On a fresh array the counter starts at 0, so plain search()
            // in a loop reproduces the batch too.
            let counted: Vec<SearchOutcome> =
                queries.iter().map(|q| a.search(q).unwrap()).collect();
            assert_eq!(batched, counted, "counter path, backend {backend:?}");
        }
    }

    #[test]
    fn batch_search_k_is_bit_identical_to_sequential() {
        let (a, queries) = batch_fixture(noisy_cfg(13));
        let batched = a.search_k_batch(&queries, 3).unwrap();
        for (i, q) in queries.iter().enumerate() {
            assert_eq!(batched[i], a.search_k_at(q, 3, i as u64).unwrap());
        }
    }

    #[test]
    fn batch_validates_every_query_before_serving() {
        let (a, mut queries) = batch_fixture(Backend::Ideal);
        queries.last_mut().unwrap()[0] = 9; // out of range, last query
        assert!(matches!(
            a.search_batch(&queries),
            Err(FerexError::SymbolOutOfRange { value: 9, .. })
        ));
        assert_eq!(a.search_batch(&[]).unwrap(), Vec::<SearchOutcome>::new());
    }

    /// Deterministic fault-study corner: no variation, ideal LTA, so every
    /// difference from the benign run is attributable to the plan.
    fn faulty_cfg(plan: FaultPlan, seed: u64) -> CircuitConfig {
        CircuitConfig {
            variation: VariationModel::none(),
            lta: LtaParams::ideal(),
            faults: plan,
            seed,
            ..Default::default()
        }
    }

    #[test]
    fn benign_plan_materializes_no_fault_state() {
        let mut a = hamming_array(4, Backend::Noisy(Box::new(faulty_cfg(FaultPlan::none(), 3))));
        a.store(vec![0, 1, 2, 3]).unwrap();
        a.program();
        assert!(a.fault_map().is_none());
        assert!(a.is_programmed());
    }

    #[test]
    fn dead_cells_never_conduct() {
        for plan in [
            FaultPlan { sa1_rate: 1.0, ..Default::default() },
            FaultPlan { open_rate: 1.0, ..Default::default() },
        ] {
            let mut a = hamming_array(4, Backend::Noisy(Box::new(faulty_cfg(plan, 1))));
            a.store(vec![0, 1, 2, 3]).unwrap();
            a.program();
            assert_eq!(a.distances(&[3, 2, 1, 0]).unwrap(), vec![0.0], "{plan:?}");
        }
    }

    #[test]
    fn sa0_cells_conduct_as_level_zero() {
        let plan = FaultPlan { sa0_rate: 1.0, ..Default::default() };
        let mut a = hamming_array(4, Backend::Noisy(Box::new(faulty_cfg(plan, 1))));
        a.store(vec![0, 1, 2, 3]).unwrap();
        a.program();
        let q = [2u32, 2, 2, 2];
        // Every cell behaves as stored level 0, so the row current is the
        // query's total drive over fets whose search level turns level 0 on.
        let enc = a.encoding().clone();
        let expected: f64 = q
            .iter()
            .map(|&qq| {
                let se = &enc.search[qq as usize];
                (0..enc.k)
                    .map(|f| if se.vgs_levels[f] > 0 { se.vds_multiples[f] as f64 } else { 0.0 })
                    .sum::<f64>()
            })
            .sum();
        assert_eq!(a.distances(&q).unwrap(), vec![expected]);
    }

    #[test]
    fn shorted_cells_scale_contributions_exactly() {
        let short = FaultPlan { short_rate: 1.0, short_residual_r: 0.5, ..Default::default() };
        let run = |plan: FaultPlan| {
            let mut a = hamming_array(4, Backend::Noisy(Box::new(faulty_cfg(plan, 1))));
            a.store(vec![0, 1, 2, 3]).unwrap();
            a.program();
            a.distances(&[2, 2, 2, 2]).unwrap()
        };
        let benign = run(FaultPlan::none());
        let shorted = run(short);
        assert!(benign[0] > 0.0);
        for (b, s) in benign.iter().zip(&shorted) {
            assert_eq!(*s, b * 2.0, "residual 0.5 must exactly double the clamp current");
        }
    }

    #[test]
    fn aging_alters_distances_deterministically() {
        // Deep fatigue contracts the window far enough that search levels
        // stop resolving adjacent stored levels.
        let plan = FaultPlan { endurance_cycles: 1.0e9, ..Default::default() };
        let run = |plan: FaultPlan| {
            let mut a = hamming_array(6, Backend::Noisy(Box::new(faulty_cfg(plan, 2))));
            a.store(vec![0, 1, 2, 3, 0, 1]).unwrap();
            a.store(vec![3, 2, 1, 0, 3, 2]).unwrap();
            a.program();
            a.distances(&[0, 1, 2, 3, 3, 3]).unwrap()
        };
        let aged = run(plan);
        assert_eq!(aged, run(plan), "aging must be deterministic");
        assert_ne!(aged, run(FaultPlan::none()), "deep fatigue must move the distances");
    }

    #[test]
    fn faulted_batch_distances_match_scalar_exactly() {
        let plan = FaultPlan {
            sa0_rate: 0.1,
            sa1_rate: 0.1,
            open_rate: 0.1,
            short_rate: 0.1,
            retention_seconds: 1.0e7,
            endurance_cycles: 1.0e8,
            ..Default::default()
        };
        // Full variation on top of the faults: the scalar and batched reads
        // must still agree bit-for-bit.
        let cfg = CircuitConfig { faults: plan, seed: 21, ..Default::default() };
        let (a, queries) = batch_fixture(Backend::Noisy(Box::new(cfg)));
        let batched = a.distances_batch(&queries).unwrap();
        for (i, q) in queries.iter().enumerate() {
            assert_eq!(batched[i], a.distances(q).unwrap(), "query {i}");
        }
    }

    #[test]
    fn noisy_and_circuit_fault_the_same_cells() {
        let plan = FaultPlan { sa1_rate: 0.25, open_rate: 0.25, ..Default::default() };
        let mk = |backend: Backend| {
            let mut a = hamming_array(12, backend);
            a.store(vec![0; 12]).unwrap();
            a.store(vec![1; 12]).unwrap();
            a.program();
            a
        };
        let noisy = mk(Backend::Noisy(Box::new(faulty_cfg(plan, 17))));
        let circuit = mk(Backend::Circuit(Box::new(faulty_cfg(plan, 17))));
        // Same config seed → identical fault maps across backends.
        assert_eq!(noisy.fault_map().unwrap(), circuit.fault_map().unwrap());
        let q = vec![3u32; 12]; // drives every healthy cell on
        let dn = noisy.distances(&q).unwrap();
        let dc = circuit.distances(&q).unwrap();
        for (n, c) in dn.iter().zip(&dc) {
            assert!((n - c).abs() < 0.1 * n.max(1.0), "noisy {n} vs circuit {c}");
        }
    }

    #[test]
    fn fault_state_invalidated_on_mutation() {
        let plan = FaultPlan { sa0_rate: 0.5, ..Default::default() };
        let mut a = hamming_array(4, Backend::Noisy(Box::new(faulty_cfg(plan, 4))));
        a.store(vec![0, 1, 2, 3]).unwrap();
        a.program();
        assert!(a.fault_map().is_some());
        a.store(vec![3, 3, 3, 3]).unwrap();
        assert!(a.fault_map().is_none(), "mutation must drop the stale fault map");
        a.program();
        let map = a.fault_map().unwrap().to_vec();
        // Per-index hashing: the original prefix survives the re-program.
        assert_eq!(&map[..a.physical_cols()], &plan.fault_map(4, a.physical_cols())[..]);
    }

    #[test]
    fn query_ids_draw_decorrelated_sensing_noise() {
        // Two rows at identical distance: the LTA coin-flip is decided
        // purely by the per-query offset stream, so over many ids both
        // outcomes must appear (a correlated stream would pin one).
        let cfg = CircuitConfig { variation: VariationModel::none(), ..Default::default() };
        let mut a = hamming_array(2, Backend::Noisy(Box::new(cfg)));
        a.store(vec![0, 1]).unwrap();
        a.store(vec![1, 0]).unwrap();
        a.program();
        let wins: Vec<usize> =
            (0..64).map(|qid| a.search_at(&[0, 0], qid).unwrap().nearest).collect();
        assert!(wins.contains(&0) && wins.contains(&1), "offsets look frozen: {wins:?}");
    }
}
