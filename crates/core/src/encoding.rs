//! Voltage-encoding post-processing (paper Fig. 5 and Table II).
//!
//! A feasible-region solution fixes, for every search line, which FeFETs
//! conduct for which stored values and at what current. This module turns
//! that combinatorial object into physical voltages:
//!
//! * **Stored encoding** — per FeFET, stored values are ranked by how often
//!   the FeFET conducts for them across all search lines; more conduction ⇒
//!   lower `V_th` (Fig. 5 left).
//! * **Search encoding** — per FeFET, each search line's gate level is the
//!   number of threshold groups its ON-set covers; bigger ON-set ⇒ higher
//!   `V_gs` (Fig. 5 right). The `V_ds` multiple is the FeFET's current level
//!   on that line.
//!
//! [`CellEncoding::verify`] closes the loop: it re-evaluates the ladder rule
//! `V_th < V_gs` per FeFET and checks that the reconstructed currents equal
//! the target distance matrix exactly.

use crate::dm::DistanceMatrix;
use crate::error::EncodeError;
use crate::feasibility::RowConfig;
use std::fmt;

/// Stored-side encoding of one symbol value: the threshold level of each of
/// the cell's K FeFETs.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct StoredEncoding {
    /// Threshold level index per FeFET (0 = lowest `V_th`).
    pub vth_levels: Vec<usize>,
}

/// Search-side encoding of one symbol value.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SearchEncoding {
    /// Gate-voltage level index per FeFET (0 turns nothing on).
    pub vgs_levels: Vec<usize>,
    /// Drain-voltage multiple per FeFET (0 = drain line grounded).
    pub vds_multiples: Vec<u32>,
}

/// The complete voltage encoding of one AM cell for one distance matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CellEncoding {
    /// FeFETs per cell.
    pub k: usize,
    /// Stored encodings, indexed by stored symbol value.
    pub stored: Vec<StoredEncoding>,
    /// Search encodings, indexed by search symbol value.
    pub search: Vec<SearchEncoding>,
    /// Most distinct threshold levels any FeFET uses.
    pub vth_levels_used: usize,
    /// Most distinct gate levels any FeFET uses (counting level 0).
    pub search_levels_used: usize,
    /// Largest drain multiple any search line uses.
    pub max_vds_multiple: u32,
}

/// Hardware budget the encoding must fit in (from the technology card).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncodingLimits {
    /// Programmable threshold levels per FeFET.
    pub max_vth_levels: usize,
    /// Available gate-voltage ladder levels (a level-`n_vth` gate voltage —
    /// above every threshold — is always available, so this equals
    /// `max_vth_levels + 1` counting level 0).
    pub max_search_levels: usize,
    /// Largest drain-voltage multiple the column driver produces.
    pub max_vds_multiple: u32,
}

impl CellEncoding {
    /// Derives the voltage encoding from a feasible solution (one
    /// [`RowConfig`] per search value).
    ///
    /// # Errors
    ///
    /// Returns an [`EncodeError`] if the solution needs more threshold
    /// levels, gate levels or drain range than `limits` allows.
    ///
    /// # Panics
    ///
    /// Panics if `solution` is empty, ragged in K, or not chain-consistent
    /// (i.e. not actually a solution of the feasibility CSP).
    pub fn from_solution(
        solution: &[RowConfig],
        n_stored: usize,
        limits: &EncodingLimits,
    ) -> Result<Self, EncodeError> {
        assert!(!solution.is_empty(), "solution must cover at least one search line");
        let k = solution[0].fets.len(); // lint:allow(panic-safety/index, reason = "solution asserted non-empty above")
        assert!(solution.iter().all(|r| r.fets.len() == k), "solution rows disagree on cell size");
        let n_search = solution.len();

        let mut stored = vec![StoredEncoding { vth_levels: Vec::with_capacity(k) }; n_stored];
        let mut search = vec![
            SearchEncoding {
                vgs_levels: Vec::with_capacity(k),
                vds_multiples: Vec::with_capacity(k),
            };
            n_search
        ];
        let mut vth_levels_used = 0usize;
        let mut search_levels_used = 0usize;
        let mut max_vds = 0u32;

        // lint:allow(panic-safety/index, reason = "solution is asserted non-ragged with k fets per row; counts and search are sized to n_stored and n_search above")
        for f in 0..k {
            // Conduction counts per stored value (Fig. 5: sort-by-ON-count).
            let counts: Vec<usize> = (0..n_stored)
                .map(|j| solution.iter().filter(|row| row.fets[f].on_mask >> j & 1 == 1).count())
                .collect();
            // Distinct counts, descending: highest count ⇒ rank 0 ⇒ lowest
            // V_th. Equal counts ⇒ identical chain membership ⇒ same level.
            let mut distinct: Vec<usize> = counts.clone();
            distinct.sort_unstable_by(|a, b| b.cmp(a));
            distinct.dedup();
            let rank_of = |count: usize| -> usize {
                // lint:allow(panic-safety/expect, reason = "distinct is built from the same counts list queried here")
                distinct.iter().position(|&c| c == count).expect("count present")
            };
            let n_groups = distinct.len();
            vth_levels_used = vth_levels_used.max(n_groups);

            for (j, enc) in stored.iter_mut().enumerate() {
                enc.vth_levels.push(rank_of(counts[j]));
            }

            for (i, row) in solution.iter().enumerate() {
                let on = row.fets[f].on_mask;
                // The ON-set must be a prefix of the rank order: ranks
                // 0..m-1 ON, the rest OFF. m is the gate level.
                let m = (0..n_stored).filter(|&j| on >> j & 1 == 1).count();
                let mut level = 0usize;
                for g in 0..n_groups {
                    let group: Vec<usize> =
                        (0..n_stored).filter(|&j| rank_of(counts[j]) == g).collect();
                    if group.iter().all(|&j| on >> j & 1 == 1) {
                        level = g + 1;
                    } else {
                        break;
                    }
                }
                // Chain-consistency sanity: the prefix must cover exactly
                // the ON columns.
                let covered: usize = (0..n_stored).filter(|&j| rank_of(counts[j]) < level).count();
                assert_eq!(
                    covered, m,
                    "solution is not chain-consistent for FeFET {f}, search line {i}"
                );
                search_levels_used = search_levels_used.max(level + 1);
                search[i].vgs_levels.push(level);
                search[i].vds_multiples.push(row.fets[f].level);
                max_vds = max_vds.max(row.fets[f].level);
            }
        }

        if vth_levels_used > limits.max_vth_levels {
            return Err(EncodeError::VthLevelsExceeded {
                needed: vth_levels_used,
                available: limits.max_vth_levels,
            });
        }
        if search_levels_used > limits.max_search_levels {
            return Err(EncodeError::SearchLevelsExceeded {
                needed: search_levels_used,
                available: limits.max_search_levels,
            });
        }
        if max_vds > limits.max_vds_multiple {
            return Err(EncodeError::VdsRangeExceeded {
                needed: max_vds,
                available: limits.max_vds_multiple,
            });
        }

        Ok(CellEncoding {
            k,
            stored,
            search,
            vth_levels_used,
            search_levels_used,
            max_vds_multiple: max_vds,
        })
    }

    /// Number of stored symbol values this encoding covers.
    pub fn n_stored(&self) -> usize {
        self.stored.len()
    }

    /// Number of search symbol values this encoding covers.
    pub fn n_search(&self) -> usize {
        self.search.len()
    }

    /// The cell current (in `I_unit` multiples) the encoding produces for a
    /// (search, stored) value pair under the ladder rule `V_th < V_gs`.
    ///
    /// # Panics
    ///
    /// Panics if either value is out of range.
    pub fn cell_current(&self, search: usize, stored: usize) -> u32 {
        let se = &self.search[search]; // lint:allow(panic-safety/index, reason = "documented panics-on-out-of-range contract")
        let st = &self.stored[stored]; // lint:allow(panic-safety/index, reason = "documented panics-on-out-of-range contract")
                                       // lint:allow(panic-safety/index, reason = "f < k and every encoding carries exactly k levels")
        (0..self.k)
            .map(|f| if st.vth_levels[f] < se.vgs_levels[f] { se.vds_multiples[f] } else { 0 })
            .sum()
    }

    /// Verifies the encoding reproduces `dm` exactly — the software half of
    /// the paper's "device-circuit co-simulations validate" claim.
    ///
    /// # Errors
    ///
    /// [`FerexError::EncodingMismatch`] for the first diverging
    /// `(search, stored)` cell.
    pub fn verify(&self, dm: &DistanceMatrix) -> Result<(), crate::error::FerexError> {
        for i in 0..dm.n_search() {
            for j in 0..dm.n_stored() {
                let got = self.cell_current(i, j);
                let expected = dm.get(i, j);
                if got != expected {
                    return Err(crate::error::FerexError::EncodingMismatch {
                        search: i,
                        stored: j,
                        expected,
                        got,
                    });
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for CellEncoding {
    /// Renders the encoding in the shape of the paper's Table II.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}FeFET{}R cell encoding", self.k, self.k)?;
        write!(f, "value |")?;
        for fet in 0..self.k {
            write!(f, " Vth,F{} |", fet + 1)?;
        }
        for fet in 0..self.k {
            write!(f, " Vg,F{}  |", fet + 1)?;
        }
        for fet in 0..self.k {
            write!(f, " Vds,F{} |", fet + 1)?;
        }
        writeln!(f)?;
        let bits = (usize::BITS - (self.n_stored() - 1).leading_zeros()).max(1) as usize;
        // lint:allow(panic-safety/index, reason = "v is bounds-checked against n_stored / n_search before each access; fet < k")
        for v in 0..self.n_stored().max(self.n_search()) {
            let label = format!("{v:0bits$b}");
            write!(f, "{label:>5} |")?;
            for fet in 0..self.k {
                if v < self.n_stored() {
                    write!(f, "   Vt{}   |", self.stored[v].vth_levels[fet])?;
                } else {
                    write!(f, "    -    |")?;
                }
            }
            for fet in 0..self.k {
                if v < self.n_search() {
                    write!(f, "   Vs{}  |", self.search[v].vgs_levels[fet])?;
                } else {
                    write!(f, "    -   |")?;
                }
            }
            for fet in 0..self.k {
                if v < self.n_search() {
                    let m = self.search[v].vds_multiples[fet];
                    if m == 0 {
                        write!(f, "    0   |")?;
                    } else {
                        write!(f, "   {m}V   |")?;
                    }
                } else {
                    write!(f, "    -   |")?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::DistanceMetric;
    use crate::feasibility::{detect_feasibility, FeasibilityConfig};

    fn limits() -> EncodingLimits {
        EncodingLimits { max_vth_levels: 4, max_search_levels: 5, max_vds_multiple: 9 }
    }

    fn encode_metric(metric: DistanceMetric, bits: u32, k: usize) -> CellEncoding {
        let dm = DistanceMatrix::from_metric(metric, bits);
        let levels: Vec<u32> = (1..=dm.max_value().min(9)).collect();
        let outcome = detect_feasibility(&dm, k, &levels, &FeasibilityConfig::default())
            .expect("within caps");
        let region =
            outcome.region.unwrap_or_else(|| panic!("{metric} {bits}-bit k={k} infeasible"));
        let enc = CellEncoding::from_solution(&region.solution, dm.n_stored(), &limits())
            .expect("encodable");
        enc.verify(&dm).expect("encoding must reproduce the DM");
        enc
    }

    #[test]
    fn two_bit_hamming_encoding_verifies() {
        let enc = encode_metric(DistanceMetric::Hamming, 2, 3);
        assert_eq!(enc.k, 3);
        // This is *a* valid encoding; the level-minimizing selection that
        // reproduces Table II's exact budget lives in `sizing`.
        assert!(enc.vth_levels_used <= 4);
        assert!(enc.max_vds_multiple <= 2, "2-bit HD needs at most 2V_ds,unit");
    }

    #[test]
    fn cell_current_matches_dm_by_construction() {
        let dm = DistanceMatrix::from_metric(DistanceMetric::Hamming, 2);
        let enc = encode_metric(DistanceMetric::Hamming, 2, 3);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(enc.cell_current(i, j), dm.get(i, j));
            }
        }
    }

    #[test]
    fn verify_detects_corruption() {
        let dm = DistanceMatrix::from_metric(DistanceMetric::Hamming, 2);
        let mut enc = encode_metric(DistanceMetric::Hamming, 2, 3);
        // Corrupt one stored threshold.
        enc.stored[0].vth_levels[0] = enc.stored[0].vth_levels[0].wrapping_add(1) % 4;
        assert!(enc.verify(&dm).is_err());
    }

    #[test]
    fn level_budget_is_enforced() {
        let dm = DistanceMatrix::from_metric(DistanceMetric::Hamming, 2);
        let outcome =
            detect_feasibility(&dm, 3, &[1, 2], &FeasibilityConfig::default()).expect("caps");
        let region = outcome.region.expect("feasible");
        let tight = EncodingLimits { max_vth_levels: 1, max_search_levels: 5, max_vds_multiple: 9 };
        let err = CellEncoding::from_solution(&region.solution, 4, &tight).unwrap_err();
        assert!(matches!(err, EncodeError::VthLevelsExceeded { .. }), "{err}");
    }

    #[test]
    fn vds_budget_is_enforced() {
        let dm = DistanceMatrix::from_metric(DistanceMetric::Hamming, 2);
        let outcome =
            detect_feasibility(&dm, 3, &[1, 2], &FeasibilityConfig::default()).expect("caps");
        let region = outcome.region.expect("feasible");
        let tight = EncodingLimits { max_vth_levels: 4, max_search_levels: 5, max_vds_multiple: 1 };
        // Some solutions use level 2 — but not necessarily this witness, so
        // only assert that a returned error (if any) has the right shape.
        match CellEncoding::from_solution(&region.solution, 4, &tight) {
            Ok(enc) => assert!(enc.max_vds_multiple <= 1),
            Err(e) => assert!(matches!(e, EncodeError::VdsRangeExceeded { .. }), "{e}"),
        }
    }

    #[test]
    fn display_renders_table_ii_shape() {
        let enc = encode_metric(DistanceMetric::Hamming, 2, 3);
        let s = enc.to_string();
        assert!(s.contains("3FeFET3R"));
        assert!(s.contains("Vth,F1"));
        assert!(s.contains("Vg,F3"));
        assert!(s.lines().count() >= 6, "{s}");
    }
}
