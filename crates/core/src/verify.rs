//! Device-circuit co-simulation verification as a public API.
//!
//! "Device-circuit co-simulations first validate the effectiveness of the
//! proposed FeReX methodology" (paper Sec. IV). [`CellEncoding::verify`]
//! checks the *logical* ladder rule; this module closes the physical loop:
//! program a device-level crossbar with the encoding, sweep every
//! (search, stored) pair, and compare the sensed currents against the
//! distance matrix. Used by the test suite, the `table2_encoding` harness
//! and the `ferex verify` CLI.

use crate::dm::DistanceMatrix;
use crate::encoding::CellEncoding;
use ferex_analog::crossbar::{ArrayOptions, ColumnDrive, Crossbar};
use ferex_analog::parasitics::WireParams;
use ferex_fefet::units::Volt;
use ferex_fefet::Technology;

/// One (search, stored) pair's physical measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairMeasurement {
    /// Search symbol value.
    pub search: usize,
    /// Stored symbol value.
    pub stored: usize,
    /// Target DM entry.
    pub expected: u32,
    /// Sensed cell current in `I_unit` multiples.
    pub sensed: f64,
}

impl PairMeasurement {
    /// Absolute deviation from the target, in current units.
    pub fn error(&self) -> f64 {
        (self.sensed - self.expected as f64).abs()
    }
}

/// Result of a full co-simulation sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct CosimReport {
    /// Every pair's measurement, row-major (search-major).
    pub measurements: Vec<PairMeasurement>,
    /// The tolerance used, in current units (scaled per entry).
    pub tolerance: f64,
}

impl CosimReport {
    /// The worst absolute deviation across all pairs.
    pub fn max_error(&self) -> f64 {
        self.measurements.iter().map(PairMeasurement::error).fold(0.0, f64::max)
    }

    /// Pairs whose deviation exceeds the tolerance (scaled by magnitude:
    /// `tol + 2 %·expected`).
    pub fn failures(&self) -> Vec<&PairMeasurement> {
        self.measurements
            .iter()
            .filter(|m| m.error() > self.tolerance + 0.02 * m.expected as f64)
            .collect()
    }

    /// `true` if the physical array reproduces the DM within tolerance.
    pub fn passed(&self) -> bool {
        self.failures().is_empty()
    }
}

/// Programs one device-level AM cell per stored value and sweeps every
/// search stimulus, sensing the cell currents.
///
/// `tolerance` is the allowed absolute deviation in `I_unit` multiples
/// (0.15 is a sensible default: well below half a unit, above the exact
/// solve's device nonidealities).
///
/// # Panics
///
/// Panics if the encoding's value counts disagree with the DM shape.
pub fn cosimulate(
    encoding: &CellEncoding,
    dm: &DistanceMatrix,
    tech: &Technology,
    tolerance: f64,
) -> CosimReport {
    assert_eq!(encoding.n_stored(), dm.n_stored(), "stored-value count mismatch");
    assert_eq!(encoding.n_search(), dm.n_search(), "search-value count mismatch");
    let k = encoding.k;
    let mut xb = Crossbar::new(tech.clone(), WireParams::default(), dm.n_stored(), k);
    for (s, st) in encoding.stored.iter().enumerate() {
        for (f, &lvl) in st.vth_levels.iter().enumerate() {
            xb.program(s, f, lvl);
        }
    }
    let options = ArrayOptions { exact_cell_solve: true, ..Default::default() };
    let i_unit = tech.i_unit().value();
    let mut measurements = Vec::with_capacity(dm.n_search() * dm.n_stored());
    for (q, se) in encoding.search.iter().enumerate() {
        let drives: Vec<ColumnDrive> = (0..k)
            .map(|f| ColumnDrive {
                v_gate: tech.search_voltage(se.vgs_levels[f]),
                v_dl: if se.vds_multiples[f] == 0 {
                    Volt(0.0)
                } else {
                    tech.vds_for_multiple(se.vds_multiples[f] as usize)
                },
            })
            .collect();
        for (s, current) in xb.search(&drives, &options).into_iter().enumerate() {
            measurements.push(PairMeasurement {
                search: q,
                stored: s,
                expected: dm.get(q, s),
                sensed: current.value() / i_unit,
            });
        }
    }
    CosimReport { measurements, tolerance }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::DistanceMetric;
    use crate::sizing::{find_minimal_cell, SizingOptions};

    #[test]
    fn hamming_encoding_passes_cosimulation() {
        let tech = Technology::default();
        let dm = DistanceMatrix::from_metric(DistanceMetric::Hamming, 2);
        let enc = find_minimal_cell(&dm, &SizingOptions::default()).expect("sizes").encoding;
        let report = cosimulate(&enc, &dm, &tech, 0.15);
        assert!(report.passed(), "failures: {:?}", report.failures());
        assert_eq!(report.measurements.len(), 16);
        assert!(report.max_error() < 0.15);
    }

    #[test]
    fn corrupted_encoding_fails_cosimulation() {
        let tech = Technology::default();
        let dm = DistanceMatrix::from_metric(DistanceMetric::Hamming, 2);
        let mut enc = find_minimal_cell(&dm, &SizingOptions::default()).expect("sizes").encoding;
        // Swap one stored threshold level to break a pair.
        enc.stored[0].vth_levels[0] = (enc.stored[0].vth_levels[0] + 1) % 3;
        let report = cosimulate(&enc, &dm, &tech, 0.15);
        assert!(!report.passed(), "corruption must be detected");
        assert!(!report.failures().is_empty());
    }

    #[test]
    fn measurement_error_accessor() {
        let m = PairMeasurement { search: 0, stored: 1, expected: 2, sensed: 1.9 };
        assert!((m.error() - 0.1).abs() < 1e-12);
    }
}
