//! Shared integer statistics helpers of the serving stack.
//!
//! The load simulator's v1 report, the v2 latency report, and the CLI
//! `serve-sim` summary all reduce latency samples to nearest-rank
//! percentiles. PR 7 left two copies of that reduction (one in
//! `conformance::load`, one in the CLI); this module is the single
//! shared home. Exact integer arithmetic only — percentiles of a
//! virtual-tick distribution are themselves exact ticks, so reports
//! stay byte-reproducible.

/// Nearest-rank percentile of a sorted sample: the smallest value with at
/// least `q_num/q_den` of the sample at or below it (e.g. `999/1000` for
/// p999). Exact integer arithmetic; 0 on an empty sample.
pub fn percentile(sorted: &[u64], q_num: u64, q_den: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let n = sorted.len() as u64;
    let rank = (n * q_num).div_ceil(q_den).max(1);
    sorted.get((rank - 1) as usize).copied().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sorted, 50, 100), 50);
        assert_eq!(percentile(&sorted, 99, 100), 99);
        assert_eq!(percentile(&sorted, 999, 1000), 100);
        assert_eq!(percentile(&sorted, 1, 100), 1);
    }

    #[test]
    fn percentile_handles_tiny_samples() {
        assert_eq!(percentile(&[7], 50, 100), 7);
        assert_eq!(percentile(&[7], 999, 1000), 7);
        assert_eq!(percentile(&[3, 9], 50, 100), 3);
        assert_eq!(percentile(&[3, 9], 99, 100), 9);
        assert_eq!(percentile(&[], 50, 100), 0);
    }

    #[test]
    fn percentiles_are_monotone_in_the_quantile() {
        let sorted: Vec<u64> = (0..37).map(|i| i * i).collect();
        let ps: Vec<u64> =
            [1, 25, 50, 90, 99, 100].iter().map(|&q| percentile(&sorted, q, 100)).collect();
        assert!(ps.windows(2).all(|w| w[0] <= w[1]), "{ps:?}");
    }
}
