//! Chronological backtracking search with MRV ordering and forward checking.
//!
//! This is the "Backtracking" half of the FeReX Algorithm 1 (Bitner &
//! Reingold's classic formulation): depth-first assignment of variables,
//! undoing on dead ends. The implementation adds the standard
//! minimum-remaining-values (MRV) variable order and forward checking, and
//! can optionally run [AC-3](mod@crate::ac3) once as a preprocessing step.

use crate::ac3::ac3;
use crate::problem::Problem;

/// Search statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SolveStats {
    /// Nodes expanded (value assignments tried).
    pub nodes: usize,
    /// Dead ends hit (assignments undone).
    pub backtracks: usize,
    /// Whether the node limit aborted the search.
    pub aborted: bool,
}

/// Result of a [`Solver::solve`] call.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveOutcome<V> {
    /// A satisfying assignment in variable order, if one exists (and the
    /// search was not aborted before finding it).
    pub solution: Option<Vec<V>>,
    /// Search statistics.
    pub stats: SolveStats,
}

/// Configurable backtracking solver.
///
/// # Examples
///
/// ```
/// use ferex_csp::{Problem, Solver};
///
/// // 4-queens: one queen per column, rows as values.
/// let mut p = Problem::new();
/// let cols: Vec<_> = (0..4).map(|c| p.add_variable(format!("q{c}"), (0..4).collect())).collect();
/// for i in 0..4 {
///     for j in (i + 1)..4 {
///         let dist = (j - i) as i32;
///         p.add_binary(cols[i], cols[j], "no-attack", move |a: &i32, b: &i32| {
///             a != b && (a - b).abs() != dist
///         });
///     }
/// }
/// let outcome = Solver::new().solve(&p);
/// assert!(outcome.solution.is_some());
/// ```
#[derive(Debug, Clone)]
pub struct Solver {
    /// Run AC-3 before searching (prunes domains, often decisive).
    pub preprocess_ac3: bool,
    /// Maintain forward checking during search.
    pub forward_check: bool,
    /// Order candidate values least-constraining-first (LCV): try the value
    /// that eliminates the fewest options in unassigned neighbors. Helps
    /// find-one-solution searches; useless for exhaustive enumeration.
    pub value_order_lcv: bool,
    /// Abort after this many nodes (None = unlimited).
    pub node_limit: Option<usize>,
}

impl Default for Solver {
    fn default() -> Self {
        Solver {
            preprocess_ac3: true,
            forward_check: true,
            value_order_lcv: false,
            node_limit: None,
        }
    }
}

impl Solver {
    /// A solver with the default configuration (AC-3 preprocessing and
    /// forward checking on).
    pub fn new() -> Self {
        Solver::default()
    }

    /// A plain chronological backtracker with no propagation — the baseline
    /// configuration used by the ablation study.
    pub fn plain() -> Self {
        Solver {
            preprocess_ac3: false,
            forward_check: false,
            value_order_lcv: false,
            node_limit: None,
        }
    }

    /// Finds one solution, or proves none exists.
    pub fn solve<V: Clone>(&self, problem: &Problem<V>) -> SolveOutcome<V> {
        let mut found = None;
        let stats = self.run(problem, &mut |sol| {
            found = Some(sol.to_vec());
            false // stop at the first solution
        });
        SolveOutcome { solution: found, stats }
    }

    /// Enumerates up to `limit` solutions.
    pub fn enumerate<V: Clone>(
        &self,
        problem: &Problem<V>,
        limit: usize,
    ) -> (Vec<Vec<V>>, SolveStats) {
        let mut out = Vec::new();
        let stats = self.run(problem, &mut |sol| {
            out.push(sol.to_vec());
            out.len() < limit
        });
        (out, stats)
    }

    /// Counts all solutions (subject to the node limit).
    pub fn count_solutions<V: Clone>(&self, problem: &Problem<V>) -> (usize, SolveStats) {
        let mut n = 0;
        let stats = self.run(problem, &mut |_| {
            n += 1;
            true
        });
        (n, stats)
    }

    /// Core search loop. `on_solution` returns `true` to continue
    /// enumerating.
    fn run<V: Clone>(
        &self,
        problem: &Problem<V>,
        on_solution: &mut dyn FnMut(&[V]) -> bool,
    ) -> SolveStats {
        let mut stats = SolveStats::default();
        let mut domains = problem.domains();
        if self.preprocess_ac3 && !ac3(problem, &mut domains).is_consistent() {
            return stats;
        }
        if domains.iter().any(|d| d.is_empty()) {
            return stats;
        }
        let mut assignment: Vec<Option<V>> = vec![None; problem.n_vars()];
        self.search(problem, &mut domains, &mut assignment, &mut stats, on_solution);
        stats
    }

    /// Recursive depth-first search. Returns `false` to abort enumeration.
    fn search<V: Clone>(
        &self,
        problem: &Problem<V>,
        domains: &mut Vec<Vec<V>>,
        assignment: &mut Vec<Option<V>>,
        stats: &mut SolveStats,
        on_solution: &mut dyn FnMut(&[V]) -> bool,
    ) -> bool {
        if let Some(limit) = self.node_limit {
            if stats.nodes >= limit {
                stats.aborted = true;
                return false;
            }
        }
        // MRV: pick the unassigned variable with the smallest live domain.
        let next = assignment
            .iter()
            .enumerate()
            .filter(|(_, a)| a.is_none())
            .min_by_key(|(i, _)| domains[*i].len())
            .map(|(i, _)| i);
        let Some(var) = next else {
            // `next` is None exactly when every slot is Some, so the
            // filter_map is total here; the length check guards the
            // invariant without a panicking path.
            let complete: Vec<V> = assignment.iter().filter_map(|a| a.clone()).collect();
            debug_assert_eq!(complete.len(), assignment.len());
            debug_assert!(problem.is_satisfied(&complete));
            return on_solution(&complete);
        };
        let mut candidates = domains[var].clone();
        if let Some(var_id) = problem.var_at(var).filter(|_| self.value_order_lcv) {
            // LCV: sort by how many neighbor-domain values each candidate
            // keeps alive (most first).
            let mut scored: Vec<(usize, V)> = candidates
                .into_iter()
                .map(|value| {
                    let mut kept = 0usize;
                    for &ci in problem.incident(var_id) {
                        let c = &problem.constraints()[ci];
                        let (other, var_is_a) = if c.a.index() == var {
                            (c.b.index(), true)
                        } else {
                            (c.a.index(), false)
                        };
                        if assignment[other].is_some() {
                            continue;
                        }
                        kept +=
                            domains[other]
                                .iter()
                                .filter(|w| {
                                    if var_is_a {
                                        c.check(&value, w)
                                    } else {
                                        c.check(w, &value)
                                    }
                                })
                                .count();
                    }
                    (kept, value)
                })
                .collect();
            scored.sort_by_key(|(kept, _)| std::cmp::Reverse(*kept));
            candidates = scored.into_iter().map(|(_, v)| v).collect();
        }
        for value in candidates {
            stats.nodes += 1;
            if !self.consistent_with_assigned(problem, assignment, var, &value) {
                stats.backtracks += 1;
                continue;
            }
            assignment[var] = Some(value.clone());
            let saved = if self.forward_check {
                match self.forward_check_prune(problem, domains, assignment, var, &value) {
                    Some(saved) => saved,
                    None => {
                        // A neighbor's domain wiped out.
                        assignment[var] = None;
                        stats.backtracks += 1;
                        continue;
                    }
                }
            } else {
                Vec::new()
            };
            if !self.search(problem, domains, assignment, stats, on_solution) {
                return false;
            }
            for (i, dom) in saved {
                domains[i] = dom;
            }
            assignment[var] = None;
            stats.backtracks += 1;
        }
        true
    }

    /// Checks `value` for `var` against all constraints whose other endpoint
    /// is already assigned.
    fn consistent_with_assigned<V: Clone>(
        &self,
        problem: &Problem<V>,
        assignment: &[Option<V>],
        var: usize,
        value: &V,
    ) -> bool {
        // Out-of-range would mean the assignment vector disagrees with
        // the problem; treat it as vacuously consistent rather than abort.
        let Some(var_id) = problem.var_at(var) else { return true };
        for &ci in problem.incident(var_id) {
            let c = &problem.constraints()[ci];
            let (other, var_is_a) =
                if c.a.index() == var { (c.b.index(), true) } else { (c.a.index(), false) };
            if let Some(w) = &assignment[other] {
                let ok = if var_is_a { c.check(value, w) } else { c.check(w, value) };
                if !ok {
                    return false;
                }
            }
        }
        true
    }

    /// Prunes neighbors' domains to values consistent with `var = value`.
    /// Returns the saved domains for restoration, or `None` on wipeout.
    #[allow(clippy::type_complexity)]
    fn forward_check_prune<V: Clone>(
        &self,
        problem: &Problem<V>,
        domains: &mut [Vec<V>],
        assignment: &[Option<V>],
        var: usize,
        value: &V,
    ) -> Option<Vec<(usize, Vec<V>)>> {
        // No such variable → nothing to prune; `None` is reserved for a
        // genuine domain wipeout, so this must stay `Some`.
        let Some(var_id) = problem.var_at(var) else { return Some(Vec::new()) };
        let mut saved = Vec::new();
        for &ci in problem.incident(var_id) {
            let c = &problem.constraints()[ci];
            let (other, var_is_a) =
                if c.a.index() == var { (c.b.index(), true) } else { (c.a.index(), false) };
            if assignment[other].is_some() {
                continue;
            }
            let before = domains[other].len();
            let filtered: Vec<V> = domains[other]
                .iter()
                .filter(|w| if var_is_a { c.check(value, w) } else { c.check(w, value) })
                .cloned()
                .collect();
            if filtered.len() != before {
                saved.push((other, std::mem::replace(&mut domains[other], filtered)));
                if domains[other].is_empty() {
                    for (i, dom) in saved {
                        domains[i] = dom;
                    }
                    return None;
                }
            }
        }
        Some(saved)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Problem;

    fn n_queens(n: usize) -> Problem<i32> {
        let mut p = Problem::new();
        let cols: Vec<_> =
            (0..n).map(|c| p.add_variable(format!("q{c}"), (0..n as i32).collect())).collect();
        for i in 0..n {
            for j in (i + 1)..n {
                let dist = (j - i) as i32;
                p.add_binary(cols[i], cols[j], "no-attack", move |a: &i32, b: &i32| {
                    a != b && (a - b).abs() != dist
                });
            }
        }
        p
    }

    #[test]
    fn solves_eight_queens() {
        let p = n_queens(8);
        let outcome = Solver::new().solve(&p);
        let sol = outcome.solution.expect("8-queens is satisfiable");
        assert!(p.is_satisfied(&sol));
    }

    #[test]
    fn three_queens_is_infeasible() {
        let p = n_queens(3);
        let outcome = Solver::new().solve(&p);
        assert!(outcome.solution.is_none());
    }

    #[test]
    fn counts_all_four_queens_solutions() {
        let p = n_queens(4);
        let (n, _) = Solver::new().count_solutions(&p);
        assert_eq!(n, 2);
        // The plain backtracker must agree.
        let (n_plain, _) = Solver::plain().count_solutions(&p);
        assert_eq!(n_plain, 2);
    }

    #[test]
    fn enumerate_respects_limit() {
        let p = n_queens(6);
        let (sols, _) = Solver::new().enumerate(&p, 3);
        assert_eq!(sols.len(), 3);
        for s in &sols {
            assert!(p.is_satisfied(s));
        }
    }

    #[test]
    fn propagation_reduces_nodes() {
        let p = n_queens(8);
        let smart = Solver::new().solve(&p).stats;
        let plain = Solver::plain().solve(&p).stats;
        assert!(
            smart.nodes < plain.nodes,
            "AC-3 + forward checking ({}) should beat plain backtracking ({})",
            smart.nodes,
            plain.nodes
        );
    }

    #[test]
    fn lcv_finds_same_solutions() {
        let p = n_queens(8);
        let lcv = Solver { value_order_lcv: true, ..Solver::new() };
        let sol = lcv.solve(&p).solution.expect("satisfiable");
        assert!(p.is_satisfied(&sol));
        // Exhaustive enumeration is order-independent.
        let (n_lcv, _) = lcv.count_solutions(&p);
        let (n_default, _) = Solver::new().count_solutions(&p);
        assert_eq!(n_lcv, n_default);
    }

    #[test]
    fn node_limit_aborts() {
        let p = n_queens(10);
        let solver = Solver { node_limit: Some(5), ..Solver::new() };
        let outcome = solver.solve(&p);
        assert!(outcome.stats.aborted);
        assert!(outcome.solution.is_none());
    }

    #[test]
    fn pigeonhole_infeasible() {
        // 4 pigeons, 3 holes, all-different: infeasible.
        let mut p = Problem::new();
        let vars: Vec<_> = (0..4).map(|i| p.add_variable(format!("p{i}"), vec![0, 1, 2])).collect();
        for i in 0..4 {
            for j in (i + 1)..4 {
                p.add_binary(vars[i], vars[j], "neq", |a: &i32, b: &i32| a != b);
            }
        }
        assert!(Solver::new().solve(&p).solution.is_none());
        assert!(Solver::plain().solve(&p).solution.is_none());
    }

    #[test]
    fn empty_problem_has_empty_solution() {
        let p: Problem<i32> = Problem::new();
        let outcome = Solver::new().solve(&p);
        assert_eq!(outcome.solution, Some(vec![]));
    }

    #[test]
    fn variable_with_empty_domain_is_infeasible() {
        let mut p: Problem<i32> = Problem::new();
        p.add_variable("x", vec![]);
        assert!(Solver::new().solve(&p).solution.is_none());
        assert!(Solver::plain().solve(&p).solution.is_none());
    }
}
