#![forbid(unsafe_code)]
//! # ferex-csp — constraint-satisfaction solving
//!
//! A small, dependency-free finite-domain binary-CSP library providing the
//! two algorithms the FeReX encoding scheme (Algorithm 1 of the paper) is
//! built on:
//!
//! * [`backtrack::Solver`] — chronological backtracking (Bitner & Reingold,
//!   CACM 1975) with MRV variable ordering and forward checking;
//! * [`ac3::ac3`](fn@ac3::ac3) — AC-3 arc consistency (Mackworth, AIJ 1977).
//!
//! The library is generic over the domain value type, which lets the FeReX
//! core use entire candidate search-line configurations as domain values
//! while the test suite exercises the solver on classic benchmarks (queens,
//! Sudoku, graph coloring).
//!
//! # Examples
//!
//! ```
//! use ferex_csp::{Problem, Solver};
//!
//! // Australia map coloring with 3 colors.
//! let mut p = Problem::new();
//! let wa = p.add_variable("WA", vec![0, 1, 2]);
//! let nt = p.add_variable("NT", vec![0, 1, 2]);
//! let sa = p.add_variable("SA", vec![0, 1, 2]);
//! let q = p.add_variable("Q", vec![0, 1, 2]);
//! let nsw = p.add_variable("NSW", vec![0, 1, 2]);
//! let v = p.add_variable("V", vec![0, 1, 2]);
//! for (a, b) in [(wa, nt), (wa, sa), (nt, sa), (nt, q), (sa, q), (sa, nsw), (sa, v), (q, nsw), (nsw, v)] {
//!     p.add_binary(a, b, "neq", |x, y| x != y);
//! }
//! let sol = Solver::new().solve(&p).solution.expect("3-colorable");
//! assert_ne!(sol[wa.index()], sol[sa.index()]);
//! ```

pub mod ac3;
pub mod backtrack;
pub mod problem;

pub use ac3::{ac3, Ac3Outcome, Ac3Stats};
pub use backtrack::{SolveOutcome, SolveStats, Solver};
pub use problem::{BinaryConstraint, Problem, VarId};
