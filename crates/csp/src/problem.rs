//! Constraint-satisfaction problem representation.
//!
//! A [`Problem`] is a set of variables with finite domains plus unary and
//! binary constraints. This is the classical binary-CSP formulation on which
//! backtracking search (Bitner & Reingold) and the AC-3 arc-consistency
//! algorithm (Mackworth) operate — the two methods Algorithm 1 of the FeReX
//! paper uses for encoding feasibility detection.

use std::fmt;
use std::rc::Rc;

/// Shared binary-constraint predicate.
type Predicate<V> = Rc<dyn Fn(&V, &V) -> bool>;

/// Identifier of a variable within a [`Problem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// The index of this variable in the problem's variable order.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A binary constraint between two variables.
pub struct BinaryConstraint<V> {
    /// First endpoint.
    pub a: VarId,
    /// Second endpoint.
    pub b: VarId,
    name: String,
    pred: Predicate<V>,
}

impl<V> Clone for BinaryConstraint<V> {
    fn clone(&self) -> Self {
        BinaryConstraint {
            a: self.a,
            b: self.b,
            name: self.name.clone(),
            pred: Rc::clone(&self.pred),
        }
    }
}

impl<V> fmt::Debug for BinaryConstraint<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BinaryConstraint")
            .field("a", &self.a)
            .field("b", &self.b)
            .field("name", &self.name)
            .finish()
    }
}

impl<V> BinaryConstraint<V> {
    /// Human-readable constraint label (for diagnostics).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Evaluates the constraint for `(value of a, value of b)`.
    pub fn check(&self, va: &V, vb: &V) -> bool {
        (self.pred)(va, vb)
    }
}

struct VarInfo<V> {
    name: String,
    domain: Vec<V>,
}

impl<V: fmt::Debug> fmt::Debug for VarInfo<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VarInfo").field("name", &self.name).field("domain", &self.domain).finish()
    }
}

/// A finite-domain binary CSP.
///
/// # Examples
///
/// ```
/// use ferex_csp::{Problem, Solver};
///
/// // Two variables over {0,1,2} that must differ.
/// let mut p = Problem::new();
/// let x = p.add_variable("x", vec![0, 1, 2]);
/// let y = p.add_variable("y", vec![0, 1, 2]);
/// p.add_binary(x, y, "x != y", |a, b| a != b);
/// let outcome = Solver::new().solve(&p);
/// let sol = outcome.solution.expect("satisfiable");
/// assert_ne!(sol[x.index()], sol[y.index()]);
/// ```
pub struct Problem<V> {
    vars: Vec<VarInfo<V>>,
    constraints: Vec<BinaryConstraint<V>>,
    /// For each variable, the indices of constraints touching it.
    incident: Vec<Vec<usize>>,
}

impl<V: fmt::Debug> fmt::Debug for Problem<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Problem")
            .field("vars", &self.vars)
            .field("constraints", &self.constraints)
            .finish()
    }
}

impl<V> Default for Problem<V> {
    fn default() -> Self {
        Problem::new()
    }
}

impl<V> Problem<V> {
    /// Creates an empty problem.
    pub fn new() -> Self {
        Problem { vars: Vec::new(), constraints: Vec::new(), incident: Vec::new() }
    }

    /// Adds a variable with the given domain and returns its id.
    pub fn add_variable(&mut self, name: impl Into<String>, domain: Vec<V>) -> VarId {
        self.vars.push(VarInfo { name: name.into(), domain });
        self.incident.push(Vec::new());
        VarId(self.vars.len() - 1)
    }

    /// Prunes a variable's domain in place with a unary predicate.
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to this problem.
    pub fn restrict(&mut self, var: VarId, pred: impl Fn(&V) -> bool) {
        self.vars[var.0].domain.retain(|v| pred(v));
    }

    /// Adds a binary constraint `pred(value_of_a, value_of_b)`.
    ///
    /// # Panics
    ///
    /// Panics if either variable does not belong to this problem or if
    /// `a == b` (use [`Problem::restrict`] for unary constraints).
    pub fn add_binary(
        &mut self,
        a: VarId,
        b: VarId,
        name: impl Into<String>,
        pred: impl Fn(&V, &V) -> bool + 'static,
    ) {
        assert!(a.0 < self.vars.len() && b.0 < self.vars.len(), "constraint on unknown variable");
        assert_ne!(a, b, "binary constraint endpoints must differ");
        let idx = self.constraints.len();
        self.constraints.push(BinaryConstraint { a, b, name: name.into(), pred: Rc::new(pred) });
        self.incident[a.0].push(idx);
        self.incident[b.0].push(idx);
    }

    /// Number of variables.
    pub fn n_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of binary constraints.
    pub fn n_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// The variable ids in declaration order.
    pub fn variables(&self) -> impl Iterator<Item = VarId> + '_ {
        (0..self.vars.len()).map(VarId)
    }

    /// The `VarId` at a raw index, when in range. The checked
    /// counterpart of `variables().nth(i)` — O(1) and panic-free, for
    /// solver internals that index variables positionally.
    pub fn var_at(&self, index: usize) -> Option<VarId> {
        (index < self.vars.len()).then_some(VarId(index))
    }

    /// The name of a variable.
    pub fn var_name(&self, var: VarId) -> &str {
        &self.vars[var.0].name
    }

    /// The current domain of a variable.
    pub fn domain(&self, var: VarId) -> &[V] {
        &self.vars[var.0].domain
    }

    /// All binary constraints.
    pub fn constraints(&self) -> &[BinaryConstraint<V>] {
        &self.constraints
    }

    /// Indices into [`Problem::constraints`] of constraints touching `var`.
    pub fn incident(&self, var: VarId) -> &[usize] {
        &self.incident[var.0]
    }

    /// A deep copy of all domains, as mutated by the solver algorithms.
    pub fn domains(&self) -> Vec<Vec<V>>
    where
        V: Clone,
    {
        self.vars.iter().map(|v| v.domain.clone()).collect()
    }

    /// Checks a complete assignment (one value per variable, in variable
    /// order) against every constraint.
    pub fn is_satisfied(&self, assignment: &[V]) -> bool {
        assignment.len() == self.vars.len()
            && self.constraints.iter().all(|c| c.check(&assignment[c.a.0], &assignment[c.b.0]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_inspect() {
        let mut p: Problem<i32> = Problem::new();
        let x = p.add_variable("x", vec![1, 2, 3]);
        let y = p.add_variable("y", vec![1, 2]);
        p.add_binary(x, y, "lt", |a, b| a < b);
        assert_eq!(p.n_vars(), 2);
        assert_eq!(p.n_constraints(), 1);
        assert_eq!(p.var_name(x), "x");
        assert_eq!(p.domain(y), &[1, 2]);
        assert_eq!(p.incident(x), &[0]);
        assert_eq!(p.constraints()[0].name(), "lt");
        assert_eq!(format!("{x}"), "x0");
    }

    #[test]
    fn restrict_prunes_domain() {
        let mut p: Problem<i32> = Problem::new();
        let x = p.add_variable("x", (0..10).collect());
        p.restrict(x, |v| v % 2 == 0);
        assert_eq!(p.domain(x), &[0, 2, 4, 6, 8]);
    }

    #[test]
    fn is_satisfied_checks_all_constraints() {
        let mut p: Problem<i32> = Problem::new();
        let x = p.add_variable("x", vec![1, 2]);
        let y = p.add_variable("y", vec![1, 2]);
        p.add_binary(x, y, "lt", |a, b| a < b);
        assert!(p.is_satisfied(&[1, 2]));
        assert!(!p.is_satisfied(&[2, 1]));
        assert!(!p.is_satisfied(&[1])); // wrong arity
    }

    #[test]
    #[should_panic(expected = "endpoints must differ")]
    fn self_loop_rejected() {
        let mut p: Problem<i32> = Problem::new();
        let x = p.add_variable("x", vec![1]);
        p.add_binary(x, x, "bad", |_, _| true);
    }
}
