//! AC-3 arc-consistency propagation (Mackworth, 1977).
//!
//! AC-3 repeatedly *revises* arcs `(x, c)` — removing from `x`'s domain every
//! value with no support under constraint `c` in the other endpoint's domain
//! — until a fixed point. It is sound (never removes a value that appears in
//! any solution) and detects many infeasibilities outright when a domain
//! wipes out. The FeReX encoding algorithm uses it to prune search-line
//! assignments that violate the threshold-ordering constraint (paper
//! constraint 3) before or instead of full backtracking.

use crate::problem::{Problem, VarId};
use std::collections::VecDeque;

/// Statistics of one AC-3 run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Ac3Stats {
    /// Number of arc revisions performed.
    pub revisions: usize,
    /// Number of domain values removed.
    pub removals: usize,
}

/// Outcome of AC-3: either the arc-consistent domains or the variable whose
/// domain wiped out.
#[derive(Debug, Clone, PartialEq)]
pub enum Ac3Outcome {
    /// Every domain is non-empty and arc-consistent.
    Consistent(Ac3Stats),
    /// The given variable's domain became empty: the problem is infeasible.
    WipedOut(VarId, Ac3Stats),
}

impl Ac3Outcome {
    /// `true` if AC-3 finished without wiping out a domain.
    pub fn is_consistent(&self) -> bool {
        matches!(self, Ac3Outcome::Consistent(_))
    }

    /// The run statistics regardless of outcome.
    pub fn stats(&self) -> Ac3Stats {
        match self {
            Ac3Outcome::Consistent(s) | Ac3Outcome::WipedOut(_, s) => *s,
        }
    }
}

/// Runs AC-3 on `domains` (indexed by variable) under the constraints of
/// `problem`, mutating the domains toward arc consistency.
///
/// `domains` usually starts as [`Problem::domains`] but may already be
/// partially pruned by a search in progress.
///
/// # Panics
///
/// Panics if `domains.len() != problem.n_vars()`.
pub fn ac3<V: Clone>(problem: &Problem<V>, domains: &mut [Vec<V>]) -> Ac3Outcome {
    assert_eq!(domains.len(), problem.n_vars(), "domain set does not match problem");
    let mut stats = Ac3Stats::default();
    // Work queue of (variable to revise, constraint index).
    let mut queue: VecDeque<(usize, usize)> = VecDeque::new();
    for (ci, c) in problem.constraints().iter().enumerate() {
        queue.push_back((c.a.index(), ci));
        queue.push_back((c.b.index(), ci));
    }
    while let Some((var, ci)) = queue.pop_front() {
        let c = &problem.constraints()[ci];
        let other = if c.a.index() == var { c.b.index() } else { c.a.index() };
        stats.revisions += 1;
        let before = domains[var].len();
        // Split-borrow the two domains.
        let (dom_var, dom_other) = index_two(domains, var, other);
        dom_var.retain(|v| {
            dom_other.iter().any(|w| if c.a.index() == var { c.check(v, w) } else { c.check(w, v) })
        });
        let removed = before - domains[var].len();
        if removed > 0 {
            stats.removals += removed;
            // Queue entries come from constraint endpoints, so `var` is
            // in range by construction; skip the arc rather than panic.
            let Some(var_id) = problem.var_at(var) else { continue };
            if domains[var].is_empty() {
                return Ac3Outcome::WipedOut(var_id, stats);
            }
            // Re-enqueue every other arc pointing at `var`'s neighbors.
            for &cj in problem.incident(var_id) {
                if cj == ci {
                    continue;
                }
                let cc = &problem.constraints()[cj];
                let neighbor = if cc.a.index() == var { cc.b.index() } else { cc.a.index() };
                queue.push_back((neighbor, cj));
            }
        }
    }
    Ac3Outcome::Consistent(stats)
}

/// Borrows two distinct elements of a slice mutably/immutably.
fn index_two<T>(slice: &mut [T], a: usize, b: usize) -> (&mut T, &T) {
    assert_ne!(a, b, "cannot split-borrow the same index");
    if a < b {
        let (lo, hi) = slice.split_at_mut(b);
        (&mut lo[a], &hi[0])
    } else {
        let (lo, hi) = slice.split_at_mut(a);
        (&mut hi[0], &lo[b])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Problem;

    #[test]
    fn prunes_unsupported_values() {
        // x < y with x,y in 0..=2: AC-3 must drop x=2 and y=0.
        let mut p = Problem::new();
        let x = p.add_variable("x", vec![0, 1, 2]);
        let y = p.add_variable("y", vec![0, 1, 2]);
        p.add_binary(x, y, "lt", |a, b| a < b);
        let mut d = p.domains();
        let outcome = ac3(&p, &mut d);
        assert!(outcome.is_consistent());
        assert_eq!(d[0], vec![0, 1]);
        assert_eq!(d[1], vec![1, 2]);
        assert!(outcome.stats().removals == 2);
    }

    #[test]
    fn detects_wipeout() {
        let mut p = Problem::new();
        let x = p.add_variable("x", vec![5]);
        let y = p.add_variable("y", vec![1, 2]);
        p.add_binary(x, y, "lt", |a, b| a < b);
        let mut d = p.domains();
        match ac3(&p, &mut d) {
            Ac3Outcome::WipedOut(var, _) => assert_eq!(var, x),
            other => panic!("expected wipeout, got {other:?}"),
        }
    }

    #[test]
    fn propagates_through_chains() {
        // x < y < z over 0..=2 forces x=0, y=1, z=2.
        let mut p = Problem::new();
        let x = p.add_variable("x", vec![0, 1, 2]);
        let y = p.add_variable("y", vec![0, 1, 2]);
        let z = p.add_variable("z", vec![0, 1, 2]);
        p.add_binary(x, y, "lt", |a, b| a < b);
        p.add_binary(y, z, "lt", |a, b| a < b);
        let mut d = p.domains();
        assert!(ac3(&p, &mut d).is_consistent());
        assert_eq!(d, vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn already_consistent_is_untouched() {
        let mut p = Problem::new();
        let x = p.add_variable("x", vec![0, 1]);
        let y = p.add_variable("y", vec![0, 1]);
        p.add_binary(x, y, "any", |_, _| true);
        let mut d = p.domains();
        let outcome = ac3(&p, &mut d);
        assert!(outcome.is_consistent());
        assert_eq!(outcome.stats().removals, 0);
        assert_eq!(d[0], vec![0, 1]);
    }

    #[test]
    fn no_constraints_is_trivially_consistent() {
        let mut p: Problem<i32> = Problem::new();
        p.add_variable("x", vec![1, 2, 3]);
        let mut d = p.domains();
        assert!(ac3(&p, &mut d).is_consistent());
    }
}
