#![allow(clippy::needless_range_loop)] // grid code is clearest with indices

//! Sudoku as a binary CSP — the reference workload of the hybrid
//! AC-3 + backtracking approach the paper cites (Soto et al., ESWA 2013).

use ferex_csp::{ac3, Problem, Solver, VarId};

/// Builds the Sudoku CSP: 81 variables, all-different on rows, columns and
/// boxes, with given clues pinned by singleton domains.
fn sudoku_problem(grid: &[[u8; 9]; 9]) -> (Problem<u8>, Vec<VarId>) {
    let mut p = Problem::new();
    let mut vars = Vec::with_capacity(81);
    for r in 0..9 {
        for c in 0..9 {
            let domain = if grid[r][c] == 0 { (1..=9).collect() } else { vec![grid[r][c]] };
            vars.push(p.add_variable(format!("r{r}c{c}"), domain));
        }
    }
    let add_diff = |p: &mut Problem<u8>, a: usize, b: usize| {
        p.add_binary(vars[a], vars[b], "neq", |x, y| x != y);
    };
    for r in 0..9 {
        for c1 in 0..9 {
            for c2 in (c1 + 1)..9 {
                add_diff(&mut p, r * 9 + c1, r * 9 + c2); // row
                add_diff(&mut p, c1 * 9 + r, c2 * 9 + r); // column (r as col idx)
            }
        }
    }
    for br in 0..3 {
        for bc in 0..3 {
            let cells: Vec<usize> =
                (0..9).map(|k| (br * 3 + k / 3) * 9 + (bc * 3 + k % 3)).collect();
            for i in 0..9 {
                for j in (i + 1)..9 {
                    // Skip pairs already constrained by row/col.
                    let (a, b) = (cells[i], cells[j]);
                    if a / 9 != b / 9 && a % 9 != b % 9 {
                        add_diff(&mut p, a, b);
                    }
                }
            }
        }
    }
    (p, vars)
}

fn assert_valid_sudoku(sol: &[u8]) {
    for r in 0..9 {
        let mut row = [false; 10];
        let mut col = [false; 10];
        for c in 0..9 {
            assert!(!row[sol[r * 9 + c] as usize], "row {r} repeats");
            row[sol[r * 9 + c] as usize] = true;
            assert!(!col[sol[c * 9 + r] as usize], "col {r} repeats");
            col[sol[c * 9 + r] as usize] = true;
        }
    }
    for br in 0..3 {
        for bc in 0..3 {
            let mut seen = [false; 10];
            for k in 0..9 {
                let v = sol[(br * 3 + k / 3) * 9 + (bc * 3 + k % 3)] as usize;
                assert!(!seen[v], "box repeats");
                seen[v] = true;
            }
        }
    }
}

/// A standard easy puzzle: AC-3 alone should nearly finish it.
const EASY: [[u8; 9]; 9] = [
    [5, 3, 0, 0, 7, 0, 0, 0, 0],
    [6, 0, 0, 1, 9, 5, 0, 0, 0],
    [0, 9, 8, 0, 0, 0, 0, 6, 0],
    [8, 0, 0, 0, 6, 0, 0, 0, 3],
    [4, 0, 0, 8, 0, 3, 0, 0, 1],
    [7, 0, 0, 0, 2, 0, 0, 0, 6],
    [0, 6, 0, 0, 0, 0, 2, 8, 0],
    [0, 0, 0, 4, 1, 9, 0, 0, 5],
    [0, 0, 0, 0, 8, 0, 0, 7, 9],
];

/// A hard puzzle that genuinely requires search on top of propagation.
const HARD: [[u8; 9]; 9] = [
    [0, 0, 0, 0, 0, 0, 0, 1, 2],
    [0, 0, 0, 0, 0, 0, 0, 0, 3],
    [0, 0, 2, 3, 0, 0, 4, 0, 0],
    [0, 0, 1, 8, 0, 0, 0, 0, 5],
    [0, 6, 0, 0, 7, 0, 8, 0, 0],
    [0, 0, 0, 0, 0, 9, 0, 0, 0],
    [0, 0, 8, 5, 0, 0, 0, 0, 0],
    [9, 0, 0, 0, 4, 0, 5, 0, 0],
    [4, 7, 0, 0, 0, 6, 0, 0, 0],
];

#[test]
fn solves_easy_sudoku() {
    let (p, _) = sudoku_problem(&EASY);
    let sol = Solver::new().solve(&p).solution.expect("easy sudoku is solvable");
    assert_valid_sudoku(&sol);
    assert_eq!(sol[0], 5);
    assert_eq!(sol[1], 3);
}

#[test]
fn solves_hard_sudoku() {
    let (p, _) = sudoku_problem(&HARD);
    let sol = Solver::new().solve(&p).solution.expect("hard sudoku is solvable");
    assert_valid_sudoku(&sol);
}

#[test]
fn ac3_propagation_shrinks_domains_substantially() {
    let (p, _) = sudoku_problem(&EASY);
    let mut d = p.domains();
    let before: usize = d.iter().map(Vec::len).sum();
    assert!(ac3(&p, &mut d).is_consistent());
    let after: usize = d.iter().map(Vec::len).sum();
    assert!(after < before / 2, "AC-3 only shrank {before} → {after}");
    // On this easy puzzle, AC-3 actually solves every cell.
    assert!(d.iter().all(|dom| dom.len() == 1), "easy puzzle should be AC-3-complete");
}

#[test]
fn contradictory_clues_detected() {
    let mut grid = EASY;
    grid[0][2] = 5; // duplicate 5 in the first row
    let (p, _) = sudoku_problem(&grid);
    let mut d = p.domains();
    assert!(!ac3(&p, &mut d).is_consistent());
    assert!(Solver::new().solve(&p).solution.is_none());
}

#[test]
fn unique_solution_for_easy_puzzle() {
    let (p, _) = sudoku_problem(&EASY);
    let (sols, _) = Solver::new().enumerate(&p, 3);
    assert_eq!(sols.len(), 1, "well-posed puzzle must have exactly one solution");
}
