//! Property tests for solver soundness and AC-3 correctness on random
//! binary CSPs, cross-checked against brute-force enumeration.

use ferex_csp::{ac3, Problem, Solver};
use proptest::prelude::*;

/// A randomly generated binary CSP instance: `n` variables over `0..d`,
/// with a relation table per constraint edge.
#[derive(Debug, Clone)]
struct RandomCsp {
    n: usize,
    d: usize,
    /// (a, b, allowed pairs encoded as a×d + b indices into a bool table)
    edges: Vec<(usize, usize, Vec<bool>)>,
}

fn random_csp() -> impl Strategy<Value = RandomCsp> {
    (2usize..5, 2usize..4).prop_flat_map(|(n, d)| {
        let n_pairs = n * (n - 1) / 2;
        proptest::collection::vec(proptest::collection::vec(any::<bool>(), d * d), 0..=n_pairs)
            .prop_map(move |tables| {
                let mut pairs = Vec::new();
                for i in 0..n {
                    for j in (i + 1)..n {
                        pairs.push((i, j));
                    }
                }
                let edges = tables
                    .into_iter()
                    .enumerate()
                    .map(|(k, t)| (pairs[k].0, pairs[k].1, t))
                    .collect();
                RandomCsp { n, d, edges }
            })
    })
}

fn build(instance: &RandomCsp) -> Problem<usize> {
    let mut p = Problem::new();
    let vars: Vec<_> = (0..instance.n)
        .map(|i| p.add_variable(format!("v{i}"), (0..instance.d).collect()))
        .collect();
    for (a, b, table) in &instance.edges {
        let table = table.clone();
        let d = instance.d;
        p.add_binary(vars[*a], vars[*b], "table", move |x: &usize, y: &usize| table[x * d + y]);
    }
    p
}

/// Brute-force enumeration of all solutions.
fn brute_force(instance: &RandomCsp) -> Vec<Vec<usize>> {
    let mut sols = Vec::new();
    let total = instance.d.pow(instance.n as u32);
    for code in 0..total {
        let mut assign = Vec::with_capacity(instance.n);
        let mut c = code;
        for _ in 0..instance.n {
            assign.push(c % instance.d);
            c /= instance.d;
        }
        let ok = instance.edges.iter().all(|(a, b, t)| t[assign[*a] * instance.d + assign[*b]]);
        if ok {
            sols.push(assign);
        }
    }
    sols
}

proptest! {
    /// The solver finds a solution exactly when brute force does, and the
    /// solution it returns satisfies every constraint.
    #[test]
    fn solver_agrees_with_brute_force(instance in random_csp()) {
        let p = build(&instance);
        let expected = brute_force(&instance);
        let outcome = Solver::new().solve(&p);
        prop_assert_eq!(outcome.solution.is_some(), !expected.is_empty());
        if let Some(sol) = outcome.solution {
            prop_assert!(p.is_satisfied(&sol));
        }
    }

    /// Solution counting matches brute force (complete enumeration).
    #[test]
    fn count_matches_brute_force(instance in random_csp()) {
        let p = build(&instance);
        let expected = brute_force(&instance).len();
        let (n, _) = Solver::new().count_solutions(&p);
        prop_assert_eq!(n, expected);
        let (n_plain, _) = Solver::plain().count_solutions(&p);
        prop_assert_eq!(n_plain, expected);
    }

    /// AC-3 soundness: it never removes a value that occurs in some solution.
    #[test]
    fn ac3_is_sound(instance in random_csp()) {
        let p = build(&instance);
        let mut domains = p.domains();
        let outcome = ac3(&p, &mut domains);
        let sols = brute_force(&instance);
        if !sols.is_empty() {
            prop_assert!(outcome.is_consistent(),
                "AC-3 wiped out a domain on a satisfiable instance");
        }
        for sol in &sols {
            for (var, &val) in sol.iter().enumerate() {
                prop_assert!(
                    domains[var].contains(&val),
                    "AC-3 removed value {} of variable {} present in solution {:?}",
                    val, var, sol
                );
            }
        }
    }

    /// AC-3 is idempotent: a second run removes nothing.
    #[test]
    fn ac3_idempotent(instance in random_csp()) {
        let p = build(&instance);
        let mut domains = p.domains();
        let first = ac3(&p, &mut domains);
        if first.is_consistent() {
            let snapshot = domains.clone();
            let second = ac3(&p, &mut domains);
            prop_assert!(second.is_consistent());
            prop_assert_eq!(second.stats().removals, 0);
            prop_assert_eq!(domains, snapshot);
        }
    }

    /// Every enumerated solution is valid and they are pairwise distinct.
    #[test]
    fn enumeration_is_valid_and_distinct(instance in random_csp()) {
        let p = build(&instance);
        let (sols, _) = Solver::new().enumerate(&p, 1000);
        for s in &sols {
            prop_assert!(p.is_satisfied(s));
        }
        for i in 0..sols.len() {
            for j in (i + 1)..sols.len() {
                prop_assert_ne!(&sols[i], &sols[j]);
            }
        }
    }
}
