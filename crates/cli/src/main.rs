#![forbid(unsafe_code)]
//! `ferex` — the command-line entry point.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match ferex_cli::parse(&args) {
        Ok(cmd) => cmd,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("try 'ferex help'");
            return ExitCode::FAILURE;
        }
    };
    match ferex_cli::run(&command) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
