#![forbid(unsafe_code)]
//! # ferex-cli — command-line interface library
//!
//! Argument parsing and command execution for the `ferex` binary. Kept as a
//! library so the parsing and the commands are unit-testable without
//! spawning processes.
//!
//! Subcommands:
//!
//! * `ferex encode --metric <hamming|manhattan|euclidean> [--bits N]` —
//!   run the CSP pipeline and print the sizing trail + voltage table.
//! * `ferex search --metric <m> --store "v;v;…" --query "v"
//!   [--backend <ideal|noisy|circuit>] [--seed N]` — one associative
//!   search over vectors given as comma-separated symbols.
//! * `ferex montecarlo [--runs N] [--near D] [--far D] [--backend …]` —
//!   the Fig. 7 worst-case campaign.
//! * `ferex info` — print the technology card.

pub mod args;
pub mod commands;

pub use args::{parse, Command, ParseArgsError};
pub use commands::{run, CommandError};
