//! Command execution: each subcommand renders its output to a `String`
//! (testable) which `main` prints.

use crate::args::{BackendKind, Command, LoadMode};
use ferex_analog::montecarlo::MonteCarlo;
use ferex_core::{
    cosimulate, derive_replica_seed, find_minimal_cell, percentile, sizing_for, Backend,
    BrownoutPolicy, CircuitConfig, CostModel, DistanceMatrix, DistanceMetric, Ferex, FerexArray,
    FerexError, HedgePolicy, LatencyModel, MutationPolicy, QuorumPolicy, RepairPolicy,
    ReplicaPolicy, ReplicaSet, Request, ServeLoop, ServePolicy, ServeSource, ShedReason,
};
use ferex_datasets::synth::flip_symbol_bits;
use ferex_fefet::math::splitmix64;
use ferex_fefet::{FaultPlan, Technology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

/// Command-execution failure (already user-facing).
#[derive(Debug)]
pub struct CommandError(pub String);

impl fmt::Display for CommandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Error for CommandError {}

impl From<FerexError> for CommandError {
    fn from(e: FerexError) -> Self {
        CommandError(e.to_string())
    }
}

fn backend_of(kind: BackendKind, seed: u64, faults: FaultPlan) -> Backend {
    let cfg = || Box::new(CircuitConfig { seed, faults, ..Default::default() });
    match kind {
        BackendKind::Ideal => Backend::Ideal,
        BackendKind::Noisy => Backend::Noisy(cfg()),
        BackendKind::Circuit => Backend::Circuit(cfg()),
    }
}

/// Executes a parsed command and returns its rendered output.
///
/// # Errors
///
/// [`CommandError`] with a user-facing message.
pub fn run(command: &Command) -> Result<String, CommandError> {
    match command {
        Command::Help => Ok(crate::args::USAGE.to_string()),
        Command::Info => Ok(render_info(&Technology::default())),
        Command::Encode { metric, bits } => render_encode(*metric, *bits),
        Command::Search { metric, bits, stored, query, backend, seed, faults, spares } => {
            render_search(*metric, *bits, stored, query, *backend, *seed, *faults, *spares)
        }
        Command::MonteCarlo { runs, near, far, backend, faults } => {
            render_montecarlo(*runs, *near, *far, *backend, *faults)
        }
        Command::Verify { metric, bits } => render_verify(*metric, *bits),
        Command::BenchKernels { metric, bits, rows, dim, batch, backend, seed } => {
            render_bench_kernels(*metric, *bits, *rows, *dim, *batch, *backend, *seed)
        }
        Command::ServeSim {
            metric,
            bits,
            stored,
            queries,
            backend,
            seed,
            faults,
            spares,
            replicas,
            reads,
            agree,
            kill,
            scrub_every,
            load,
            tenants,
            target_batch,
            deadline,
            slow_replicas,
            hedge,
            churn,
        } => render_serve_sim(
            *metric,
            *bits,
            stored,
            queries,
            *backend,
            *seed,
            *faults,
            *spares,
            *replicas,
            (*reads, *agree),
            *kill,
            *scrub_every,
            *load,
            (*tenants, *target_batch, *deadline),
            slow_replicas,
            *hedge,
            *churn,
        ),
    }
}

fn render_verify(metric: DistanceMetric, bits: u32) -> Result<String, CommandError> {
    if !(1..=6).contains(&bits) {
        return Err(CommandError("--bits must be in 1..=6".into()));
    }
    let tech = Technology::default();
    let dm = DistanceMatrix::from_metric(metric, bits);
    let report = find_minimal_cell(&dm, &sizing_for(&tech))
        .map_err(|e| CommandError(format!("encoding failed: {e}")))?;
    let cosim = cosimulate(&report.encoding, &dm, &tech, 0.15);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{bits}-bit {metric}: {}FeFET{}R encoding, {} (search,stored) pairs co-simulated",
        report.encoding.k,
        report.encoding.k,
        cosim.measurements.len()
    );
    let _ = writeln!(out, "worst deviation: {:.3} I_unit", cosim.max_error());
    if cosim.passed() {
        let _ = writeln!(out, "PASS: device-level array reproduces the distance matrix");
    } else {
        let _ = writeln!(out, "FAIL: {} pairs out of tolerance", cosim.failures().len());
        for m in cosim.failures().iter().take(8) {
            let _ = writeln!(
                out,
                "  search {} / stored {}: sensed {:.2}, expected {}",
                m.search, m.stored, m.sensed, m.expected
            );
        }
    }
    Ok(out)
}

/// Adaptive mean wall time of `f` in nanoseconds: one pilot run, then
/// enough repeats to accumulate ~50 ms (slow configurations keep the
/// single pilot measurement instead of stalling the command).
fn mean_ns<F: FnMut()>(mut f: F) -> f64 {
    let pilot = std::time::Instant::now();
    f();
    let first = pilot.elapsed().as_secs_f64();
    if first >= 0.2 {
        return first * 1e9;
    }
    let iters = ((0.05 / first.max(1e-9)).ceil() as usize).clamp(1, 200);
    let start = std::time::Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() / iters as f64 * 1e9
}

fn render_bench_kernels(
    metric: DistanceMetric,
    bits: u32,
    rows: usize,
    dim: usize,
    batch: usize,
    backend: BackendKind,
    seed: u64,
) -> Result<String, CommandError> {
    if !(1..=6).contains(&bits) {
        return Err(CommandError("--bits must be in 1..=6".into()));
    }
    let mut engine = Ferex::builder()
        .metric(metric)
        .bits(bits)
        .dim(dim)
        .backend(backend_of(backend, seed, FaultPlan::none()))
        .build()?;
    let top = 1u32 << bits;
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..rows {
        engine.store((0..dim).map(|_| rng.gen_range(0..top)).collect())?;
    }
    engine.ensure_programmed()?;
    let queries: Vec<Vec<u32>> =
        (0..batch).map(|_| (0..dim).map(|_| rng.gen_range(0..top)).collect()).collect();
    let array = engine.array();
    let batched = array.distances_batch(&queries)?;
    for (i, q) in queries.iter().take(4).enumerate() {
        if array.distances(q)? != batched[i] {
            return Err(CommandError(format!(
                "batch kernel diverged from the scalar path on query {i} — this is a bug"
            )));
        }
    }
    let batch_ns = mean_ns(|| {
        std::hint::black_box(array.distances_batch(&queries).expect("repeat of a served batch"));
    }) / batch as f64;
    let scalar_ns = mean_ns(|| {
        for q in &queries {
            std::hint::black_box(array.distances(q).expect("repeat of a served query"));
        }
    }) / batch as f64;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{bits}-bit {metric}, {rows} rows x {dim} symbols, batch of {batch} (seed {seed})"
    );
    let _ = writeln!(out, "  batch kernel     : {}", array.batch_kernel(batch));
    let _ = writeln!(out, "  batch ns/query   : {batch_ns:.0}");
    let _ = writeln!(out, "  scalar ns/query  : {scalar_ns:.0}");
    let _ = writeln!(out, "  speedup          : {:.2}x", scalar_ns / batch_ns.max(1e-9));
    let _ = writeln!(out, "  bit-identity     : PASS (batch == scalar on sampled queries)");
    Ok(out)
}

fn render_info(tech: &Technology) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "technology card (45nm-class defaults):");
    let _ = writeln!(
        out,
        "  stored V_th levels : {} ({})",
        tech.n_vth_levels,
        (0..tech.n_vth_levels)
            .map(|i| format!("{:.1} V", tech.vth_level(i).value()))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(
        out,
        "  search V_gs levels : {} ({})",
        tech.n_vth_levels + 1,
        (0..=tech.n_vth_levels)
            .map(|j| format!("{:.1} V", tech.search_voltage(j).value()))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(out, "  cell resistor      : {:.1} MΩ", tech.r_cell.value() / 1e6);
    let _ = writeln!(
        out,
        "  V_ds unit / I_unit : {:.2} V / {:.0} nA (up to {}x)",
        tech.vds_unit.value(),
        tech.i_unit().value() * 1e9,
        tech.max_vds_multiple
    );
    let _ = writeln!(out, "  ON/OFF margin      : {:.0} mV", tech.on_off_margin().value() * 1e3);
    out
}

fn render_encode(metric: DistanceMetric, bits: u32) -> Result<String, CommandError> {
    if !(1..=6).contains(&bits) {
        return Err(CommandError("--bits must be in 1..=6".into()));
    }
    let tech = Technology::default();
    let dm = DistanceMatrix::from_metric(metric, bits);
    let mut out = String::new();
    let _ = writeln!(out, "{bits}-bit {metric} distance matrix:");
    let _ = write!(out, "{dm}");
    let report = find_minimal_cell(&dm, &sizing_for(&tech))
        .map_err(|e| CommandError(format!("encoding failed: {e}")))?;
    let _ = writeln!(out);
    for a in &report.attempts {
        let _ =
            writeln!(out, "K = {}: {}", a.k, if a.feasible { "feasible" } else { "infeasible" });
    }
    let _ = write!(out, "{}", report.encoding);
    match report.encoding.verify(&dm) {
        Ok(()) => {
            let _ = writeln!(out, "verification: OK (encoding reproduces the DM exactly)");
        }
        Err(e) => {
            return Err(CommandError(format!("internal verification failure: {e}")));
        }
    }
    Ok(out)
}

#[allow(clippy::too_many_arguments)]
fn render_search(
    metric: DistanceMetric,
    bits: u32,
    stored: &[Vec<u32>],
    query: &[u32],
    backend: BackendKind,
    seed: u64,
    faults: FaultPlan,
    spares: usize,
) -> Result<String, CommandError> {
    if stored.is_empty() {
        return Err(CommandError("--store must contain at least one vector".into()));
    }
    let dim = query.len();
    if dim == 0 {
        return Err(CommandError("--query must not be empty".into()));
    }
    let mut builder = Ferex::builder()
        .metric(metric)
        .bits(bits)
        .dim(dim)
        .backend(backend_of(backend, seed, faults));
    if spares > 0 {
        builder = builder.repair_policy(RepairPolicy { spare_rows: spares, ..Default::default() });
    }
    let mut engine = builder.build().map_err(|e| CommandError(e.to_string()))?;
    for v in stored {
        engine.store(v.clone())?;
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{metric} search over {} stored vectors ({} symbols, {} backend):",
        stored.len(),
        dim,
        match backend {
            BackendKind::Ideal => "ideal",
            BackendKind::Noisy => "noisy",
            BackendKind::Circuit => "circuit",
        }
    );
    match engine.search(query) {
        Ok(result) => {
            for (r, d) in result.distances.iter().enumerate() {
                let marker = if r == result.nearest { "  <-- nearest" } else { "" };
                if d.is_infinite() {
                    let _ = writeln!(out, "  row {r}: quarantined (no spare left)");
                } else {
                    let _ = writeln!(out, "  row {r}: distance {d:.2}{marker}");
                }
            }
        }
        // With self-healing on, a fully quarantined array is a served
        // (degraded) outcome worth reporting, not a usage error.
        Err(FerexError::Empty) if spares > 0 && engine.array().program_report().is_some() => {
            let _ = writeln!(out, "  every row quarantined — no servable neighbor");
        }
        Err(e) => return Err(e.into()),
    }
    if spares > 0 {
        let report = engine.array().program_report().expect("search write-verified");
        let h = engine.health();
        let _ = writeln!(
            out,
            "self-heal: {} cells verified ({} clean, {} repaired in {} retries, {} failed)",
            report.cells,
            report.cells_clean,
            report.cells_repaired,
            report.retries,
            report.cells_failed
        );
        let _ = writeln!(
            out,
            "           {} rows quarantined, {} remapped onto spares, {} excluded \
             ({}/{} spares in use)",
            report.rows_quarantined.len(),
            report.rows_remapped.len(),
            report.rows_excluded.len(),
            h.spares_in_use,
            h.spare_rows
        );
    }
    Ok(out)
}

#[allow(clippy::too_many_arguments)]
fn render_serve_sim(
    metric: DistanceMetric,
    bits: u32,
    stored: &[Vec<u32>],
    queries: &[Vec<u32>],
    backend: BackendKind,
    seed: u64,
    faults: FaultPlan,
    spares: usize,
    replicas: usize,
    (reads, agree): (usize, usize),
    kill: Option<(usize, usize)>,
    scrub_every: usize,
    load: Option<LoadMode>,
    (tenants, target_batch, deadline): (usize, usize, u64),
    slow_replicas: &[(usize, u64)],
    hedge: Option<(u64, u64)>,
    churn: u64,
) -> Result<String, CommandError> {
    if !(1..=6).contains(&bits) {
        return Err(CommandError("--bits must be in 1..=6".into()));
    }
    if stored.is_empty() {
        return Err(CommandError("--store must contain at least one vector".into()));
    }
    if queries.is_empty() {
        return Err(CommandError("--queries must contain at least one vector".into()));
    }
    let dim = stored[0].len();
    let tech = Technology::default();
    let dm = DistanceMatrix::from_metric(metric, bits);
    let encoding = find_minimal_cell(&dm, &sizing_for(&tech))
        .map_err(|e| CommandError(format!("encoding failed: {e}")))?
        .encoding;
    let mut pool = Vec::with_capacity(replicas);
    for i in 0..replicas {
        // Replica 0 carries the injected fault plan; the rest stay clean so
        // quorum reads have healthy peers to outvote it with.
        let plan = if i == 0 { faults } else { FaultPlan::none() };
        let b = backend_of(backend, derive_replica_seed(seed, i as u64), plan);
        let mut array = FerexArray::new(tech.clone(), encoding.clone(), dim, b);
        if spares > 0 {
            array.set_repair_policy(RepairPolicy { spare_rows: spares, ..Default::default() })?;
        }
        if churn > 0 {
            // Online churn needs the mutation slot table; double capacity
            // leaves free slots for tombstones and wear rotation.
            array.enable_mutation(MutationPolicy::with_capacity(stored.len() * 2))?;
            for (id, v) in stored.iter().enumerate() {
                array.insert(id as u64, v.clone())?;
            }
        } else {
            array.store_all(stored.iter().cloned())?;
        }
        if spares > 0 {
            array.program_verified()?;
        } else {
            array.program();
        }
        pool.push(array);
    }
    // Under churn the digital mirror is capacity-sized (free slots are
    // zeros the liveness filter skips), not the raw store list.
    let mirror = if churn > 0 {
        pool.first().map(|a| a.stored().to_vec()).unwrap_or_default()
    } else {
        stored.to_vec()
    };
    let policy = ReplicaPolicy { quorum: QuorumPolicy { reads, agree }, ..Default::default() };
    let mut set = ReplicaSet::new(pool, mirror, metric, policy);
    if let Some(mode) = load {
        return render_serve_loop(
            metric,
            set,
            queries,
            seed,
            mode,
            (tenants, target_batch, deadline),
            kill,
            scrub_every,
            slow_replicas,
            hedge,
            churn,
        );
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{metric} replicated serving: {replicas} replicas, quorum {agree}-of-{reads}, \
         {} stored vectors ({} symbols)",
        stored.len(),
        dim
    );
    for (qi, query) in queries.iter().enumerate() {
        if let Some((k, at)) = kill {
            if qi == at {
                set.kill(k);
                let _ = writeln!(out, "  -- chaos: replica {k} killed");
            }
        }
        if scrub_every > 0 && qi > 0 && qi % scrub_every == 0 {
            let findings = set.scrub_all();
            let _ = writeln!(out, "  -- maintenance scrub: {findings} findings");
        }
        let served = set.serve(query)?;
        let nearest = served.outcome.nearest;
        let via = match served.source {
            ServeSource::Replica(i) => format!("replica {i}"),
            ServeSource::OracleFallback => "oracle fallback".to_string(),
        };
        let _ = writeln!(
            out,
            "  query {qi}: nearest row {nearest} (distance {:.2}) via {via}",
            served.outcome.distances[nearest]
        );
    }
    let s = set.stats();
    let _ = writeln!(
        out,
        "served {} queries: {} replica reads, {} disagreements, {} oracle fallbacks",
        s.queries_served, s.replica_reads, s.disagreements, s.oracle_fallbacks
    );
    let _ = writeln!(
        out,
        "resilience: {} scrubs escalated, {} scheduled scrubs, {} breaker trips, \
         {}/{replicas} replicas alive",
        s.scrubs_escalated,
        s.scheduled_scrubs,
        s.breaker_trips,
        set.alive()
    );
    Ok(out)
}

/// Drives the deterministic serving loop over the query list with seeded
/// open- or closed-loop arrivals on a virtual tick clock.
#[allow(clippy::too_many_arguments)]
fn render_serve_loop(
    metric: DistanceMetric,
    mut set: ReplicaSet<FerexArray>,
    queries: &[Vec<u32>],
    seed: u64,
    mode: LoadMode,
    (tenants, target_batch, deadline): (usize, usize, u64),
    kill: Option<(usize, usize)>,
    scrub_every: usize,
    slow_replicas: &[(usize, u64)],
    hedge: Option<(u64, u64)>,
    churn: u64,
) -> Result<String, CommandError> {
    /// Bernoulli sub-slots per tick of the open-loop arrival process
    /// (matches the conformance load simulator).
    const SUBSLOTS: u64 = 8;
    const MAX_TICKS: u64 = 1_000_000;
    let cost = CostModel::noisy_10k();
    // Either latency flag arms seeded per-replica latency models (healthy
    // unless slowed) plus brownout demotion, mirroring the conformance v2
    // scenario family.
    let latency_armed = !slow_replicas.is_empty() || hedge.is_some();
    if latency_armed {
        let latency_seed = splitmix64(seed ^ 0x510E_11FE);
        let n_replicas = set.n_replicas();
        for i in 0..n_replicas {
            let mut model =
                LatencyModel::healthy(cost, derive_replica_seed(latency_seed, i as u64));
            if let Some(&(_, factor)) = slow_replicas.iter().find(|&&(r, _)| r == i) {
                model.slow_factor_milli = factor;
            }
            set.set_latency_model(i, model)?;
        }
    }
    let policy = ServePolicy {
        target_batch,
        queue_capacity: 0,
        quantum: 1,
        cost,
        max_wait_ticks: 0,
        hedge: hedge
            .map(|(quantile_milli, budget_milli)| HedgePolicy { quantile_milli, budget_milli }),
        brownout: latency_armed.then(BrownoutPolicy::default),
    };
    let mut lp = ServeLoop::new(set, tenants, policy)?;
    let n = queries.len();
    let mut out = String::new();
    let mode_label = match mode {
        LoadMode::Open { rate_milli } => format!("open loop, {rate_milli} req/kilotick"),
        LoadMode::Closed { outstanding } => format!("closed loop, {outstanding} in flight"),
    };
    let _ = writeln!(
        out,
        "{metric} serving loop ({mode_label}): {n} requests over {tenants} tenant(s), \
         target batch {target_batch}, deadline {deadline} ticks (seed {seed})"
    );
    let arrival_seed = splitmix64(seed ^ 0x10AD_11FE);
    let threshold = match mode {
        LoadMode::Open { rate_milli } => {
            (((rate_milli as u128) << 64) / (1000 * SUBSLOTS as u128)).min(u64::MAX as u128) as u64
        }
        LoadMode::Closed { .. } => 0,
    };
    // Churn events draw from their own seeded Bernoulli stream on the same
    // sub-slot clock, so arrivals and mutations stay independent.
    let churn_seed = splitmix64(seed ^ 0xC400_11FE);
    let churn_threshold =
        (((churn as u128) << 64) / (1000 * SUBSLOTS as u128)).min(u64::MAX as u128) as u64;
    let live_ids: Vec<u64> = lp.set().live_ids();
    let mut mutations_failed = 0u64;
    let mut submitted = 0usize;
    let mut completions = Vec::new();
    let mut sheds = Vec::new();
    // Closed-loop respawn ticks (always popped in order: completion ticks
    // are monotone across batches).
    let mut respawns: std::collections::VecDeque<u64> = std::collections::VecDeque::new();
    if let LoadMode::Closed { outstanding } = mode {
        for _ in 0..outstanding.min(n) {
            respawns.push_back(0);
        }
    }
    let mut scrubs = 0u64;
    let mut scrub_findings = 0usize;
    let mut end_tick = 0u64;
    let mut tick = 0u64;
    loop {
        if tick >= MAX_TICKS {
            return Err(CommandError(format!(
                "serving loop failed to drain within {MAX_TICKS} virtual ticks"
            )));
        }
        if let Some((k, at)) = kill {
            if tick == at as u64 {
                lp.set_mut().kill(k);
                let _ = writeln!(out, "  -- chaos: replica {k} killed at tick {at}");
            }
        }
        if scrub_every > 0 && tick > 0 && tick.is_multiple_of(scrub_every as u64) {
            scrubs += 1;
            scrub_findings += lp.set_mut().scrub_all();
        }
        if churn > 0 && !live_ids.is_empty() {
            for slot in 0..SUBSLOTS {
                let draw = splitmix64(churn_seed ^ splitmix64(tick * SUBSLOTS + slot));
                if draw >= churn_threshold {
                    continue;
                }
                // In-place id update: the mutated vector is drawn from the
                // query list, so churn stays within the validated alphabet.
                let id = live_ids.get((draw % live_ids.len() as u64) as usize).copied();
                let q = queries.get((splitmix64(draw) % queries.len().max(1) as u64) as usize);
                if let (Some(id), Some(v)) = (id, q) {
                    if lp.update(id, v.clone()).is_err() {
                        mutations_failed += 1;
                    }
                }
            }
            // Periodic wear-rotation maintenance rides the virtual clock.
            if tick > 0 && tick.is_multiple_of(256) {
                lp.maintenance();
            }
        }
        let submit = |lp: &mut ServeLoop<FerexArray>, i: usize, tick: u64| {
            lp.submit(Request {
                tenant: i % tenants,
                priority: 0,
                arrival_tick: tick,
                deadline_ticks: deadline,
                query: queries[i].clone(),
            })
            .map(|_| ())
        };
        match mode {
            LoadMode::Open { .. } => {
                for slot in 0..SUBSLOTS {
                    if submitted >= n {
                        break;
                    }
                    let draw = splitmix64(arrival_seed ^ splitmix64(tick * SUBSLOTS + slot));
                    if draw < threshold {
                        submit(&mut lp, submitted, tick)?;
                        submitted += 1;
                    }
                }
            }
            LoadMode::Closed { .. } => {
                while respawns.front().is_some_and(|&t| t <= tick) {
                    respawns.pop_front();
                    if submitted < n {
                        submit(&mut lp, submitted, tick)?;
                        submitted += 1;
                    }
                }
            }
        }
        let (done, shed) = lp.poll(tick)?;
        for c in &done {
            end_tick = end_tick.max(c.completion_tick);
            if matches!(mode, LoadMode::Closed { .. }) {
                respawns.push_back(c.completion_tick);
            }
        }
        completions.extend(done);
        sheds.extend(shed);
        if submitted >= n && lp.queue_depth() == 0 && tick >= end_tick {
            break;
        }
        tick += 1;
    }
    // One line per request, in submission (qid) order.
    let mut lines: Vec<(u64, String)> = Vec::with_capacity(n);
    for c in &completions {
        let via = match c.outcome.source {
            ServeSource::Replica(i) => format!("replica {i}"),
            ServeSource::OracleFallback => "oracle fallback".to_string(),
        };
        lines.push((
            c.qid,
            format!(
                "  req {} (tenant {}): nearest row {} via {via}, batch {}, latency {} ticks",
                c.qid,
                c.tenant,
                c.outcome.outcome.nearest,
                c.batch,
                c.latency()
            ),
        ));
    }
    for s in &sheds {
        let reason = match s.reason {
            ShedReason::Capacity => "capacity",
            ShedReason::Deadline => "deadline",
        };
        lines.push((
            s.qid,
            format!("  req {} (tenant {}): shed ({reason}) at tick {}", s.qid, s.tenant, s.tick),
        ));
    }
    lines.sort_by_key(|(qid, _)| *qid);
    for (_, line) in &lines {
        let _ = writeln!(out, "{line}");
    }
    let stats = lp.stats();
    let mut lat: Vec<u64> = completions.iter().map(|c| c.latency()).collect();
    lat.sort_unstable();
    let _ = writeln!(
        out,
        "served {}/{} in {} batches (max batch {}), shed {} capacity / {} deadline",
        stats.served,
        stats.submitted,
        stats.batches,
        stats.max_batch,
        stats.shed_capacity,
        stats.shed_deadline
    );
    let _ = writeln!(
        out,
        "virtual time: {} ticks end-to-end, {} busy serving",
        end_tick, stats.busy_ticks
    );
    let _ = writeln!(
        out,
        "latency ticks: p50 {}, p99 {}, p999 {}, max {} (deadline {deadline})",
        percentile(&lat, 50, 100),
        percentile(&lat, 99, 100),
        percentile(&lat, 999, 1000),
        lat.last().copied().unwrap_or(0)
    );
    let _ = writeln!(
        out,
        "goodput: {} served per 1000 ticks; served per tenant {:?}",
        stats.served.saturating_mul(1000) / end_tick.max(1),
        lp.served_per_tenant()
    );
    if scrub_every > 0 {
        let _ = writeln!(out, "maintenance: {scrubs} scheduled scrubs, {scrub_findings} findings");
    }
    if churn > 0 {
        let wear = lp.set().wear();
        let _ = writeln!(
            out,
            "churn: {} mutations applied ({} rejected), wear max {} cycles, \
             imbalance {} per-mille, {} compactions",
            stats.mutations,
            mutations_failed,
            wear.max_cycles,
            wear.imbalance_milli(),
            wear.compactions
        );
    }
    if latency_armed {
        let _ = writeln!(
            out,
            "hedging: {} issued, {} won; brownouts: {} demotions, {} re-probes",
            stats.hedges_issued, stats.hedge_wins, stats.brownout_demotions, stats.reprobes
        );
        for i in 0..lp.set().n_replicas() {
            let mut samples = lp.replica_samples(i).to_vec();
            samples.sort_unstable();
            let label = match slow_replicas.iter().find(|&&(r, _)| r == i) {
                Some(&(_, f)) => format!("slow@{f}"),
                None => "healthy".to_string(),
            };
            let _ = writeln!(
                out,
                "  replica {i} ({label}): {} reads, service p50 {} / max {} ticks, \
                 ewma {} milli, hedged against {}, hedge wins {}, demerit {} milli",
                samples.len(),
                percentile(&samples, 50, 100),
                samples.last().copied().unwrap_or(0),
                lp.latency_ewma_milli().get(i).copied().unwrap_or(1000),
                lp.hedged_against().get(i).copied().unwrap_or(0),
                lp.hedge_wins_by().get(i).copied().unwrap_or(0),
                lp.set().status(i).latency_demerit_milli,
            );
        }
    }
    Ok(out)
}

fn render_montecarlo(
    runs: usize,
    near: usize,
    far: usize,
    backend: BackendKind,
    faults: FaultPlan,
) -> Result<String, CommandError> {
    const DIM: usize = 48;
    let mc = MonteCarlo { runs, seed: 0xC11 };
    let mut k = 0u64;
    let result = mc.run(|_| {
        k += 1;
        let mut rng = StdRng::seed_from_u64(k);
        const BITS: u32 = 2;
        let query: Vec<u32> = (0..DIM).map(|_| rng.gen_range(0..1u32 << BITS)).collect();
        let mut engine = Ferex::builder()
            .metric(DistanceMetric::Hamming)
            .bits(BITS)
            .dim(DIM)
            .backend(backend_of(backend, k, faults))
            .build()
            .expect("2-bit Hamming encodes");
        engine.store(flip_symbol_bits(&query, BITS, near, &mut rng)).expect("stores");
        for _ in 0..8 {
            engine.store(flip_symbol_bits(&query, BITS, far, &mut rng)).expect("stores");
        }
        engine.search(&query).expect("searches").nearest == 0
    });
    let (lo, hi) = result.wilson_95();
    Ok(format!(
        "worst-case search accuracy (HD {near} vs {far}, {runs} runs): {:.1}% \
         (95% CI {:.1}-{:.1}%)\n",
        result.accuracy() * 100.0,
        lo * 100.0,
        hi * 100.0
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn run_line(line: &str) -> Result<String, CommandError> {
        let argv: Vec<String> = line.split_whitespace().map(String::from).collect();
        run(&parse(&argv).expect("parses"))
    }

    #[test]
    fn bench_kernels_labels_its_kernel_and_passes_identity() {
        let out = run_line("bench-kernels --metric hamming --rows 40 --dim 16 --batch 4").unwrap();
        assert!(out.contains("batch kernel     : bitplane-popcount"), "{out}");
        assert!(out.contains("bit-identity     : PASS"), "{out}");
        let out = run_line(
            "bench-kernels --metric l1 --rows 30 --dim 8 --batch 4 --backend noisy --seed 5",
        )
        .unwrap();
        assert!(out.contains("batch kernel     : contrib-table"), "{out}");
        assert!(out.contains("speedup"), "{out}");
    }

    #[test]
    fn info_renders_technology() {
        let out = run_line("info").unwrap();
        assert!(out.contains("stored V_th levels"));
        assert!(out.contains("1.0 MΩ"));
    }

    #[test]
    fn encode_hamming_prints_table_and_verifies() {
        let out = run_line("encode --metric hamming").unwrap();
        assert!(out.contains("3FeFET3R"));
        assert!(out.contains("K = 1: infeasible"));
        assert!(out.contains("verification: OK"));
    }

    #[test]
    fn search_reports_nearest() {
        let out = run_line("search --metric manhattan --store 0,0;3,3 --query 1,0").unwrap();
        assert!(out.contains("row 0: distance 1.00  <-- nearest"), "{out}");
        assert!(out.contains("row 1: distance 5.00"));
    }

    #[test]
    fn search_on_noisy_backend_runs() {
        let out = run_line(
            "search --metric hamming --store 0,0,0,0;3,3,3,3 --query 0,0,0,0 --backend noisy",
        )
        .unwrap();
        assert!(out.contains("<-- nearest"));
    }

    #[test]
    fn montecarlo_reports_accuracy() {
        let out = run_line("montecarlo --runs 10 --near 5 --far 9").unwrap();
        assert!(out.contains("worst-case search accuracy"));
        assert!(out.contains("10 runs"));
    }

    #[test]
    fn faulted_search_diverges_from_benign() {
        let benign =
            "search --metric hamming --store 0,0,0,0;3,3,3,3 --query 0,0,0,0 --backend noisy \
             --seed 9";
        let faulted = format!("{benign} --faults sa1=1.0");
        let clean = run_line(benign).unwrap();
        let dead = run_line(&faulted).unwrap();
        assert!(clean.contains("row 0: distance 0.00"), "{clean}");
        assert!(!clean.contains("row 1: distance 0.00"), "{clean}");
        // Every cell stuck depolarized: no mismatch current flows anywhere,
        // so the far row's sensed distance collapses to zero too.
        assert_ne!(clean, dead);
        assert!(dead.contains("row 1: distance 0.00"), "{dead}");
        // Deterministic: same spec, same output.
        assert_eq!(run_line(&faulted).unwrap(), dead);
    }

    #[test]
    fn faulted_montecarlo_degrades_accuracy() {
        let clean = run_line("montecarlo --runs 12 --near 2 --far 20").unwrap();
        let dead =
            run_line("montecarlo --runs 12 --near 2 --far 20 --faults sa0=0.5,open=0.3").unwrap();
        assert!(clean.contains("accuracy"), "{clean}");
        assert_ne!(clean, dead, "heavy faults must perturb the campaign");
    }

    #[test]
    fn spared_search_reports_self_healing() {
        // Every cell SA1-dead: without spares the far row collapses to
        // distance zero; with spares the report shows the quarantine.
        let line = "search --metric hamming --store 0,0,0,0;3,3,3,3 --query 0,0,0,0 \
                    --backend noisy --seed 9 --faults sa1=1.0 --spares 2";
        let out = run_line(line).unwrap();
        assert!(out.contains("self-heal:"), "{out}");
        assert!(out.contains("2 rows quarantined"), "{out}");
        assert!(out.contains("every row quarantined"), "{out}");
        // Deterministic under a fixed seed.
        assert_eq!(run_line(line).unwrap(), out);
        // A mild fault rate heals back to a served array.
        let healed = run_line(
            "search --metric hamming --store 0,1,2,3;3,3,3,3 --query 0,1,2,3 \
             --backend noisy --seed 3 --faults sa1=0.05 --spares 8",
        )
        .unwrap();
        assert!(healed.contains("self-heal:"), "{healed}");
        assert!(healed.contains("row 0: distance 0.00  <-- nearest"), "{healed}");
    }

    #[test]
    fn serve_sim_reports_sources_and_counters() {
        let line = "serve-sim --metric hamming --store 0,0,0,0;3,3,3,3 \
                    --queries 0,0,0,0;3,3,3,3;0,0,0,0 --replicas 3 --quorum 2/2 --seed 5";
        let out = run_line(line).unwrap();
        assert!(out.contains("3 replicas, quorum 2-of-2"), "{out}");
        assert!(out.contains("query 0: nearest row 0"), "{out}");
        assert!(out.contains("query 1: nearest row 1"), "{out}");
        assert!(out.contains("served 3 queries"), "{out}");
        assert!(out.contains("3/3 replicas alive"), "{out}");
        // Deterministic under a fixed seed.
        assert_eq!(run_line(line).unwrap(), out);
    }

    #[test]
    fn serve_sim_chaos_kill_forces_the_oracle_fallback() {
        // Two replicas with a 2/2 quorum; killing one mid-stream makes the
        // quorum unreachable, so the remaining queries fall back to the
        // digital oracle — and still serve the right answer.
        let out = run_line(
            "serve-sim --metric hamming --store 0,0,0,0;3,3,3,3 \
             --queries 0,0,0,0;3,3,3,3;0,0,0,0 --replicas 2 --quorum 2/2 \
             --chaos kill=1@1,scrub=2 --seed 5",
        )
        .unwrap();
        assert!(out.contains("chaos: replica 1 killed"), "{out}");
        assert!(out.contains("maintenance scrub:"), "{out}");
        assert!(
            out.contains("query 1: nearest row 1 (distance 0.00) via oracle fallback"),
            "{out}"
        );
        assert!(out.contains("1/2 replicas alive"), "{out}");
    }

    #[test]
    fn serve_sim_quorum_outvotes_a_dead_replica() {
        // Replica 0 fully SA0-stuck conducts everywhere, so its matched
        // rows read as far; the two clean replicas outvote it and the
        // dissent escalates a targeted scrub.
        let out = run_line(
            "serve-sim --metric hamming --store 0,0,0,0;3,3,3,3 \
             --queries 0,0,0,0;3,3,3,3 --replicas 3 --quorum 3/2 \
             --faults sa0=1.0 --seed 9",
        )
        .unwrap();
        assert!(out.contains("query 0: nearest row 0"), "{out}");
        assert!(out.contains("query 1: nearest row 1"), "{out}");
        assert!(out.contains("0 oracle fallbacks"), "{out}");
    }

    #[test]
    fn serve_sim_open_loop_is_deterministic_and_reports_latency() {
        let line = "serve-sim --metric hamming --store 0,0,0,0;3,3,3,3 \
                    --queries 0,0,0,0;3,3,3,3;0,0,0,0 --replicas 2 --quorum 1/1 \
                    --open-loop 64 --tenants 2 --target-batch 4 --seed 5";
        let out = run_line(line).unwrap();
        assert!(out.contains("serving loop (open loop, 64 req/kilotick)"), "{out}");
        assert!(out.contains("3 requests over 2 tenant(s)"), "{out}");
        assert!(out.contains("req 0 (tenant 0): nearest row 0 via replica"), "{out}");
        assert!(out.contains("req 1 (tenant 1): nearest row 1 via replica"), "{out}");
        assert!(out.contains("served 3/3"), "{out}");
        assert!(out.contains("latency ticks: p50"), "{out}");
        assert!(out.contains("goodput:"), "{out}");
        // Byte-identical on replay: the virtual clock and the seeded
        // arrival stream leave nothing to wall time.
        assert_eq!(run_line(line).unwrap(), out);
    }

    #[test]
    fn serve_sim_churn_mutates_while_serving() {
        // A high churn rate against a long closed-loop stream guarantees
        // mutation events land mid-serve; the loop must keep serving and
        // report the wear summary.
        let line = "serve-sim --metric hamming --store 0,0,0,0;3,3,3,3 \
                    --queries 0,0,0,0;3,3,3,3;0,0,0,0;3,3,3,3;0,0,0,0;3,3,3,3 \
                    --replicas 2 --quorum 1/1 --closed-loop 1 --target-batch 1 \
                    --churn 1000 --seed 5";
        let out = run_line(line).unwrap();
        assert!(out.contains("served 6/6"), "{out}");
        assert!(out.contains("churn: "), "{out}");
        assert!(out.contains("mutations applied (0 rejected)"), "{out}");
        assert!(!out.contains("churn: 0 mutations"), "churn stream never fired: {out}");
        // Byte-identical on replay: churn draws ride the same virtual
        // clock and seeded streams as arrivals.
        assert_eq!(run_line(line).unwrap(), out);
    }

    #[test]
    fn serve_sim_closed_loop_respects_the_window() {
        let out = run_line(
            "serve-sim --metric manhattan --store 0,0;3,3;1,2 \
             --queries 0,0;3,3;1,2;0,1 --closed-loop 2 --target-batch 2 \
             --deadline 100 --seed 7",
        )
        .unwrap();
        assert!(out.contains("serving loop (closed loop, 2 in flight)"), "{out}");
        assert!(out.contains("served 4/4"), "{out}");
        // A window of 2 can never fill a batch past 2 requests.
        assert!(!out.contains("max batch 3"), "{out}");
        assert!(!out.contains("max batch 4"), "{out}");
    }

    #[test]
    fn serve_sim_load_mode_kill_forces_the_oracle_fallback() {
        let out = run_line(
            "serve-sim --metric hamming --store 0,0,0,0;3,3,3,3 \
             --queries 0,0,0,0;3,3,3,3;0,0,0,0 --replicas 2 --quorum 2/2 \
             --open-loop 64 --target-batch 4 --chaos kill=1@1 --seed 5",
        )
        .unwrap();
        assert!(out.contains("-- chaos: replica 1 killed at tick 1"), "{out}");
        // With one of two replicas dead, a 2-of-2 quorum is unreachable:
        // every request lands on the digital oracle, and still answers.
        assert!(out.contains("via oracle fallback"), "{out}");
        assert!(out.contains("nearest row 0"), "{out}");
        assert!(out.contains("nearest row 1"), "{out}");
        assert!(out.contains("served 3/3"), "{out}");
    }

    #[test]
    fn serve_sim_slow_replica_and_hedge_report_latency_telemetry() {
        let line = "serve-sim --metric hamming --store 0,0,0,0;3,3,3,3 \
                    --queries 0,0,0,0;3,3,3,3;0,0,0,0;3,3,3,3 --replicas 3 --quorum 2/1 \
                    --open-loop 64 --target-batch 4 --deadline 4096 --seed 5 \
                    --slow-replica 1@8000 --hedge quantile=950,budget=500";
        let out = run_line(line).unwrap();
        assert!(out.contains("served 4/4"), "{out}");
        assert!(out.contains("hedging:"), "{out}");
        assert!(out.contains("brownouts:"), "{out}");
        assert!(out.contains("replica 0 (healthy):"), "{out}");
        assert!(out.contains("replica 1 (slow@8000):"), "{out}");
        assert!(out.contains("replica 2 (healthy):"), "{out}");
        // The latency telemetry replays byte-identically from the seed.
        assert_eq!(run_line(line).unwrap(), out);
        // Answers are bit-identical to the unhedged path: same nearest
        // rows with or without the latency machinery armed.
        let plain = run_line(
            "serve-sim --metric hamming --store 0,0,0,0;3,3,3,3 \
             --queries 0,0,0,0;3,3,3,3;0,0,0,0;3,3,3,3 --replicas 3 --quorum 2/1 \
             --open-loop 64 --target-batch 4 --deadline 4096 --seed 5",
        )
        .unwrap();
        let nearest = |s: &str| -> Vec<String> {
            s.lines()
                .filter(|l| l.contains("nearest row"))
                .map(|l| {
                    l.split("nearest row").nth(1).unwrap().split(' ').nth(1).unwrap().to_string()
                })
                .collect()
        };
        assert_eq!(nearest(&out), nearest(&plain), "hedging moved an answer:\n{out}\n{plain}");
    }

    #[test]
    fn errors_are_user_facing() {
        let err = run_line("encode --metric hamming --bits 9").unwrap_err();
        assert!(err.to_string().contains("--bits"));
        let err = run_line("search --metric hamming --store 0,4 --query 0,0").unwrap_err();
        assert!(err.to_string().contains("symbol"), "{err}");
    }
}
