//! Minimal dependency-free argument parsing for the `ferex` binary.

use ferex_core::DistanceMetric;
use ferex_fefet::FaultPlan;
use std::error::Error;
use std::fmt;

/// Which array backend a command simulates on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// Exact functional model.
    Ideal,
    /// Statistical variation model.
    Noisy,
    /// Device-level model.
    Circuit,
}

/// How the serving-loop load mode generates arrivals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadMode {
    /// Open loop: seeded arrivals at the given expected rate per 1000
    /// virtual ticks, independent of service progress.
    Open {
        /// Expected arrivals per 1000 ticks.
        rate_milli: u64,
    },
    /// Closed loop: the given number of requests is kept in flight; each
    /// completion immediately submits the next one.
    Closed {
        /// Requests kept in flight.
        outstanding: usize,
    },
}

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Run the encoding pipeline and print the result.
    Encode {
        /// Target metric.
        metric: DistanceMetric,
        /// Symbol bit width.
        bits: u32,
    },
    /// One associative search.
    Search {
        /// Target metric.
        metric: DistanceMetric,
        /// Symbol bit width.
        bits: u32,
        /// Stored vectors.
        stored: Vec<Vec<u32>>,
        /// Query vector.
        query: Vec<u32>,
        /// Simulation backend.
        backend: BackendKind,
        /// RNG seed for stochastic backends.
        seed: u64,
        /// Fault-injection plan for stochastic backends.
        faults: FaultPlan,
        /// Spare rows for self-healing (`0` disables write-verify/repair).
        spares: usize,
    },
    /// Fig. 7-style Monte-Carlo campaign.
    MonteCarlo {
        /// Number of runs.
        runs: usize,
        /// Distance of the true nearest vector.
        near: usize,
        /// Distance of the competitors.
        far: usize,
        /// Simulation backend.
        backend: BackendKind,
        /// Fault-injection plan for stochastic backends.
        faults: FaultPlan,
    },
    /// Replicated degraded-mode serving soak over a query stream.
    ServeSim {
        /// Target metric.
        metric: DistanceMetric,
        /// Symbol bit width.
        bits: u32,
        /// Stored vectors (shared by every replica).
        stored: Vec<Vec<u32>>,
        /// Query stream, served in order.
        queries: Vec<Vec<u32>>,
        /// Simulation backend.
        backend: BackendKind,
        /// RNG seed; replica seeds derive from it.
        seed: u64,
        /// Fault plan injected into replica 0 (the others stay clean).
        faults: FaultPlan,
        /// Spare rows per replica (`0` disables write-verify/repair).
        spares: usize,
        /// Replica count.
        replicas: usize,
        /// Quorum reads per query.
        reads: usize,
        /// Quorum agreement threshold.
        agree: usize,
        /// Chaos kill schedule: `(replica, query index)` — or `(replica,
        /// virtual tick)` when a load mode is active.
        kill: Option<(usize, usize)>,
        /// Scheduled scrub period in queries (ticks under a load mode);
        /// 0 disables.
        scrub_every: usize,
        /// Serving-loop load mode; `None` serves the stream sequentially.
        load: Option<LoadMode>,
        /// Tenant count of the serving loop (load mode only).
        tenants: usize,
        /// Batch former's target size (load mode only).
        target_batch: usize,
        /// Per-request deadline in virtual ticks (load mode only).
        deadline: u64,
        /// Per-replica slowdown plan `(replica, factor_milli)`; arms
        /// seeded latency models on every replica (load mode only).
        slow_replicas: Vec<(usize, u64)>,
        /// Hedge policy `(quantile_milli, budget_milli)`; `None` leaves
        /// hedging off (load mode only).
        hedge: Option<(u64, u64)>,
        /// Online-churn rate in mutations per 1000 ticks (load mode
        /// only); each seeded churn event updates one stored id through
        /// the serving loop mid-stream. 0 disables.
        churn: u64,
    },
    /// One-point kernel micro-benchmark: the batched distance path
    /// against the scalar per-query loop it must reproduce bit-identically.
    BenchKernels {
        /// Target metric.
        metric: DistanceMetric,
        /// Symbol bit width.
        bits: u32,
        /// Stored rows (random, seeded).
        rows: usize,
        /// Symbols per row.
        dim: usize,
        /// Queries per batch.
        batch: usize,
        /// Simulation backend.
        backend: BackendKind,
        /// RNG seed for fixtures and stochastic backends.
        seed: u64,
    },
    /// Co-simulate an encoding on the device-level array.
    Verify {
        /// Target metric.
        metric: DistanceMetric,
        /// Symbol bit width.
        bits: u32,
    },
    /// Print the technology card.
    Info,
    /// Print usage.
    Help,
}

/// Argument-parsing failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseArgsError(pub String);

impl fmt::Display for ParseArgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Error for ParseArgsError {}

fn err(msg: impl Into<String>) -> ParseArgsError {
    ParseArgsError(msg.into())
}

fn parse_metric(s: &str) -> Result<DistanceMetric, ParseArgsError> {
    match s.to_ascii_lowercase().as_str() {
        "hamming" | "hd" => Ok(DistanceMetric::Hamming),
        "manhattan" | "l1" => Ok(DistanceMetric::Manhattan),
        "euclidean" | "l2" | "euclidean2" => Ok(DistanceMetric::EuclideanSquared),
        other => Err(err(format!("unknown metric '{other}' (hamming|manhattan|euclidean)"))),
    }
}

fn parse_backend(s: &str) -> Result<BackendKind, ParseArgsError> {
    match s.to_ascii_lowercase().as_str() {
        "ideal" => Ok(BackendKind::Ideal),
        "noisy" => Ok(BackendKind::Noisy),
        "circuit" => Ok(BackendKind::Circuit),
        other => Err(err(format!("unknown backend '{other}' (ideal|noisy|circuit)"))),
    }
}

/// Parses one vector given as comma-separated symbol values.
fn parse_vector(s: &str) -> Result<Vec<u32>, ParseArgsError> {
    s.split(',')
        .map(|tok| {
            tok.trim()
                .parse::<u32>()
                .map_err(|_| err(format!("invalid symbol '{tok}' in vector '{s}'")))
        })
        .collect()
}

/// Parses semicolon-separated vectors.
fn parse_vectors(s: &str) -> Result<Vec<Vec<u32>>, ParseArgsError> {
    s.split(';').map(parse_vector).collect()
}

/// Parses a fault-plan spec: comma-separated `key=value` pairs over
/// `sa0|sa1|open|short` (per-cell rates in \[0,1\]), `short_r` (residual
/// resistance fraction), `retention_s` (seconds) and `cycles` (program
/// cycles). Unmentioned knobs keep their benign defaults, so `--faults
/// "sa1=0.05"` injects exactly one fault class.
fn parse_fault_plan(s: &str) -> Result<FaultPlan, ParseArgsError> {
    let mut plan = FaultPlan::none();
    let mut seen: Vec<&str> = Vec::new();
    for pair in s.split(',').map(str::trim).filter(|p| !p.is_empty()) {
        let (key, value) = pair
            .split_once('=')
            .ok_or_else(|| err(format!("fault spec '{pair}' is not key=value")))?;
        let key = key.trim();
        if seen.contains(&key) {
            return Err(err(format!(
                "duplicate fault knob '{key}' — each knob may appear at most once"
            )));
        }
        let v: f64 = value
            .trim()
            .parse()
            .map_err(|_| err(format!("invalid fault value '{value}' for '{key}'")))?;
        if !v.is_finite() || v < 0.0 {
            return Err(err(format!("fault value for '{key}' must be finite and >= 0")));
        }
        let rate = |v: f64| -> Result<f64, ParseArgsError> {
            if v <= 1.0 {
                Ok(v)
            } else {
                Err(err(format!("fault rate '{key}' must be within [0,1]")))
            }
        };
        match key {
            "sa0" => plan.sa0_rate = rate(v)?,
            "sa1" => plan.sa1_rate = rate(v)?,
            "open" => plan.open_rate = rate(v)?,
            "short" => plan.short_rate = rate(v)?,
            "short_r" => plan.short_residual_r = v,
            "retention_s" => plan.retention_seconds = v,
            "cycles" => plan.endurance_cycles = v,
            other => {
                return Err(err(format!(
                    "unknown fault knob '{other}' \
                     (sa0|sa1|open|short|short_r|retention_s|cycles)"
                )))
            }
        }
        seen.push(key);
    }
    Ok(plan)
}

/// Parses a quorum spec `READS/AGREE`, e.g. `2/2`. Structural only; the
/// replica-count cross-check happens once `--replicas` is known.
fn parse_quorum(s: &str) -> Result<(usize, usize), ParseArgsError> {
    let (reads, agree) = s
        .split_once('/')
        .ok_or_else(|| err(format!("quorum spec '{s}' is not READS/AGREE (e.g. 2/2)")))?;
    let reads: usize = reads
        .trim()
        .parse()
        .map_err(|_| err(format!("invalid quorum reads '{reads}' in '{s}'")))?;
    let agree: usize = agree
        .trim()
        .parse()
        .map_err(|_| err(format!("invalid quorum agreement '{agree}' in '{s}'")))?;
    if reads == 0 || agree == 0 {
        return Err(err(format!("quorum '{s}' must have reads and agreement >= 1")));
    }
    if agree > reads {
        return Err(err(format!("quorum agree ({agree}) exceeds reads ({reads})")));
    }
    Ok((reads, agree))
}

/// Parses a chaos schedule: comma-separated `key=value` pairs over
/// `kill` (`REPLICA@QUERY`, fire once mid-stream) and `scrub` (period in
/// queries). Unmentioned knobs stay off, mirroring the fault-spec grammar.
fn parse_chaos_plan(s: &str) -> Result<(Option<(usize, usize)>, usize), ParseArgsError> {
    let mut kill = None;
    let mut scrub_every = 0usize;
    let mut seen: Vec<&str> = Vec::new();
    for pair in s.split(',').map(str::trim).filter(|p| !p.is_empty()) {
        let (key, value) = pair
            .split_once('=')
            .ok_or_else(|| err(format!("chaos spec '{pair}' is not key=value")))?;
        let key = key.trim();
        if seen.contains(&key) {
            return Err(err(format!(
                "duplicate chaos knob '{key}' — each knob may appear at most once"
            )));
        }
        let value = value.trim();
        match key {
            "kill" => {
                let (replica, at) = value.split_once('@').ok_or_else(|| {
                    err(format!("chaos kill '{value}' is not REPLICA@QUERY (e.g. 1@8)"))
                })?;
                let replica: usize = replica
                    .trim()
                    .parse()
                    .map_err(|_| err(format!("invalid kill replica '{replica}' in '{value}'")))?;
                let at: usize = at
                    .trim()
                    .parse()
                    .map_err(|_| err(format!("invalid kill query index '{at}' in '{value}'")))?;
                kill = Some((replica, at));
            }
            "scrub" => {
                scrub_every =
                    value.parse().map_err(|_| err(format!("invalid scrub period '{value}'")))?;
            }
            other => return Err(err(format!("unknown chaos knob '{other}' (kill|scrub)"))),
        }
        seen.push(key);
    }
    Ok((kill, scrub_every))
}

/// Parses a slow-replica plan: comma-separated `REPLICA@FACTOR` entries
/// where `FACTOR` is a per-mille slowdown multiplier (`8000` = 8x). A
/// replica may appear at most once; factors below 1000 (1x) would model a
/// speed-up and are rejected. Range-checking against the replica count
/// happens at the command level, where `--replicas` is known.
fn parse_slow_replicas(s: &str) -> Result<Vec<(usize, u64)>, ParseArgsError> {
    let mut plan: Vec<(usize, u64)> = Vec::new();
    for entry in s.split(',').map(str::trim).filter(|p| !p.is_empty()) {
        let (replica, factor) = entry.split_once('@').ok_or_else(|| {
            err(format!("slow-replica spec '{entry}' is not REPLICA@FACTOR (e.g. 1@8000)"))
        })?;
        let replica: usize = replica
            .trim()
            .parse()
            .map_err(|_| err(format!("invalid slow replica '{replica}' in '{entry}'")))?;
        let factor: u64 = factor
            .trim()
            .parse()
            .map_err(|_| err(format!("invalid slowdown factor '{factor}' in '{entry}'")))?;
        if factor < 1000 {
            return Err(err(format!(
                "slowdown factor {factor} is below 1000 (1x) — slow replicas only slow down"
            )));
        }
        if plan.iter().any(|&(r, _)| r == replica) {
            return Err(err(format!(
                "duplicate slow replica {replica} — each replica may appear at most once"
            )));
        }
        plan.push((replica, factor));
    }
    if plan.is_empty() {
        return Err(err("slow-replica plan is empty (expected REPLICA@FACTOR, e.g. 1@8000)"));
    }
    Ok(plan)
}

/// Parses a hedge policy: comma-separated `key=value` pairs over
/// `quantile` (per-mille deadline quantile, 50..=999) and `budget`
/// (per-mille hedges per served batch, 1..=1000). Unmentioned knobs take
/// the serving-loop defaults (quantile 950, budget 250).
fn parse_hedge(s: &str) -> Result<(u64, u64), ParseArgsError> {
    let mut quantile = 950u64;
    let mut budget = 250u64;
    let mut seen: Vec<&str> = Vec::new();
    for pair in s.split(',').map(str::trim).filter(|p| !p.is_empty()) {
        let (key, value) = pair
            .split_once('=')
            .ok_or_else(|| err(format!("hedge spec '{pair}' is not key=value")))?;
        let key = key.trim();
        if seen.contains(&key) {
            return Err(err(format!(
                "duplicate hedge knob '{key}' — each knob may appear at most once"
            )));
        }
        let value = value.trim();
        match key {
            "quantile" => {
                quantile =
                    value.parse().map_err(|_| err(format!("invalid hedge quantile '{value}'")))?;
                if !(50..=999).contains(&quantile) {
                    return Err(err(format!(
                        "hedge quantile {quantile} outside 50..=999 per-mille"
                    )));
                }
            }
            "budget" => {
                budget =
                    value.parse().map_err(|_| err(format!("invalid hedge budget '{value}'")))?;
                if !(1..=1000).contains(&budget) {
                    return Err(err(format!("hedge budget {budget} outside 1..=1000 per-mille")));
                }
            }
            other => return Err(err(format!("unknown hedge knob '{other}' (quantile|budget)"))),
        }
        seen.push(key);
    }
    Ok((quantile, budget))
}

struct Flags<'a> {
    pairs: Vec<(&'a str, &'a str)>,
}

impl<'a> Flags<'a> {
    fn new(args: &'a [String]) -> Result<Self, ParseArgsError> {
        let mut pairs = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let flag = args[i].as_str();
            if !flag.starts_with("--") {
                return Err(err(format!("expected a --flag, found '{flag}'")));
            }
            let value = args
                .get(i + 1)
                .ok_or_else(|| err(format!("flag '{flag}' is missing its value")))?;
            pairs.push((&flag[2..], value.as_str()));
            i += 2;
        }
        Ok(Flags { pairs })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.pairs.iter().find(|(n, _)| *n == name).map(|(_, v)| *v)
    }

    fn require(&self, name: &str) -> Result<&str, ParseArgsError> {
        self.get(name).ok_or_else(|| err(format!("missing required flag --{name}")))
    }

    fn ensure_known(&self, known: &[&str]) -> Result<(), ParseArgsError> {
        for (name, _) in &self.pairs {
            if !known.contains(name) {
                return Err(err(format!("unknown flag --{name}")));
            }
        }
        Ok(())
    }
}

/// Parses a full argument list (excluding the program name).
///
/// # Errors
///
/// [`ParseArgsError`] with a user-facing message on any malformed input.
pub fn parse(args: &[String]) -> Result<Command, ParseArgsError> {
    let Some(sub) = args.first() else {
        return Ok(Command::Help);
    };
    let rest = &args[1..];
    match sub.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "info" => {
            if rest.is_empty() {
                Ok(Command::Info)
            } else {
                Err(err("'info' takes no arguments"))
            }
        }
        "verify" => {
            let flags = Flags::new(rest)?;
            flags.ensure_known(&["metric", "bits"])?;
            let metric = parse_metric(flags.require("metric")?)?;
            let bits = flags
                .get("bits")
                .map(|b| b.parse::<u32>().map_err(|_| err("invalid --bits")))
                .transpose()?
                .unwrap_or(2);
            Ok(Command::Verify { metric, bits })
        }
        "encode" => {
            let flags = Flags::new(rest)?;
            flags.ensure_known(&["metric", "bits"])?;
            let metric = parse_metric(flags.require("metric")?)?;
            let bits = flags
                .get("bits")
                .map(|b| b.parse::<u32>().map_err(|_| err("invalid --bits")))
                .transpose()?
                .unwrap_or(2);
            Ok(Command::Encode { metric, bits })
        }
        "search" => {
            let flags = Flags::new(rest)?;
            flags.ensure_known(&[
                "metric", "bits", "store", "query", "backend", "seed", "faults", "spares",
            ])?;
            let metric = parse_metric(flags.require("metric")?)?;
            let bits = flags
                .get("bits")
                .map(|b| b.parse::<u32>().map_err(|_| err("invalid --bits")))
                .transpose()?
                .unwrap_or(2);
            let stored = parse_vectors(flags.require("store")?)?;
            let query = parse_vector(flags.require("query")?)?;
            let backend =
                flags.get("backend").map(parse_backend).transpose()?.unwrap_or(BackendKind::Ideal);
            let seed = flags
                .get("seed")
                .map(|s| s.parse::<u64>().map_err(|_| err("invalid --seed")))
                .transpose()?
                .unwrap_or(0);
            let faults =
                flags.get("faults").map(parse_fault_plan).transpose()?.unwrap_or(FaultPlan::none());
            let spares = flags
                .get("spares")
                .map(|s| s.parse::<usize>().map_err(|_| err("invalid --spares")))
                .transpose()?
                .unwrap_or(0);
            Ok(Command::Search { metric, bits, stored, query, backend, seed, faults, spares })
        }
        "serve-sim" => {
            let flags = Flags::new(rest)?;
            flags.ensure_known(&[
                "metric",
                "bits",
                "store",
                "queries",
                "backend",
                "seed",
                "faults",
                "spares",
                "replicas",
                "quorum",
                "chaos",
                "open-loop",
                "closed-loop",
                "tenants",
                "target-batch",
                "deadline",
                "slow-replica",
                "hedge",
                "churn",
            ])?;
            let metric = parse_metric(flags.require("metric")?)?;
            let bits = flags
                .get("bits")
                .map(|b| b.parse::<u32>().map_err(|_| err("invalid --bits")))
                .transpose()?
                .unwrap_or(2);
            let stored = parse_vectors(flags.require("store")?)?;
            let queries = parse_vectors(flags.require("queries")?)?;
            let backend =
                flags.get("backend").map(parse_backend).transpose()?.unwrap_or(BackendKind::Noisy);
            let seed = flags
                .get("seed")
                .map(|s| s.parse::<u64>().map_err(|_| err("invalid --seed")))
                .transpose()?
                .unwrap_or(0);
            let faults =
                flags.get("faults").map(parse_fault_plan).transpose()?.unwrap_or(FaultPlan::none());
            let spares = flags
                .get("spares")
                .map(|s| s.parse::<usize>().map_err(|_| err("invalid --spares")))
                .transpose()?
                .unwrap_or(0);
            let replicas = flags
                .get("replicas")
                .map(|s| s.parse::<usize>().map_err(|_| err("invalid --replicas")))
                .transpose()?
                .unwrap_or(3);
            if replicas == 0 {
                return Err(err("--replicas must be >= 1"));
            }
            let (reads, agree) =
                flags.get("quorum").map(parse_quorum).transpose()?.unwrap_or((1, 1));
            if reads > replicas {
                return Err(err(format!(
                    "quorum reads ({reads}) exceeds replica count ({replicas})"
                )));
            }
            let (kill, scrub_every) =
                flags.get("chaos").map(parse_chaos_plan).transpose()?.unwrap_or((None, 0));
            if let Some((k, _)) = kill {
                if k >= replicas {
                    return Err(err(format!(
                        "chaos kill replica ({k}) is out of range for {replicas} replicas"
                    )));
                }
            }
            let open = flags
                .get("open-loop")
                .map(|s| s.parse::<u64>().map_err(|_| err("invalid --open-loop rate")))
                .transpose()?;
            let closed = flags
                .get("closed-loop")
                .map(|s| s.parse::<usize>().map_err(|_| err("invalid --closed-loop window")))
                .transpose()?;
            let load = match (open, closed) {
                (Some(_), Some(_)) => {
                    return Err(err("--open-loop and --closed-loop are mutually exclusive"));
                }
                (Some(0), None) => return Err(err("--open-loop rate must be >= 1")),
                (None, Some(0)) => return Err(err("--closed-loop window must be >= 1")),
                (Some(rate_milli), None) => Some(LoadMode::Open { rate_milli }),
                (None, Some(outstanding)) => Some(LoadMode::Closed { outstanding }),
                (None, None) => None,
            };
            let load_knob = |name: &str, default: u64| -> Result<u64, ParseArgsError> {
                let Some(v) = flags.get(name) else { return Ok(default) };
                if load.is_none() {
                    return Err(err(format!(
                        "--{name} requires a load mode (--open-loop or --closed-loop)"
                    )));
                }
                let v = v.parse::<u64>().map_err(|_| err(format!("invalid --{name}")))?;
                if v == 0 {
                    return Err(err(format!("--{name} must be >= 1")));
                }
                Ok(v)
            };
            let tenants = load_knob("tenants", 1)? as usize;
            let target_batch = load_knob("target-batch", 16)? as usize;
            let deadline = load_knob("deadline", 512)?;
            let require_load = |name: &str| -> Result<(), ParseArgsError> {
                if load.is_none() {
                    return Err(err(format!(
                        "--{name} requires a load mode (--open-loop or --closed-loop)"
                    )));
                }
                Ok(())
            };
            let slow_replicas = match flags.get("slow-replica") {
                Some(s) => {
                    require_load("slow-replica")?;
                    let plan = parse_slow_replicas(s)?;
                    if let Some(&(r, _)) = plan.iter().find(|&&(r, _)| r >= replicas) {
                        return Err(err(format!(
                            "slow replica ({r}) is out of range for {replicas} replicas"
                        )));
                    }
                    plan
                }
                None => Vec::new(),
            };
            let hedge = match flags.get("hedge") {
                Some(s) => {
                    require_load("hedge")?;
                    Some(parse_hedge(s)?)
                }
                None => None,
            };
            let churn = match flags.get("churn") {
                Some(s) => {
                    require_load("churn")?;
                    let v = s.parse::<u64>().map_err(|_| err("invalid --churn rate"))?;
                    if v == 0 || v > 1000 {
                        return Err(err("--churn rate must be in 1..=1000 per 1000 ticks"));
                    }
                    v
                }
                None => 0,
            };
            Ok(Command::ServeSim {
                metric,
                bits,
                stored,
                queries,
                backend,
                seed,
                faults,
                spares,
                replicas,
                reads,
                agree,
                kill,
                scrub_every,
                load,
                tenants,
                target_batch,
                deadline,
                slow_replicas,
                hedge,
                churn,
            })
        }
        "bench-kernels" => {
            let flags = Flags::new(rest)?;
            flags.ensure_known(&["metric", "bits", "rows", "dim", "batch", "backend", "seed"])?;
            let metric = flags
                .get("metric")
                .map(parse_metric)
                .transpose()?
                .unwrap_or(DistanceMetric::Hamming);
            let bits = flags
                .get("bits")
                .map(|b| b.parse::<u32>().map_err(|_| err("invalid --bits")))
                .transpose()?
                .unwrap_or(2);
            let parse_usize = |name: &str, default: usize| -> Result<usize, ParseArgsError> {
                flags
                    .get(name)
                    .map(|v| v.parse::<usize>().map_err(|_| err(format!("invalid --{name}"))))
                    .transpose()
                    .map(|o| o.unwrap_or(default))
            };
            let rows = parse_usize("rows", 1_000)?;
            let dim = parse_usize("dim", 64)?;
            let batch = parse_usize("batch", 64)?;
            if rows == 0 || dim == 0 || batch == 0 {
                return Err(err("--rows, --dim and --batch must be >= 1"));
            }
            let backend =
                flags.get("backend").map(parse_backend).transpose()?.unwrap_or(BackendKind::Ideal);
            let seed = flags
                .get("seed")
                .map(|s| s.parse::<u64>().map_err(|_| err("invalid --seed")))
                .transpose()?
                .unwrap_or(42);
            Ok(Command::BenchKernels { metric, bits, rows, dim, batch, backend, seed })
        }
        "montecarlo" | "mc" => {
            let flags = Flags::new(rest)?;
            flags.ensure_known(&["runs", "near", "far", "backend", "faults"])?;
            let parse_usize = |name: &str, default: usize| -> Result<usize, ParseArgsError> {
                flags
                    .get(name)
                    .map(|v| v.parse::<usize>().map_err(|_| err(format!("invalid --{name}"))))
                    .transpose()
                    .map(|o| o.unwrap_or(default))
            };
            let runs = parse_usize("runs", 100)?;
            let near = parse_usize("near", 5)?;
            let far = parse_usize("far", 6)?;
            let backend =
                flags.get("backend").map(parse_backend).transpose()?.unwrap_or(BackendKind::Noisy);
            if near >= far {
                return Err(err("--near must be smaller than --far"));
            }
            let faults =
                flags.get("faults").map(parse_fault_plan).transpose()?.unwrap_or(FaultPlan::none());
            Ok(Command::MonteCarlo { runs, near, far, backend, faults })
        }
        other => Err(err(format!("unknown subcommand '{other}' (try 'ferex help')"))),
    }
}

/// The usage text printed by `ferex help`.
pub const USAGE: &str = "\
ferex — reconfigurable ferroelectric compute-in-memory simulator

USAGE:
  ferex encode --metric <hamming|manhattan|euclidean> [--bits N]
  ferex search --metric <m> --store \"0,1,2;3,2,1\" --query \"0,1,2\"
               [--bits N] [--backend ideal|noisy|circuit] [--seed N]
               [--faults SPEC] [--spares N]
  ferex serve-sim --metric <m> --store \"0,1;3,2\" --queries \"0,1;3,2\"
               [--bits N] [--backend noisy|circuit] [--seed N]
               [--replicas N] [--quorum R/A] [--faults SPEC] [--spares N]
               [--chaos \"kill=REPLICA@QUERY,scrub=PERIOD\"]
               [--open-loop RATE | --closed-loop W] [--tenants N]
               [--target-batch N] [--deadline TICKS] [--churn RATE]
  ferex verify --metric <m> [--bits N]
  ferex montecarlo [--runs N] [--near D] [--far D]
               [--backend noisy|circuit] [--faults SPEC]
  ferex bench-kernels [--metric <m>] [--bits N] [--rows N] [--dim N]
               [--batch N] [--backend ideal|noisy|circuit] [--seed N]
  ferex info
  ferex help

FAULT SPEC (stochastic backends; unmentioned knobs stay benign):
  comma-separated key=value over sa0|sa1|open|short (per-cell rates),
  short_r (residual resistance fraction), retention_s (seconds),
  cycles (program/erase cycles), e.g. \"sa1=0.02,open=0.01,cycles=1e7\"
  Each knob may appear at most once; rates must lie in [0,1].

SELF-HEALING (--spares N, stochastic backends):
  reserves N spare rows, write-verifies every cell after programming,
  re-pulses stragglers with bounded retries, and remaps rows that fail
  verify onto spares; prints the repair report next to the result.

REPLICATED SERVING (serve-sim):
  builds N replicas (replica 0 carries --faults, the rest stay clean),
  serves the --queries stream through quorum reads (--quorum R/A needs
  A of R sampled replicas to agree; disagreement escalates a targeted
  scrub and unmet quorum falls back to the digital oracle), and prints
  one line per query plus the supervisor's counters. --chaos schedules
  a mid-stream replica kill (kill=REPLICA@QUERY) and periodic
  maintenance scrubs (scrub=PERIOD).

SERVING LOOP (serve-sim with --open-loop RATE or --closed-loop W):
  instead of serving the stream sequentially, drives the deterministic
  async serving loop on a virtual tick clock: --open-loop submits the
  --queries list at an expected RATE requests per 1000 ticks (seeded,
  replayable), --closed-loop keeps W requests in flight. Requests spread
  round-robin across --tenants (deficit-round-robin fairness), batches
  close at --target-batch or when the oldest deadline's slack runs out,
  and requests that cannot meet --deadline ticks are shed, never served
  late. Under a load mode the chaos kill fires at a virtual TICK instead
  of a query index, and scrub=PERIOD runs every PERIOD ticks. Prints one
  line per completion plus exact p50/p99/p999 latency and goodput.
  --slow-replica R@FACTOR arms seeded per-replica latency models with
  replica R slowed FACTOR per-mille (8000 = 8x; comma-separate for more,
  each replica at most once). --hedge quantile=P,budget=B issues a
  duplicate read when the slow read slot exceeds the P per-mille latency
  quantile, spending at most B per-mille hedges per batch; hedged answers
  stay bit-identical to the unhedged path. Both need a load mode, and a
  per-replica latency/hedge summary joins the printout.
  --churn RATE applies seeded online mutations (in-place updates of
  stored ids) at an expected RATE per 1000 ticks through the serving
  loop while it keeps serving; mutated replicas stay in lockstep and
  the summary reports the mutation count and final wear imbalance.

KERNEL BENCH (bench-kernels):
  fills a seeded random array, serves one query batch through the
  structure-of-arrays batch kernels and the scalar per-query loop,
  checks them bit-identical, and prints both timings with the kernel
  the batch dispatched to. Circuit re-solves the crossbar per query,
  so keep --rows small on that backend.

EXAMPLES:
  ferex encode --metric hamming
  ferex search --metric manhattan --store \"0,0;3,3\" --query \"1,0\"
  ferex search --metric hd --store \"0,0;3,3\" --query \"1,0\" \\
               --backend noisy --faults \"sa1=0.05,short=0.01\"
  ferex montecarlo --runs 200 --backend circuit --faults \"open=0.02\"
  ferex serve-sim --metric hd --store \"0,0;3,3\" --queries \"0,0;3,3;0,0\" \\
               --replicas 3 --quorum 2/2 --faults \"sa0=0.1\" \\
               --chaos \"kill=1@1,scrub=2\"
  ferex serve-sim --metric hd --store \"0,0;3,3\" --queries \"0,0;3,3;0,0\" \\
               --open-loop 64 --tenants 2 --target-batch 4 --deadline 512
  ferex serve-sim --metric hd --store \"0,0;3,3\" --queries \"0,0;3,3;0,0\" \\
               --open-loop 64 --replicas 3 --quorum 2/1 \\
               --slow-replica 1@8000 --hedge quantile=950,budget=500
";

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_encode() {
        let cmd = parse(&argv("encode --metric hamming --bits 2")).unwrap();
        assert_eq!(cmd, Command::Encode { metric: DistanceMetric::Hamming, bits: 2 });
        // Default bits.
        let cmd = parse(&argv("encode --metric l1")).unwrap();
        assert_eq!(cmd, Command::Encode { metric: DistanceMetric::Manhattan, bits: 2 });
    }

    #[test]
    fn parses_search_with_vectors() {
        let cmd = parse(&argv(
            "search --metric euclidean --store 0,1;2,3 --query 1,1 --backend noisy --seed 7",
        ))
        .unwrap();
        match cmd {
            Command::Search { metric, stored, query, backend, seed, bits, faults, spares } => {
                assert_eq!(metric, DistanceMetric::EuclideanSquared);
                assert_eq!(stored, vec![vec![0, 1], vec![2, 3]]);
                assert_eq!(query, vec![1, 1]);
                assert_eq!(backend, BackendKind::Noisy);
                assert_eq!(seed, 7);
                assert_eq!(bits, 2);
                assert!(faults.is_benign());
                assert_eq!(spares, 0, "self-healing is opt-in");
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn parses_spares_flag() {
        let cmd =
            parse(&argv("search --metric hd --store 0,1 --query 0,1 --backend noisy --spares 4"))
                .unwrap();
        let Command::Search { spares, .. } = cmd else { panic!("wrong command") };
        assert_eq!(spares, 4);
        assert!(parse(&argv("search --metric hd --store 0,1 --query 0,1 --spares x")).is_err());
    }

    #[test]
    fn parses_montecarlo_defaults() {
        let cmd = parse(&argv("montecarlo")).unwrap();
        assert_eq!(
            cmd,
            Command::MonteCarlo {
                runs: 100,
                near: 5,
                far: 6,
                backend: BackendKind::Noisy,
                faults: FaultPlan::none()
            }
        );
        let cmd = parse(&argv("mc --runs 10 --near 3 --far 9 --backend circuit")).unwrap();
        assert_eq!(
            cmd,
            Command::MonteCarlo {
                runs: 10,
                near: 3,
                far: 9,
                backend: BackendKind::Circuit,
                faults: FaultPlan::none()
            }
        );
    }

    #[test]
    fn parses_bench_kernels() {
        let cmd = parse(&argv("bench-kernels")).unwrap();
        assert_eq!(
            cmd,
            Command::BenchKernels {
                metric: DistanceMetric::Hamming,
                bits: 2,
                rows: 1_000,
                dim: 64,
                batch: 64,
                backend: BackendKind::Ideal,
                seed: 42,
            }
        );
        let cmd = parse(&argv(
            "bench-kernels --metric l1 --rows 200 --dim 16 --batch 8 --backend noisy --seed 7",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::BenchKernels {
                metric: DistanceMetric::Manhattan,
                bits: 2,
                rows: 200,
                dim: 16,
                batch: 8,
                backend: BackendKind::Noisy,
                seed: 7,
            }
        );
        assert!(parse(&argv("bench-kernels --rows 0")).is_err());
        assert!(parse(&argv("bench-kernels --bogus 1")).is_err());
    }

    #[test]
    fn parses_fault_specs() {
        let cmd = parse(&argv(
            "search --metric hd --store 0,1 --query 0,1 --backend noisy \
             --faults sa0=0.01,sa1=0.02,open=0.005,short=0.03,short_r=0.2,retention_s=1e7,cycles=1e6",
        ))
        .unwrap();
        let Command::Search { faults, .. } = cmd else { panic!("wrong command") };
        assert_eq!(faults.sa0_rate, 0.01);
        assert_eq!(faults.sa1_rate, 0.02);
        assert_eq!(faults.open_rate, 0.005);
        assert_eq!(faults.short_rate, 0.03);
        assert_eq!(faults.short_residual_r, 0.2);
        assert_eq!(faults.retention_seconds, 1e7);
        assert_eq!(faults.endurance_cycles, 1e6);
        // Partial specs leave the rest benign.
        let cmd = parse(&argv("mc --faults sa1=0.05")).unwrap();
        let Command::MonteCarlo { faults, .. } = cmd else { panic!("wrong command") };
        assert_eq!(faults.sa1_rate, 0.05);
        assert_eq!(faults.sa0_rate, 0.0);
        assert!(faults.has_hard_faults());
    }

    #[test]
    fn rejects_malformed_fault_specs() {
        for spec in [
            "sa1",
            "sa1=x",
            "sa1=1.5",
            "sa1=-0.1",
            "bogus=0.1",
            "sa1=inf",
            "sa1=0.1,sa1=0.2",
            "short_r=0.5,short_r=0.5",
        ] {
            let line = format!("mc --faults {spec}");
            assert!(parse(&argv(&line)).is_err(), "spec '{spec}' should be rejected");
        }
        // A duplicate knob names itself instead of silently overwriting.
        let e = parse(&argv("mc --faults sa1=0.1,sa1=0.2")).unwrap_err();
        assert!(e.to_string().contains("duplicate fault knob 'sa1'"), "got: {e}");
    }

    #[test]
    fn help_and_info() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&argv("help")).unwrap(), Command::Help);
        assert_eq!(parse(&argv("info")).unwrap(), Command::Info);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse(&argv("bogus")).is_err());
        assert!(parse(&argv("encode")).is_err()); // missing --metric
        assert!(parse(&argv("encode --metric fancy")).is_err());
        assert!(parse(&argv("search --metric hd --store 0,x --query 0")).is_err());
        assert!(parse(&argv("montecarlo --near 6 --far 6")).is_err());
        assert!(parse(&argv("encode --metric")).is_err()); // dangling flag
        assert!(parse(&argv("encode --metric hd --bogus 1")).is_err());
        assert!(parse(&argv("info extra")).is_err());
    }

    #[test]
    fn usage_mentions_every_subcommand() {
        for sub in [
            "encode",
            "search",
            "serve-sim",
            "verify",
            "montecarlo",
            "bench-kernels",
            "info",
            "help",
        ] {
            assert!(USAGE.contains(sub), "usage missing {sub}");
        }
    }

    #[test]
    fn parses_serve_sim_with_quorum_and_chaos() {
        let cmd = parse(&argv(
            "serve-sim --metric hd --store 0,0;3,3 --queries 0,0;3,3 --replicas 3 \
             --quorum 2/2 --faults sa0=0.1 --chaos kill=1@1,scrub=2 --seed 7 --spares 2",
        ))
        .unwrap();
        match cmd {
            Command::ServeSim {
                metric,
                stored,
                queries,
                backend,
                seed,
                faults,
                spares,
                replicas,
                reads,
                agree,
                kill,
                scrub_every,
                ..
            } => {
                assert_eq!(metric, DistanceMetric::Hamming);
                assert_eq!(stored, vec![vec![0, 0], vec![3, 3]]);
                assert_eq!(queries.len(), 2);
                assert_eq!(backend, BackendKind::Noisy, "stochastic default");
                assert_eq!(seed, 7);
                assert_eq!(faults.sa0_rate, 0.1);
                assert_eq!(spares, 2);
                assert_eq!((replicas, reads, agree), (3, 2, 2));
                assert_eq!(kill, Some((1, 1)));
                assert_eq!(scrub_every, 2);
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn serve_sim_defaults_are_single_read_no_chaos() {
        let cmd = parse(&argv("serve-sim --metric l1 --store 0,1 --queries 0,1")).unwrap();
        let Command::ServeSim { replicas, reads, agree, kill, scrub_every, .. } = cmd else {
            panic!("wrong command")
        };
        assert_eq!((replicas, reads, agree), (3, 1, 1));
        assert_eq!(kill, None);
        assert_eq!(scrub_every, 0);
    }

    #[test]
    fn parses_serve_sim_load_modes() {
        let cmd = parse(&argv(
            "serve-sim --metric hd --store 0,0;3,3 --queries 0,0;3,3 \
             --open-loop 64 --tenants 4 --target-batch 8 --deadline 256",
        ))
        .unwrap();
        let Command::ServeSim { load, tenants, target_batch, deadline, .. } = cmd else {
            panic!("wrong command")
        };
        assert_eq!(load, Some(LoadMode::Open { rate_milli: 64 }));
        assert_eq!((tenants, target_batch, deadline), (4, 8, 256));
        let cmd =
            parse(&argv("serve-sim --metric hd --store 0,0;3,3 --queries 0,0;3,3 --closed-loop 2"))
                .unwrap();
        let Command::ServeSim { load, tenants, target_batch, deadline, .. } = cmd else {
            panic!("wrong command")
        };
        assert_eq!(load, Some(LoadMode::Closed { outstanding: 2 }));
        assert_eq!((tenants, target_batch, deadline), (1, 16, 512), "load-mode defaults");
        // No load mode: the sequential path, with inert loop knobs.
        let cmd = parse(&argv("serve-sim --metric hd --store 0,0 --queries 0,0")).unwrap();
        let Command::ServeSim { load, .. } = cmd else { panic!("wrong command") };
        assert_eq!(load, None);
    }

    #[test]
    fn serve_sim_rejects_conflicting_or_dangling_load_flags() {
        let base = "serve-sim --metric hd --store 0,0 --queries 0,0";
        let e = parse(&argv(&format!("{base} --open-loop 64 --closed-loop 2"))).unwrap_err();
        assert!(e.to_string().contains("mutually exclusive"), "got: {e}");
        // Loop knobs without a load mode name the missing flag.
        for knob in ["tenants 2", "target-batch 8", "deadline 100"] {
            let e = parse(&argv(&format!("{base} --{knob}"))).unwrap_err();
            assert!(e.to_string().contains("requires a load mode"), "--{knob}: {e}");
        }
        // Degenerate values are rejected.
        assert!(parse(&argv(&format!("{base} --open-loop 0"))).is_err());
        assert!(parse(&argv(&format!("{base} --closed-loop 0"))).is_err());
        assert!(parse(&argv(&format!("{base} --open-loop x"))).is_err());
        assert!(parse(&argv(&format!("{base} --open-loop 64 --tenants 0"))).is_err());
        assert!(parse(&argv(&format!("{base} --open-loop 64 --deadline 0"))).is_err());
    }

    #[test]
    fn serve_sim_rejects_invalid_quorum_geometry() {
        let base = "serve-sim --metric hd --store 0,1 --queries 0,1";
        // agree > reads is structurally impossible.
        let e = parse(&argv(&format!("{base} --quorum 2/3"))).unwrap_err();
        assert!(e.to_string().contains("quorum agree (3) exceeds reads (2)"), "got: {e}");
        // reads > replicas cannot be satisfied.
        let e = parse(&argv(&format!("{base} --replicas 2 --quorum 3/1"))).unwrap_err();
        assert!(e.to_string().contains("quorum reads (3) exceeds replica count (2)"), "got: {e}");
        // Degenerate quorums and replica counts name themselves.
        assert!(parse(&argv(&format!("{base} --quorum 0/0"))).is_err());
        assert!(parse(&argv(&format!("{base} --quorum 2"))).is_err());
        assert!(parse(&argv(&format!("{base} --quorum x/1"))).is_err());
        assert!(parse(&argv(&format!("{base} --replicas 0"))).is_err());
    }

    #[test]
    fn serve_sim_rejects_malformed_chaos_specs() {
        let base = "serve-sim --metric hd --store 0,1 --queries 0,1 --replicas 2";
        for spec in ["kill", "kill=1", "kill=x@1", "kill=1@x", "bogus=1", "scrub=x"] {
            let line = format!("{base} --chaos {spec}");
            assert!(parse(&argv(&line)).is_err(), "spec '{spec}' should be rejected");
        }
        // Duplicate knobs name themselves, like fault specs.
        let e = parse(&argv(&format!("{base} --chaos scrub=2,scrub=3"))).unwrap_err();
        assert!(e.to_string().contains("duplicate chaos knob 'scrub'"), "got: {e}");
        // A kill aimed past the replica pool is a spec error, not a no-op.
        let e = parse(&argv(&format!("{base} --chaos kill=2@1"))).unwrap_err();
        assert!(e.to_string().contains("out of range for 2 replicas"), "got: {e}");
    }

    #[test]
    fn parses_serve_sim_slow_replica_and_hedge() {
        let cmd = parse(&argv(
            "serve-sim --metric hd --store 0,0;3,3 --queries 0,0;3,3 --open-loop 64 \
             --replicas 3 --quorum 2/1 --slow-replica 1@8000,2@2000 \
             --hedge quantile=900,budget=500",
        ))
        .unwrap();
        let Command::ServeSim { slow_replicas, hedge, .. } = cmd else { panic!("wrong command") };
        assert_eq!(slow_replicas, vec![(1, 8000), (2, 2000)]);
        assert_eq!(hedge, Some((900, 500)));
        // Unmentioned hedge knobs take the serving-loop defaults.
        let cmd = parse(&argv(
            "serve-sim --metric hd --store 0,0 --queries 0,0 --open-loop 64 --hedge budget=100",
        ))
        .unwrap();
        let Command::ServeSim { slow_replicas, hedge, .. } = cmd else { panic!("wrong command") };
        assert!(slow_replicas.is_empty());
        assert_eq!(hedge, Some((950, 100)));
    }

    #[test]
    fn parses_serve_sim_churn() {
        let cmd = parse(&argv(
            "serve-sim --metric hd --store 0,0;3,3 --queries 0,0;3,3 --open-loop 64 --churn 50",
        ))
        .unwrap();
        let Command::ServeSim { churn, .. } = cmd else { panic!("wrong command") };
        assert_eq!(churn, 50);
        // Absent flag leaves churn off.
        let cmd =
            parse(&argv("serve-sim --metric hd --store 0,0 --queries 0,0 --open-loop 64")).unwrap();
        let Command::ServeSim { churn, .. } = cmd else { panic!("wrong command") };
        assert_eq!(churn, 0);
    }

    #[test]
    fn serve_sim_rejects_bad_churn() {
        let base = "serve-sim --metric hd --store 0,1 --queries 0,1";
        // Churn needs a load mode's tick clock.
        let e = parse(&argv(&format!("{base} --churn 50"))).unwrap_err();
        assert!(e.to_string().contains("requires a load mode"), "got: {e}");
        // Degenerate and out-of-range rates name themselves.
        for rate in ["0", "1001", "x"] {
            let line = format!("{base} --open-loop 64 --churn {rate}");
            assert!(parse(&argv(&line)).is_err(), "rate '{rate}' should be rejected");
        }
    }

    #[test]
    fn serve_sim_rejects_malformed_slow_replica_and_hedge_specs() {
        let base = "serve-sim --metric hd --store 0,1 --queries 0,1 --open-loop 64 --replicas 3";
        // Out-of-range replica index.
        let e = parse(&argv(&format!("{base} --slow-replica 3@8000"))).unwrap_err();
        assert!(e.to_string().contains("out of range for 3 replicas"), "got: {e}");
        // A factor below 1x is a speed-up, not a slowdown.
        let e = parse(&argv(&format!("{base} --slow-replica 1@999"))).unwrap_err();
        assert!(e.to_string().contains("below 1000"), "got: {e}");
        // Duplicate replicas name themselves.
        let e = parse(&argv(&format!("{base} --slow-replica 1@2000,1@4000"))).unwrap_err();
        assert!(e.to_string().contains("duplicate slow replica 1"), "got: {e}");
        // Malformed entries are spec errors.
        for spec in ["1", "1@", "@8000", "x@8000", "1@x", ""] {
            let line = format!("{base} --slow-replica {spec}");
            assert!(parse(&argv(&line)).is_err(), "spec '{spec}' should be rejected");
        }
        // Hedge quantile outside [50, 999] per-mille, budget outside [1, 1000].
        for spec in ["quantile=49", "quantile=1000", "budget=0", "budget=1001"] {
            let line = format!("{base} --hedge {spec}");
            assert!(parse(&argv(&line)).is_err(), "spec '{spec}' should be rejected");
        }
        let e = parse(&argv(&format!("{base} --hedge quantile=900,quantile=950"))).unwrap_err();
        assert!(e.to_string().contains("duplicate hedge knob 'quantile'"), "got: {e}");
        assert!(parse(&argv(&format!("{base} --hedge bogus=1"))).is_err());
        // Both flags require a load mode.
        let seq = "serve-sim --metric hd --store 0,1 --queries 0,1 --replicas 3";
        for flag in ["--slow-replica 1@8000", "--hedge quantile=900"] {
            let e = parse(&argv(&format!("{seq} {flag}"))).unwrap_err();
            assert!(e.to_string().contains("requires a load mode"), "{flag}: {e}");
        }
    }
}
