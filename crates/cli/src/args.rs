//! Minimal dependency-free argument parsing for the `ferex` binary.

use ferex_core::DistanceMetric;
use std::error::Error;
use std::fmt;

/// Which array backend a command simulates on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// Exact functional model.
    Ideal,
    /// Statistical variation model.
    Noisy,
    /// Device-level model.
    Circuit,
}

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Run the encoding pipeline and print the result.
    Encode {
        /// Target metric.
        metric: DistanceMetric,
        /// Symbol bit width.
        bits: u32,
    },
    /// One associative search.
    Search {
        /// Target metric.
        metric: DistanceMetric,
        /// Symbol bit width.
        bits: u32,
        /// Stored vectors.
        stored: Vec<Vec<u32>>,
        /// Query vector.
        query: Vec<u32>,
        /// Simulation backend.
        backend: BackendKind,
        /// RNG seed for stochastic backends.
        seed: u64,
    },
    /// Fig. 7-style Monte-Carlo campaign.
    MonteCarlo {
        /// Number of runs.
        runs: usize,
        /// Distance of the true nearest vector.
        near: usize,
        /// Distance of the competitors.
        far: usize,
        /// Simulation backend.
        backend: BackendKind,
    },
    /// Co-simulate an encoding on the device-level array.
    Verify {
        /// Target metric.
        metric: DistanceMetric,
        /// Symbol bit width.
        bits: u32,
    },
    /// Print the technology card.
    Info,
    /// Print usage.
    Help,
}

/// Argument-parsing failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseArgsError(pub String);

impl fmt::Display for ParseArgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Error for ParseArgsError {}

fn err(msg: impl Into<String>) -> ParseArgsError {
    ParseArgsError(msg.into())
}

fn parse_metric(s: &str) -> Result<DistanceMetric, ParseArgsError> {
    match s.to_ascii_lowercase().as_str() {
        "hamming" | "hd" => Ok(DistanceMetric::Hamming),
        "manhattan" | "l1" => Ok(DistanceMetric::Manhattan),
        "euclidean" | "l2" | "euclidean2" => Ok(DistanceMetric::EuclideanSquared),
        other => Err(err(format!("unknown metric '{other}' (hamming|manhattan|euclidean)"))),
    }
}

fn parse_backend(s: &str) -> Result<BackendKind, ParseArgsError> {
    match s.to_ascii_lowercase().as_str() {
        "ideal" => Ok(BackendKind::Ideal),
        "noisy" => Ok(BackendKind::Noisy),
        "circuit" => Ok(BackendKind::Circuit),
        other => Err(err(format!("unknown backend '{other}' (ideal|noisy|circuit)"))),
    }
}

/// Parses one vector given as comma-separated symbol values.
fn parse_vector(s: &str) -> Result<Vec<u32>, ParseArgsError> {
    s.split(',')
        .map(|tok| {
            tok.trim()
                .parse::<u32>()
                .map_err(|_| err(format!("invalid symbol '{tok}' in vector '{s}'")))
        })
        .collect()
}

/// Parses semicolon-separated vectors.
fn parse_vectors(s: &str) -> Result<Vec<Vec<u32>>, ParseArgsError> {
    s.split(';').map(parse_vector).collect()
}

struct Flags<'a> {
    pairs: Vec<(&'a str, &'a str)>,
}

impl<'a> Flags<'a> {
    fn new(args: &'a [String]) -> Result<Self, ParseArgsError> {
        let mut pairs = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let flag = args[i].as_str();
            if !flag.starts_with("--") {
                return Err(err(format!("expected a --flag, found '{flag}'")));
            }
            let value = args
                .get(i + 1)
                .ok_or_else(|| err(format!("flag '{flag}' is missing its value")))?;
            pairs.push((&flag[2..], value.as_str()));
            i += 2;
        }
        Ok(Flags { pairs })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.pairs.iter().find(|(n, _)| *n == name).map(|(_, v)| *v)
    }

    fn require(&self, name: &str) -> Result<&str, ParseArgsError> {
        self.get(name).ok_or_else(|| err(format!("missing required flag --{name}")))
    }

    fn ensure_known(&self, known: &[&str]) -> Result<(), ParseArgsError> {
        for (name, _) in &self.pairs {
            if !known.contains(name) {
                return Err(err(format!("unknown flag --{name}")));
            }
        }
        Ok(())
    }
}

/// Parses a full argument list (excluding the program name).
///
/// # Errors
///
/// [`ParseArgsError`] with a user-facing message on any malformed input.
pub fn parse(args: &[String]) -> Result<Command, ParseArgsError> {
    let Some(sub) = args.first() else {
        return Ok(Command::Help);
    };
    let rest = &args[1..];
    match sub.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "info" => {
            if rest.is_empty() {
                Ok(Command::Info)
            } else {
                Err(err("'info' takes no arguments"))
            }
        }
        "verify" => {
            let flags = Flags::new(rest)?;
            flags.ensure_known(&["metric", "bits"])?;
            let metric = parse_metric(flags.require("metric")?)?;
            let bits = flags
                .get("bits")
                .map(|b| b.parse::<u32>().map_err(|_| err("invalid --bits")))
                .transpose()?
                .unwrap_or(2);
            Ok(Command::Verify { metric, bits })
        }
        "encode" => {
            let flags = Flags::new(rest)?;
            flags.ensure_known(&["metric", "bits"])?;
            let metric = parse_metric(flags.require("metric")?)?;
            let bits = flags
                .get("bits")
                .map(|b| b.parse::<u32>().map_err(|_| err("invalid --bits")))
                .transpose()?
                .unwrap_or(2);
            Ok(Command::Encode { metric, bits })
        }
        "search" => {
            let flags = Flags::new(rest)?;
            flags.ensure_known(&["metric", "bits", "store", "query", "backend", "seed"])?;
            let metric = parse_metric(flags.require("metric")?)?;
            let bits = flags
                .get("bits")
                .map(|b| b.parse::<u32>().map_err(|_| err("invalid --bits")))
                .transpose()?
                .unwrap_or(2);
            let stored = parse_vectors(flags.require("store")?)?;
            let query = parse_vector(flags.require("query")?)?;
            let backend =
                flags.get("backend").map(parse_backend).transpose()?.unwrap_or(BackendKind::Ideal);
            let seed = flags
                .get("seed")
                .map(|s| s.parse::<u64>().map_err(|_| err("invalid --seed")))
                .transpose()?
                .unwrap_or(0);
            Ok(Command::Search { metric, bits, stored, query, backend, seed })
        }
        "montecarlo" | "mc" => {
            let flags = Flags::new(rest)?;
            flags.ensure_known(&["runs", "near", "far", "backend"])?;
            let parse_usize = |name: &str, default: usize| -> Result<usize, ParseArgsError> {
                flags
                    .get(name)
                    .map(|v| v.parse::<usize>().map_err(|_| err(format!("invalid --{name}"))))
                    .transpose()
                    .map(|o| o.unwrap_or(default))
            };
            let runs = parse_usize("runs", 100)?;
            let near = parse_usize("near", 5)?;
            let far = parse_usize("far", 6)?;
            let backend =
                flags.get("backend").map(parse_backend).transpose()?.unwrap_or(BackendKind::Noisy);
            if near >= far {
                return Err(err("--near must be smaller than --far"));
            }
            Ok(Command::MonteCarlo { runs, near, far, backend })
        }
        other => Err(err(format!("unknown subcommand '{other}' (try 'ferex help')"))),
    }
}

/// The usage text printed by `ferex help`.
pub const USAGE: &str = "\
ferex — reconfigurable ferroelectric compute-in-memory simulator

USAGE:
  ferex encode --metric <hamming|manhattan|euclidean> [--bits N]
  ferex search --metric <m> --store \"0,1,2;3,2,1\" --query \"0,1,2\"
               [--bits N] [--backend ideal|noisy|circuit] [--seed N]
  ferex verify --metric <m> [--bits N]
  ferex montecarlo [--runs N] [--near D] [--far D]
               [--backend noisy|circuit]
  ferex info
  ferex help

EXAMPLES:
  ferex encode --metric hamming
  ferex search --metric manhattan --store \"0,0;3,3\" --query \"1,0\"
  ferex montecarlo --runs 200 --backend circuit
";

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_encode() {
        let cmd = parse(&argv("encode --metric hamming --bits 2")).unwrap();
        assert_eq!(cmd, Command::Encode { metric: DistanceMetric::Hamming, bits: 2 });
        // Default bits.
        let cmd = parse(&argv("encode --metric l1")).unwrap();
        assert_eq!(cmd, Command::Encode { metric: DistanceMetric::Manhattan, bits: 2 });
    }

    #[test]
    fn parses_search_with_vectors() {
        let cmd = parse(&argv(
            "search --metric euclidean --store 0,1;2,3 --query 1,1 --backend noisy --seed 7",
        ))
        .unwrap();
        match cmd {
            Command::Search { metric, stored, query, backend, seed, bits } => {
                assert_eq!(metric, DistanceMetric::EuclideanSquared);
                assert_eq!(stored, vec![vec![0, 1], vec![2, 3]]);
                assert_eq!(query, vec![1, 1]);
                assert_eq!(backend, BackendKind::Noisy);
                assert_eq!(seed, 7);
                assert_eq!(bits, 2);
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn parses_montecarlo_defaults() {
        let cmd = parse(&argv("montecarlo")).unwrap();
        assert_eq!(
            cmd,
            Command::MonteCarlo { runs: 100, near: 5, far: 6, backend: BackendKind::Noisy }
        );
        let cmd = parse(&argv("mc --runs 10 --near 3 --far 9 --backend circuit")).unwrap();
        assert_eq!(
            cmd,
            Command::MonteCarlo { runs: 10, near: 3, far: 9, backend: BackendKind::Circuit }
        );
    }

    #[test]
    fn help_and_info() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&argv("help")).unwrap(), Command::Help);
        assert_eq!(parse(&argv("info")).unwrap(), Command::Info);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse(&argv("bogus")).is_err());
        assert!(parse(&argv("encode")).is_err()); // missing --metric
        assert!(parse(&argv("encode --metric fancy")).is_err());
        assert!(parse(&argv("search --metric hd --store 0,x --query 0")).is_err());
        assert!(parse(&argv("montecarlo --near 6 --far 6")).is_err());
        assert!(parse(&argv("encode --metric")).is_err()); // dangling flag
        assert!(parse(&argv("encode --metric hd --bogus 1")).is_err());
        assert!(parse(&argv("info extra")).is_err());
    }

    #[test]
    fn usage_mentions_every_subcommand() {
        for sub in ["encode", "search", "verify", "montecarlo", "info", "help"] {
            assert!(USAGE.contains(sub), "usage missing {sub}");
        }
    }
}
