//! Exact (software) k-nearest-neighbor classification — the reference the
//! FeReX-backed KNN is validated against, and the baseline whose worst
//! cases drive the Fig. 7 Monte-Carlo study.

use ferex_core::DistanceMetric;

/// A labeled reference point in symbol space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Neighbor {
    /// Quantized feature vector.
    pub symbols: Vec<u32>,
    /// Class label.
    pub label: usize,
}

/// Brute-force KNN classifier over quantized vectors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExactKnn {
    metric: DistanceMetric,
    k: usize,
    neighbors: Vec<Neighbor>,
}

impl ExactKnn {
    /// Creates a classifier with the given metric and `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(metric: DistanceMetric, k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        ExactKnn { metric, k, neighbors: Vec::new() }
    }

    /// The configured metric.
    pub fn metric(&self) -> DistanceMetric {
        self.metric
    }

    /// The configured `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of stored reference points.
    pub fn len(&self) -> usize {
        self.neighbors.len()
    }

    /// `true` if no reference points are stored.
    pub fn is_empty(&self) -> bool {
        self.neighbors.is_empty()
    }

    /// Adds a reference point.
    pub fn insert(&mut self, symbols: Vec<u32>, label: usize) {
        self.neighbors.push(Neighbor { symbols, label });
    }

    /// The indices of the `k` nearest reference points (distance ties break
    /// toward lower index, matching the hardware LTA's deterministic tree).
    ///
    /// # Panics
    ///
    /// Panics if fewer than `k` points are stored.
    pub fn nearest_indices(&self, query: &[u32]) -> Vec<usize> {
        assert!(self.neighbors.len() >= self.k, "need at least k reference points");
        let mut scored: Vec<(u64, usize)> = self
            .neighbors
            .iter()
            .enumerate()
            .map(|(i, n)| (self.metric.vector_distance(query, &n.symbols), i))
            .collect();
        scored.sort_by_key(|&(d, i)| (d, i));
        scored.into_iter().take(self.k).map(|(_, i)| i).collect()
    }

    /// Classifies by inverse-distance-weighted vote among the `k` nearest:
    /// each neighbor contributes `1/(1+d)` to its class. Exact matches
    /// dominate; far neighbors barely count. Useful when `k` is large
    /// relative to the class sizes.
    pub fn classify_weighted(&self, query: &[u32]) -> usize {
        let nearest = self.nearest_indices(query);
        let mut weights: Vec<(usize, f64)> = Vec::new();
        for &i in &nearest {
            let n = &self.neighbors[i];
            let d = self.metric.vector_distance(query, &n.symbols) as f64;
            let w = 1.0 / (1.0 + d);
            match weights.iter_mut().find(|(l, _)| *l == n.label) {
                Some((_, total)) => *total += w,
                None => weights.push((n.label, w)),
            }
        }
        weights.into_iter().max_by(|a, b| a.1.total_cmp(&b.1)).map(|(l, _)| l).expect("k >= 1")
    }

    /// Classifies by majority vote among the `k` nearest (ties toward the
    /// closest member of the tied classes).
    pub fn classify(&self, query: &[u32]) -> usize {
        let nearest = self.nearest_indices(query);
        let mut votes: Vec<(usize, usize, usize)> = Vec::new(); // (label, count, best_rank)
        for (rank, &i) in nearest.iter().enumerate() {
            let label = self.neighbors[i].label;
            match votes.iter_mut().find(|(l, _, _)| *l == label) {
                Some((_, count, _)) => *count += 1,
                None => votes.push((label, 1, rank)),
            }
        }
        votes
            .into_iter()
            .max_by(|a, b| a.1.cmp(&b.1).then(b.2.cmp(&a.2)))
            .map(|(l, _, _)| l)
            .expect("k >= 1")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> ExactKnn {
        let mut knn = ExactKnn::new(DistanceMetric::Manhattan, 3);
        knn.insert(vec![0, 0], 0);
        knn.insert(vec![0, 1], 0);
        knn.insert(vec![3, 3], 1);
        knn.insert(vec![3, 2], 1);
        knn.insert(vec![2, 3], 1);
        knn
    }

    #[test]
    fn classifies_by_majority() {
        let knn = toy();
        assert_eq!(knn.classify(&[0, 0]), 0); // 2×class0 + 1×class1 nearest
        assert_eq!(knn.classify(&[3, 3]), 1);
    }

    #[test]
    fn nearest_indices_sorted_by_distance() {
        let knn = toy();
        let idx = knn.nearest_indices(&[0, 0]);
        assert_eq!(idx[0], 0);
        assert_eq!(idx[1], 1);
    }

    #[test]
    fn metric_changes_the_answer() {
        // Point equidistant in L1 but not in L2².
        let mut l1 = ExactKnn::new(DistanceMetric::Manhattan, 1);
        let mut l2 = ExactKnn::new(DistanceMetric::EuclideanSquared, 1);
        for knn in [&mut l1, &mut l2] {
            knn.insert(vec![3, 0], 0); // L1 = 3, L2² = 9 from (0,0)
            knn.insert(vec![2, 2], 1); // L1 = 4, L2² = 8
        }
        assert_eq!(l1.classify(&[0, 0]), 0);
        assert_eq!(l2.classify(&[0, 0]), 1);
    }

    #[test]
    fn weighted_vote_prefers_close_minority() {
        // Two far class-1 neighbors vs one exact class-0 match: majority
        // says 1, weighted vote says 0.
        let mut knn = ExactKnn::new(DistanceMetric::Manhattan, 3);
        knn.insert(vec![0, 0], 0);
        knn.insert(vec![3, 3], 1);
        knn.insert(vec![3, 2], 1);
        assert_eq!(knn.classify(&[0, 0]), 1);
        assert_eq!(knn.classify_weighted(&[0, 0]), 0);
    }

    #[test]
    fn weighted_vote_agrees_on_clear_cases() {
        let knn = toy();
        assert_eq!(knn.classify_weighted(&[0, 0]), 0);
        assert_eq!(knn.classify_weighted(&[3, 3]), 1);
    }

    #[test]
    fn tie_breaks_to_lower_index() {
        let mut knn = ExactKnn::new(DistanceMetric::Hamming, 1);
        knn.insert(vec![1], 7);
        knn.insert(vec![1], 8);
        assert_eq!(knn.classify(&[1]), 7);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_rejected() {
        let _ = ExactKnn::new(DistanceMetric::Hamming, 0);
    }
}
