//! KNN classification on the FeReX associative memory.
//!
//! Reference vectors are stored one per array row; a query is one
//! associative search, and k > 1 uses the iterative LTA masking of
//! [`ferex_core::FerexArray::search_k`]. This is the workload of the
//! paper's Fig. 7 Monte-Carlo study (MNIST KNN worst cases).

use crate::exact::ExactKnn;
use ferex_core::{Backend, DistanceMetric, Ferex, FerexError};
use ferex_fefet::Technology;

/// KNN classifier backed by a FeReX array.
#[derive(Debug, Clone)]
pub struct AmKnn {
    ferex: Ferex,
    labels: Vec<usize>,
    k: usize,
}

impl AmKnn {
    /// Builds the classifier: configures a FeReX engine for `metric` over
    /// `bits`-bit symbols of dimension `dim`.
    ///
    /// # Errors
    ///
    /// Encoding-pipeline failures.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(
        metric: DistanceMetric,
        bits: u32,
        dim: usize,
        k: usize,
        backend: Backend,
        tech: Technology,
    ) -> Result<Self, FerexError> {
        assert!(k > 0, "k must be positive");
        let ferex = Ferex::builder()
            .metric(metric)
            .bits(bits)
            .dim(dim)
            .backend(backend)
            .technology(tech)
            .build()?;
        Ok(AmKnn { ferex, labels: Vec::new(), k })
    }

    /// The underlying engine.
    pub fn ferex(&self) -> &Ferex {
        &self.ferex
    }

    /// Number of stored reference points.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` if no reference points are stored.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Adds a labeled reference vector.
    ///
    /// # Errors
    ///
    /// Vector validation errors.
    pub fn insert(&mut self, symbols: Vec<u32>, label: usize) -> Result<(), FerexError> {
        self.ferex.store(symbols)?;
        self.labels.push(label);
        Ok(())
    }

    /// Majority vote over a ranked neighbor list (ties break toward the
    /// label whose first vote arrived at the better rank).
    fn vote(&self, nearest: &[usize]) -> usize {
        let mut votes: Vec<(usize, usize, usize)> = Vec::new();
        for (rank, &row) in nearest.iter().enumerate() {
            let label = self.labels[row];
            match votes.iter_mut().find(|(l, _, _)| *l == label) {
                Some((_, count, _)) => *count += 1,
                None => votes.push((label, 1, rank)),
            }
        }
        votes
            .into_iter()
            .max_by(|a, b| a.1.cmp(&b.1).then(b.2.cmp(&a.2)))
            .map(|(l, _, _)| l)
            .expect("k >= 1")
    }

    /// Classifies a query by majority vote over the `k` LTA-nearest rows.
    ///
    /// # Errors
    ///
    /// Search errors (including fewer than `k` stored points).
    pub fn classify(&mut self, query: &[u32]) -> Result<usize, FerexError> {
        let nearest = self.ferex.search_k(query, self.k)?;
        Ok(self.vote(&nearest))
    }

    /// Classifies a whole query batch: the array is programmed once, the
    /// k-nearest lists come through the batched serving path
    /// ([`ferex_core::FerexArray::search_k_batch`]), and each list is
    /// majority-voted exactly as in [`AmKnn::classify`].
    ///
    /// # Errors
    ///
    /// Search errors (including fewer than `k` stored points).
    pub fn classify_batch(&mut self, queries: &[Vec<u32>]) -> Result<Vec<usize>, FerexError> {
        // The engine's batch path is a pure `&self` read; bring a stale
        // stochastic backend up to date before serving.
        self.ferex.ensure_programmed()?;
        let ranked = self.ferex.search_k_batch(queries, self.k)?;
        Ok(ranked.iter().map(|nearest| self.vote(nearest)).collect())
    }

    /// Classifies by inverse-distance-weighted vote over the `k`
    /// LTA-nearest rows, using the sensed (possibly analog-noisy) distances
    /// as weights — the AM counterpart of
    /// [`ExactKnn::classify_weighted`](crate::exact::ExactKnn::classify_weighted).
    ///
    /// # Errors
    ///
    /// Search errors from the array.
    pub fn classify_weighted(&mut self, query: &[u32]) -> Result<usize, FerexError> {
        let nearest = self.ferex.search_k(query, self.k)?;
        let distances = self.ferex.array_mut().distances(query)?;
        let mut weights: Vec<(usize, f64)> = Vec::new();
        for &row in &nearest {
            let label = self.labels[row];
            let w = 1.0 / (1.0 + distances[row].max(0.0));
            match weights.iter_mut().find(|(l, _)| *l == label) {
                Some((_, total)) => *total += w,
                None => weights.push((label, w)),
            }
        }
        Ok(weights.into_iter().max_by(|a, b| a.1.total_cmp(&b.1)).map(|(l, _)| l).expect("k >= 1"))
    }

    /// Reconfigures the distance metric in place, keeping reference data.
    ///
    /// # Errors
    ///
    /// Encoding failures for the new metric.
    pub fn reconfigure(&mut self, metric: DistanceMetric) -> Result<(), FerexError> {
        self.ferex.reconfigure(metric)
    }

    /// Builds the equivalent software classifier over the same reference
    /// set (for agreement checks and accuracy baselines).
    pub fn to_exact(&self) -> ExactKnn {
        let mut exact = ExactKnn::new(self.ferex.metric(), self.k);
        for (row, label) in self.ferex.array().stored().iter().zip(&self.labels) {
            exact.insert(row.clone(), *label);
        }
        exact
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(backend: Backend) -> AmKnn {
        let mut knn =
            AmKnn::new(DistanceMetric::Manhattan, 2, 2, 3, backend, Technology::default())
                .expect("builds");
        knn.insert(vec![0, 0], 0).unwrap();
        knn.insert(vec![0, 1], 0).unwrap();
        knn.insert(vec![3, 3], 1).unwrap();
        knn.insert(vec![3, 2], 1).unwrap();
        knn.insert(vec![2, 3], 1).unwrap();
        knn
    }

    #[test]
    fn am_knn_matches_exact_knn_on_ideal_backend() {
        let mut am = toy(Backend::Ideal);
        let exact = am.to_exact();
        for q in [[0u32, 0], [3, 3], [1, 1], [2, 2], [0, 3]] {
            assert_eq!(am.classify(&q).unwrap(), exact.classify(&q), "disagreement on query {q:?}");
        }
    }

    #[test]
    fn reconfigure_preserves_reference_set() {
        let mut am = toy(Backend::Ideal);
        am.reconfigure(DistanceMetric::Hamming).unwrap();
        assert_eq!(am.len(), 5);
        let exact = am.to_exact();
        assert_eq!(exact.metric(), DistanceMetric::Hamming);
        assert_eq!(am.classify(&[0, 0]).unwrap(), exact.classify(&[0, 0]));
    }

    #[test]
    fn weighted_vote_agrees_with_exact_on_ideal_backend() {
        let mut am = toy(Backend::Ideal);
        let exact = am.to_exact();
        for q in [[0u32, 0], [3, 3], [1, 1], [0, 3]] {
            assert_eq!(
                am.classify_weighted(&q).unwrap(),
                exact.classify_weighted(&q),
                "disagreement on {q:?}"
            );
        }
    }

    #[test]
    fn noisy_backend_classifies_easy_queries_correctly() {
        let mut am = toy(Backend::Noisy(Box::default()));
        assert_eq!(am.classify(&[0, 0]).unwrap(), 0);
        assert_eq!(am.classify(&[3, 3]).unwrap(), 1);
    }

    #[test]
    fn batch_classification_matches_per_query_votes() {
        let queries: Vec<Vec<u32>> =
            vec![vec![0, 0], vec![3, 3], vec![1, 1], vec![2, 2], vec![0, 3]];
        // Ideal backend: the batch agrees with the scalar path exactly.
        let mut scalar = toy(Backend::Ideal);
        let expected: Vec<usize> = queries.iter().map(|q| scalar.classify(q).unwrap()).collect();
        let mut batched = toy(Backend::Ideal);
        assert_eq!(batched.classify_batch(&queries).unwrap(), expected);
        // Noisy backend: easy queries still land on their obvious class
        // through the batched serving path.
        let mut noisy = toy(Backend::Noisy(Box::default()));
        let labels = noisy.classify_batch(&queries).unwrap();
        assert_eq!(labels.len(), queries.len());
        assert_eq!(labels[0], 0);
        assert_eq!(labels[1], 1);
    }
}
