#![forbid(unsafe_code)]
//! # ferex-knn — k-nearest-neighbor classification on FeReX
//!
//! The KNN application of the paper's Sec. IV: an exact software classifier
//! ([`exact::ExactKnn`]), the associative-memory-backed classifier
//! ([`am::AmKnn`]) that performs each query as one FeReX search (k > 1 via
//! iterative LTA masking), and the worst-case mining used by the Fig. 7
//! Monte-Carlo robustness study ([`eval::mine_worst_cases`]).
//!
//! # Examples
//!
//! ```
//! use ferex_core::{Backend, DistanceMetric};
//! use ferex_fefet::Technology;
//! use ferex_knn::am::AmKnn;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut knn = AmKnn::new(
//!     DistanceMetric::Manhattan, 2, 2, 1, Backend::Ideal, Technology::default(),
//! )?;
//! knn.insert(vec![0, 0], 0)?;
//! knn.insert(vec![3, 3], 1)?;
//! assert_eq!(knn.classify(&[1, 0])?, 0);
//! # Ok(())
//! # }
//! ```

pub mod am;
pub mod eval;
pub mod exact;

pub use am::AmKnn;
pub use eval::{am_accuracy, exact_accuracy, mine_worst_cases, quantize_set, WorstCase};
pub use exact::{ExactKnn, Neighbor};
