//! Evaluation harness: accuracy over quantized datasets, and worst-case
//! query mining for the Fig. 7 Monte-Carlo study.

use crate::am::AmKnn;
use crate::exact::ExactKnn;
use ferex_core::{DistanceMetric, FerexError};
use ferex_datasets::dataset::Sample;
use ferex_datasets::quantize::Quantizer;

/// Quantizes a sample set with a fitted quantizer.
pub fn quantize_set(quantizer: &Quantizer, samples: &[Sample]) -> Vec<(Vec<u32>, usize)> {
    samples.iter().map(|s| (quantizer.transform(&s.features), s.label)).collect()
}

/// Accuracy of an exact KNN over pre-quantized data.
pub fn exact_accuracy(knn: &ExactKnn, test: &[(Vec<u32>, usize)]) -> f64 {
    if test.is_empty() {
        return 0.0;
    }
    let correct = test.iter().filter(|(q, l)| knn.classify(q) == *l).count();
    correct as f64 / test.len() as f64
}

/// Accuracy of an AM-backed KNN over pre-quantized data.
///
/// The whole test set is served through one
/// [`AmKnn::classify_batch`] call, so the array is programmed once and
/// the per-batch cell-current tables are shared across every query.
///
/// # Errors
///
/// Search errors from the array.
pub fn am_accuracy(knn: &mut AmKnn, test: &[(Vec<u32>, usize)]) -> Result<f64, FerexError> {
    if test.is_empty() {
        return Ok(0.0);
    }
    let queries: Vec<Vec<u32>> = test.iter().map(|(q, _)| q.clone()).collect();
    let predicted = knn.classify_batch(&queries)?;
    let correct = predicted.iter().zip(test).filter(|(p, (_, l))| **p == *l).count();
    Ok(correct as f64 / test.len() as f64)
}

/// A mined worst-case search instance: a query whose nearest and
/// second-nearest stored vectors are separated by a minimal distance gap —
/// the hardest case for analog sensing (the paper's Fig. 7 uses queries
/// whose best match is at Hamming distance 5 with competitors at 6).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorstCase {
    /// The query vector.
    pub query: Vec<u32>,
    /// Index of the true nearest stored vector.
    pub nearest: usize,
    /// Distance to the nearest stored vector.
    pub d_nearest: u64,
    /// Distance to the runner-up.
    pub d_second: u64,
}

/// Scans `queries` against `stored` and returns instances ranked by how
/// small the nearest/runner-up gap is (hardest first), keeping only cases
/// with a unique winner.
pub fn mine_worst_cases(
    metric: DistanceMetric,
    stored: &[Vec<u32>],
    queries: &[Vec<u32>],
) -> Vec<WorstCase> {
    let mut cases = Vec::new();
    for q in queries {
        let mut dists: Vec<(u64, usize)> =
            stored.iter().enumerate().map(|(i, s)| (metric.vector_distance(q, s), i)).collect();
        dists.sort();
        if dists.len() >= 2 && dists[0].0 < dists[1].0 {
            cases.push(WorstCase {
                query: q.clone(),
                nearest: dists[0].1,
                d_nearest: dists[0].0,
                d_second: dists[1].0,
            });
        }
    }
    cases.sort_by_key(|c| c.d_second - c.d_nearest);
    cases
}

#[cfg(test)]
mod tests {
    use super::*;
    use ferex_datasets::spec::UCIHAR;
    use ferex_datasets::synth::{generate, SynthOptions};

    #[test]
    fn quantize_set_preserves_labels() {
        let data = generate(&UCIHAR.scaled(0.005), &SynthOptions::default());
        let q = Quantizer::fit_samples(2, &data.train);
        let set = quantize_set(&q, &data.test);
        assert_eq!(set.len(), data.test.len());
        for ((sym, l), s) in set.iter().zip(&data.test) {
            assert_eq!(*l, s.label);
            assert_eq!(sym.len(), s.features.len());
        }
    }

    #[test]
    fn exact_knn_beats_chance_on_synthetic_data() {
        let data = generate(&UCIHAR.scaled(0.02), &SynthOptions::default());
        let quant = Quantizer::fit_samples(2, &data.train);
        let mut knn = ExactKnn::new(DistanceMetric::Manhattan, 3);
        for (sym, l) in quantize_set(&quant, &data.train) {
            knn.insert(sym, l);
        }
        let acc = exact_accuracy(&knn, &quantize_set(&quant, &data.test));
        assert!(acc > 0.8, "KNN accuracy only {acc}");
    }

    #[test]
    fn worst_cases_are_ranked_by_gap() {
        let stored = vec![vec![0u32, 0], vec![3, 3], vec![0, 1]];
        let queries = vec![vec![0u32, 0], vec![3, 2], vec![1, 1]];
        let cases = mine_worst_cases(DistanceMetric::Manhattan, &stored, &queries);
        for w in cases.windows(2) {
            assert!(
                w[0].d_second - w[0].d_nearest <= w[1].d_second - w[1].d_nearest,
                "not sorted by gap"
            );
        }
        for c in &cases {
            assert!(c.d_nearest < c.d_second);
        }
    }

    #[test]
    fn tied_winners_are_excluded() {
        let stored = vec![vec![0u32], vec![2]];
        let queries = vec![vec![1u32]]; // equidistant
        assert!(mine_worst_cases(DistanceMetric::Manhattan, &stored, &queries).is_empty());
    }
}
