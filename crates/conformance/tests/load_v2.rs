//! End-to-end checks of the v2 (latency-heterogeneity) load report:
//! byte-reproducibility from a seed, counter balance, and the
//! tail-latency SLO gate — with one replica at 8x slowdown, hedging plus
//! brownout demotion must keep p999 within 2x the all-healthy p999 while
//! the unhedged leg of the same cell blows past 5x it.

use ferex_conformance::{standard_load_v2_report, standard_load_v2_specs, LoadV2Report};

const SEEDS: [u64; 2] = [42, 1337];

#[test]
fn v2_report_is_byte_reproducible() {
    for seed in SEEDS {
        let a = standard_load_v2_report(seed).to_json();
        let b = standard_load_v2_report(seed).to_json();
        assert_eq!(a, b, "seed {seed}: v2 report must be byte-identical across runs");
    }
    assert_ne!(
        standard_load_v2_report(42).to_json(),
        standard_load_v2_report(1337).to_json(),
        "different seeds must produce different reports"
    );
}

#[test]
fn v2_counters_balance_and_recall_is_exact() {
    for seed in SEEDS {
        let report = standard_load_v2_report(seed);
        assert_eq!(report.scenarios.len(), standard_load_v2_specs(seed).len());
        for s in &report.scenarios {
            assert!(s.counters_balance(), "seed {seed} {}: counters unbalanced", s.name);
            assert!(s.served > 0, "seed {seed} {}: nothing served", s.name);
            assert_eq!(
                s.recall_at_1, 1.0,
                "seed {seed} {}: hedged answers must match the oracle",
                s.name
            );
            // The unhedged leg resubmits the same stream.
            assert_eq!(s.submitted, 240, "seed {seed} {}: stream length", s.name);
            assert!(
                s.unhedged_served <= s.submitted,
                "seed {seed} {}: unhedged leg overserved",
                s.name
            );
            // Per-replica hedge attribution sums to the scenario counters.
            let against: u64 = s.per_replica.iter().map(|r| r.hedged_against).sum();
            let wins: u64 = s.per_replica.iter().map(|r| r.hedge_wins).sum();
            assert_eq!(against, s.hedges_issued, "seed {seed} {}: hedge attribution", s.name);
            assert_eq!(wins, s.hedge_wins, "seed {seed} {}: win attribution", s.name);
        }
    }
}

/// The headline SLO gate of this scenario family, evaluated per seed from
/// the byte-reproducible report: hedging + brownout demotion recover the
/// tail under one 8x-slow replica, and the unhedged leg demonstrates the
/// meltdown being recovered from.
#[test]
fn v2_slo_gate_one_slow_8x() {
    for seed in SEEDS {
        let report = standard_load_v2_report(seed);
        let healthy = report.scenario("v2-all-healthy").expect("all-healthy cell");
        let slow = report.scenario("v2-one-slow-8x").expect("8x cell");
        assert!(
            slow.p999 <= 2 * healthy.p999,
            "seed {seed}: hedged p999 {} exceeds 2x all-healthy p999 {}",
            slow.p999,
            healthy.p999
        );
        assert!(
            slow.unhedged_p999 >= 5 * healthy.p999,
            "seed {seed}: unhedged p999 {} under 5x all-healthy p999 {} — slowdown too mild \
             for the gate to mean anything",
            slow.unhedged_p999,
            healthy.p999
        );
        // The recovery is attributable: the slow replica was demoted and
        // hedge duplicates won against it.
        assert!(slow.brownout_demotions >= 1, "seed {seed}: no brownout demotion");
        assert!(slow.hedge_wins >= 1, "seed {seed}: no hedge win");
        let r1 = &slow.per_replica[1];
        assert_eq!(r1.model, "slow@8000");
        assert!(r1.demerit_milli > 0, "seed {seed}: slow replica carries no demerit");
        assert!(
            r1.reads < slow.per_replica[0].reads,
            "seed {seed}: slow replica was not routed around"
        );
    }
}

#[test]
fn v2_unhedged_tail_grows_with_slowdown_severity() {
    for seed in SEEDS {
        let report = standard_load_v2_report(seed);
        let p999 = |name: &str| report.scenario(name).expect(name).unhedged_p999;
        assert!(
            p999("v2-one-slow-2x") < p999("v2-one-slow-4x")
                && p999("v2-one-slow-4x") < p999("v2-one-slow-8x"),
            "seed {seed}: unhedged p999 must grow with the slowdown factor"
        );
    }
}

#[test]
fn v2_all_healthy_legs_agree() {
    // With no slow replica the hedged and unhedged legs serve the same
    // schedule: hedges may fire on jitter but never win enough to move the
    // pinned seeds' distributions.
    for seed in SEEDS {
        let report = standard_load_v2_report(seed);
        let h = report.scenario("v2-all-healthy").expect("all-healthy cell");
        assert_eq!(h.brownout_demotions, 0, "seed {seed}: healthy replica demoted");
        assert_eq!((h.p50, h.p99, h.p999), (h.unhedged_p50, h.unhedged_p99, h.unhedged_p999));
        assert_eq!(h.served, h.unhedged_served);
    }
}

#[test]
fn v2_json_has_schema_and_all_cells() {
    let json = standard_load_v2_report(42).to_json();
    assert!(json.contains(&format!("\"schema\": \"{}\"", LoadV2Report::SCHEMA)));
    for name in
        ["v2-all-healthy", "v2-one-slow-2x", "v2-one-slow-4x", "v2-one-slow-8x", "v2-degrading"]
    {
        assert!(json.contains(&format!("\"name\": \"{name}\"")), "missing cell {name}");
    }
    assert!(json.contains("\"slow\": \"r1@8000\""));
    assert!(json.contains("\"degrade\": \"r1@1500\""));
    assert!(json.contains("\"hedge\": \"q=950,b=500\""));
    assert!(json.contains("\"model\": \"degrading@1500\""));
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert_eq!(json.matches('[').count(), json.matches(']').count());
}
