//! The golden-model differential conformance suite.
//!
//! Sweeps {metric × bits × backend × batch-vs-sequential × fault plan} and
//! asserts the three-part contract:
//!
//! * **(a)** the Ideal backend is bit-exact against the digital oracle;
//! * **(b)** the statistical and device-level backends agree within stated
//!   tolerances on identical fault maps;
//! * **(c)** recall degrades monotonically (within sampling slack) as fault
//!   rates rise, reproducibly from a fixed seed.
//!
//! CI runs this suite with `FEREX_CONFORMANCE_SEED` pinned; the matching
//! machine-readable report is produced by the `robustness` binary.

use ferex_analog::lta::LtaParams;
use ferex_conformance::harness::{encoding_for, gen_unambiguous_queries, gen_vectors};
use ferex_conformance::{run_sweep, standard_report, BackendKind, FaultKind, Oracle, SweepSpec};
use ferex_core::{Backend, CircuitConfig, DistanceMetric, FerexArray, SearchOutcome};
use ferex_fefet::{FaultPlan, Technology, VariationModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn conformance_seed() -> u64 {
    std::env::var("FEREX_CONFORMANCE_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(42)
}

fn array_with(metric: DistanceMetric, bits: u32, dim: usize, backend: Backend) -> FerexArray {
    let enc = encoding_for(metric, bits).expect("sizing succeeds for supported widths");
    FerexArray::new(Technology::default(), enc, dim, backend)
}

/// The fault-isolation corner: zero variation, ideal LTA, an explicit plan.
fn corner_cfg(faults: FaultPlan, seed: u64) -> CircuitConfig {
    CircuitConfig {
        variation: VariationModel::none(),
        lta: LtaParams::ideal(),
        faults,
        seed,
        ..Default::default()
    }
}

/// Every (metric, bits) pair the sizing pipeline supports: 3-bit matrices
/// exceed the CSP tractability budget by design (see `cosim.rs`).
fn metric_width_matrix() -> Vec<(DistanceMetric, u32)> {
    DistanceMetric::ALL.iter().flat_map(|&metric| [1u32, 2].map(|bits| (metric, bits))).collect()
}

#[test]
fn ideal_backend_is_bit_exact_against_oracle() {
    for (metric, bits) in metric_width_matrix() {
        let (rows, dim, n_queries) = (10, 7, 14);
        let mut rng = StdRng::seed_from_u64(conformance_seed() ^ bits as u64);
        let stored = gen_vectors(rows, dim, bits, &mut rng);
        let queries = gen_vectors(n_queries, dim, bits, &mut rng);
        let oracle = Oracle::new(metric, stored.clone());

        let mut array = array_with(metric, bits, dim, Backend::Ideal);
        array.store_all(stored).unwrap();
        array.program();

        for q in &queries {
            // Distances are exact integers: compare with == on the floats.
            let want: Vec<f64> = oracle.distances(q).iter().map(|&d| d as f64).collect();
            assert_eq!(array.distances(q).unwrap(), want, "{metric} @{bits}b distances");
            // Tie policy matches end to end: lowest index wins every rank.
            assert_eq!(
                array.search(q).unwrap().nearest,
                oracle.nearest(q),
                "{metric} @{bits}b top-1"
            );
            for k in 1..=3 {
                assert_eq!(
                    array.search_k(q, k).unwrap(),
                    oracle.nearest_k(q, k),
                    "{metric} @{bits}b top-{k}"
                );
            }
        }

        // Serving-path equivalence: batched == sequential, bit for bit.
        let batched = array.search_batch(&queries).unwrap();
        let sequential: Vec<SearchOutcome> = queries
            .iter()
            .enumerate()
            .map(|(i, q)| array.search_at(q, i as u64).unwrap())
            .collect();
        assert_eq!(batched, sequential, "{metric} @{bits}b batch path");
    }
}

#[test]
fn stochastic_backends_match_oracle_at_the_fault_free_corner() {
    for metric in DistanceMetric::ALL {
        let (rows, dim, n_queries, bits) = (8, 6, 8, 2);
        let mut rng = StdRng::seed_from_u64(conformance_seed() ^ 0x5EED);
        let stored = gen_vectors(rows, dim, bits, &mut rng);
        let oracle = Oracle::new(metric, stored.clone());
        let queries = gen_unambiguous_queries(&oracle, n_queries, dim, bits, &mut rng);

        // Noisy at the corner is exact: integer distances, oracle argmin.
        let mut noisy = array_with(
            metric,
            bits,
            dim,
            Backend::Noisy(Box::new(corner_cfg(FaultPlan::none(), 3))),
        );
        noisy.store_all(stored.iter().cloned()).unwrap();
        noisy.program();

        // Circuit at the corner carries only solver/parasitic error, which
        // must stay far below the one-unit integer distance grid.
        let mut circuit = array_with(
            metric,
            bits,
            dim,
            Backend::Circuit(Box::new(corner_cfg(FaultPlan::none(), 3))),
        );
        circuit.store_all(stored.iter().cloned()).unwrap();
        circuit.program();

        for q in &queries {
            let want: Vec<f64> = oracle.distances(q).iter().map(|&d| d as f64).collect();
            assert_eq!(noisy.distances(q).unwrap(), want, "{metric} noisy corner");
            assert_eq!(noisy.search(q).unwrap().nearest, oracle.nearest(q), "{metric} noisy top-1");
            for (dc, w) in circuit.distances(q).unwrap().iter().zip(&want) {
                assert!((dc - w).abs() < 0.2, "{metric} circuit corner: {dc} vs {w}");
            }
            assert_eq!(
                circuit.search(q).unwrap().nearest,
                oracle.nearest(q),
                "{metric} circuit top-1 (unambiguous query)"
            );
        }
    }
}

#[test]
fn noisy_and_circuit_agree_within_tolerance_on_identical_fault_maps() {
    // Dead-cell faults (SA1/open) remove the same contributions from both
    // backends when the config seed — hence the fault map — is shared.
    let plan = FaultPlan { sa1_rate: 0.1, open_rate: 0.1, ..Default::default() };
    for metric in DistanceMetric::ALL {
        let (rows, dim, bits) = (4, 8, 2);
        let mut rng = StdRng::seed_from_u64(conformance_seed() ^ 0xD1FF);
        let stored = gen_vectors(rows, dim, bits, &mut rng);
        let queries = gen_vectors(4, dim, bits, &mut rng);

        let mk = |backend: Backend| {
            let mut a = array_with(metric, bits, dim, backend);
            a.store_all(stored.iter().cloned()).unwrap();
            a.program();
            a
        };
        // Default (paper) variation on top of the faults: the tolerance is
        // the stated cross-backend model gap, not a bit-exact claim.
        let noisy = mk(Backend::Noisy(Box::new(CircuitConfig {
            faults: plan,
            seed: 99,
            ..Default::default()
        })));
        let circuit = mk(Backend::Circuit(Box::new(CircuitConfig {
            faults: plan,
            seed: 99,
            ..Default::default()
        })));
        assert_eq!(noisy.fault_map().unwrap(), circuit.fault_map().unwrap(), "{metric} maps");

        for q in &queries {
            let dn = noisy.distances(q).unwrap();
            let dc = circuit.distances(q).unwrap();
            for (n, c) in dn.iter().zip(&dc) {
                // Stated tolerance: 15 % relative, floored at 0.5 units for
                // near-zero rows (leakage + solver error).
                assert!(
                    (n - c).abs() <= 0.15 * n.max(*c) + 0.5,
                    "{metric}: noisy {n} vs circuit {c}"
                );
            }
        }
    }
}

#[test]
fn batched_and_sequential_serving_agree_under_fault_plans() {
    // The batch-vs-sequential axis of the sweep matrix, on both stochastic
    // backends, under a plan mixing all four fault classes plus aging.
    let plan = FaultPlan {
        sa0_rate: 0.05,
        sa1_rate: 0.05,
        open_rate: 0.05,
        short_rate: 0.05,
        retention_seconds: 3.0e7,
        endurance_cycles: 1.0e7,
        ..Default::default()
    };
    let (rows, dim, bits, k) = (6, 6, 2, 2);
    let mut rng = StdRng::seed_from_u64(conformance_seed() ^ 0xBA7C);
    let stored = gen_vectors(rows, dim, bits, &mut rng);
    let queries = gen_vectors(6, dim, bits, &mut rng);
    for kind in BackendKind::STOCHASTIC {
        let cfg = CircuitConfig { faults: plan, seed: 7, ..Default::default() };
        let mut a = array_with(DistanceMetric::Hamming, bits, dim, kind.backend(cfg));
        a.store_all(stored.iter().cloned()).unwrap();
        a.program();
        let batched = a.search_batch(&queries).unwrap();
        let k_batched = a.search_k_batch(&queries, k).unwrap();
        for (i, q) in queries.iter().enumerate() {
            assert_eq!(batched[i], a.search_at(q, i as u64).unwrap(), "{kind:?} query {i}");
            assert_eq!(k_batched[i], a.search_k_at(q, k, i as u64).unwrap(), "{kind:?} top-{k}");
        }
    }
}

#[test]
fn recall_degrades_monotonically_across_the_standard_matrix() {
    let seed = conformance_seed();
    let report = standard_report(seed);
    // Full coverage: 3 metrics × 2 stochastic backends × 4 fault classes.
    assert_eq!(report.curves.len(), 24);
    for curve in &report.curves {
        let label = format!("{}/{}/{}", curve.metric, curve.backend, curve.fault);
        assert_eq!(
            curve.points[0].recall_at_1, 1.0,
            "{label}: fault-free anchor must be exact (oracle agreement)"
        );
        assert_eq!(curve.points[0].recall_at_k, 1.0, "{label}: anchor recall@k");
        assert!(
            curve.is_monotone_within(0.15),
            "{label}: recall@1 must not rise beyond sampling slack: {:?}",
            curve.points
        );
        assert!(
            curve.total_drop() >= 0.15,
            "{label}: the top rate must visibly degrade recall, dropped {}",
            curve.total_drop()
        );
        for p in &curve.points {
            assert!(
                p.recall_at_k >= p.recall_at_1 - 1e-12,
                "{label}: recall@k can never trail recall@1"
            );
        }
    }
}

#[test]
fn degradation_curves_are_deterministic_for_a_seed() {
    let spec = SweepSpec {
        metric: DistanceMetric::Hamming,
        backend: BackendKind::Noisy,
        fault: FaultKind::Open,
        bits: 2,
        dim: 10,
        rows: 12,
        n_queries: 16,
        trials: 2,
        k: 3,
        rates: vec![0.0, 0.1, 0.3],
        seed: conformance_seed(),
    };
    let a = run_sweep(&spec);
    let b = run_sweep(&spec);
    assert_eq!(a, b, "same seed must reproduce the curve byte-for-byte");
    let mut other = spec.clone();
    other.seed ^= 1;
    assert_ne!(run_sweep(&other).points, a.points, "seed must actually steer the sweep");
}
