//! Self-healing conformance: scrub soundness and recall recovery.
//!
//! Three contracts on top of the degradation suite in `conformance.rs`:
//!
//! * **Scrub soundness** — on a fault-free array the scrub engine reports
//!   zero findings (no false-positive quarantines), across seeds and
//!   backends, with and without device variation.
//! * **Scrub completeness** — every row carrying an injected stuck-at
//!   fault whose readback diverges beyond tolerance is flagged, with the
//!   divergence direction attributed to the right fault family.
//! * **Recall recovery** — at a 1 % stuck-at cell rate, write-verify plus
//!   row sparing restores recall@1 to within 1 % of the fault-free anchor
//!   (which is exactly 1.0 at the fault-isolation corner), while the
//!   no-repair leg reproduces the PR 2 degradation baseline unchanged.

use ferex_analog::lta::LtaParams;
use ferex_conformance::harness::{encoding_for, gen_vectors};
use ferex_conformance::{run_recovery, run_sweep, BackendKind, FaultKind, SweepSpec};
use ferex_core::{
    Backend, CircuitConfig, DistanceMetric, FaultAttribution, FerexArray, RepairPolicy,
};
use ferex_fefet::{CellFault, FaultPlan, Technology, VariationModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The two fixed seeds the soundness contract is pinned on.
const SOUNDNESS_SEEDS: [u64; 2] = [42, 1337];

fn corner_cfg(faults: FaultPlan, seed: u64) -> CircuitConfig {
    CircuitConfig {
        variation: VariationModel::none(),
        lta: LtaParams::ideal(),
        faults,
        seed,
        ..Default::default()
    }
}

fn array_with(metric: DistanceMetric, dim: usize, backend: Backend) -> FerexArray {
    let enc = encoding_for(metric, 2).expect("sizing succeeds at 2 bits");
    FerexArray::new(Technology::default(), enc, dim, backend)
}

#[test]
fn scrub_never_quarantines_a_fault_free_array() {
    let (rows, dim) = (10, 8);
    for seed in SOUNDNESS_SEEDS {
        let mut rng = StdRng::seed_from_u64(seed);
        let stored = gen_vectors(rows, dim, 2, &mut rng);
        for kind in BackendKind::STOCHASTIC {
            // Fault-isolation corner: readback is exact, so any finding
            // would be a false positive by construction.
            let mut array = array_with(
                DistanceMetric::Hamming,
                dim,
                kind.backend(corner_cfg(FaultPlan::none(), seed)),
            );
            array.store_all(stored.iter().cloned()).unwrap();
            array.set_repair_policy(RepairPolicy { spare_rows: 2, ..Default::default() }).unwrap();
            array.program();
            let report = array.scrub().expect("programmed array scrubs");
            assert!(report.findings.is_empty(), "{kind:?} seed {seed}: {:?}", report.findings);
            assert!(report.rows_remapped.is_empty() && report.rows_excluded.is_empty());
            assert!(!report.global_drift, "{kind:?} seed {seed}: phantom drift");
            assert_eq!(report.sentinel_findings, 0);
            let health = array.health();
            assert_eq!(health.rows_quarantined_now, 0, "{kind:?} seed {seed}");
            assert_eq!(health.rows_active, rows);
        }

        // Paper-default device variation, healed by write-verify first:
        // the trimmed array must also scrub clean — residual resistor
        // spread sits inside the scrub tolerances.
        let mut noisy = array_with(
            DistanceMetric::Hamming,
            dim,
            Backend::Noisy(Box::new(CircuitConfig { seed, ..Default::default() })),
        );
        noisy.store_all(stored.iter().cloned()).unwrap();
        noisy.set_repair_policy(RepairPolicy { spare_rows: 2, ..Default::default() }).unwrap();
        let report = noisy.program_verified().expect("bounded verify");
        assert!(report.rows_quarantined.is_empty(), "variation alone must not quarantine");
        let scrub = noisy.scrub().expect("programmed array scrubs");
        assert!(scrub.findings.is_empty(), "seed {seed}: variation false positive {scrub:?}");
        assert!(!scrub.global_drift);
    }
}

#[test]
fn scrub_flags_every_dead_row_and_attributes_missing_current() {
    let (rows, dim) = (12, 8);
    // Tight absolute tolerance so a single dead cell (at least one full
    // missing current unit at some probe) is always above threshold;
    // drift attribution disabled so heavy fault load cannot be mistaken
    // for array-wide drift.
    let policy = RepairPolicy {
        spare_rows: 0,
        sentinel_rows: 0,
        scrub_abs_tolerance: 0.5,
        scrub_rel_tolerance: 0.0,
        drift_fraction: 2.0,
        ..Default::default()
    };
    for seed in SOUNDNESS_SEEDS {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xDEAD);
        let stored = gen_vectors(rows, dim, 2, &mut rng);
        let plan = FaultPlan { sa1_rate: 0.3, ..Default::default() };
        let mut array = array_with(
            DistanceMetric::Hamming,
            dim,
            Backend::Noisy(Box::new(corner_cfg(plan, seed))),
        );
        array.store_all(stored.iter().cloned()).unwrap();
        array.set_repair_policy(policy.clone()).unwrap();
        array.program();

        // Ground truth from the injected map: logical rows owning at least
        // one dead (SA1) FeFET that conducts at some probe in healthy
        // operation. A dead FeFET that never conducts anyway (top-level
        // threshold, or a grounded drain line) is benign and undetectable
        // by construction — it changes no readback at any search level.
        let enc = array.encoding().clone();
        let conducts_somewhere = |stored_sym: u32, f: usize| {
            enc.search.iter().any(|se| {
                se.vds_multiples[f] > 0
                    && enc.stored[stored_sym as usize].vth_levels[f] < se.vgs_levels[f]
            })
        };
        let cols = array.physical_cols();
        let map = array.fault_map().expect("plan injects faults").to_vec();
        let faulty: Vec<usize> = (0..rows)
            .filter(|&r| {
                (0..cols).any(|c| {
                    map[r * cols + c] == CellFault::StuckAtHighVth
                        && conducts_somewhere(stored[r][c / enc.k], c % enc.k)
                })
            })
            .collect();
        assert!(!faulty.is_empty(), "seed {seed} must fault at least one row");

        let report = array.scrub().expect("programmed array scrubs");
        let flagged: Vec<usize> = report.findings.iter().map(|f| f.row).collect();
        assert_eq!(flagged, faulty, "seed {seed}: detection must match the injected map");
        for finding in &report.findings {
            assert!(finding.divergence < 0.0, "dead cells only remove current");
            assert_eq!(
                finding.attribution,
                FaultAttribution::MissingCurrent,
                "seed {seed} row {}",
                finding.row
            );
        }
        // No spares configured: every flagged row degrades to exclusion.
        assert!(report.rows_remapped.is_empty());
        assert_eq!(report.rows_excluded, faulty, "seed {seed}");
        assert_eq!(array.health().rows_active, rows - faulty.len());
    }
}

#[test]
fn scrub_flags_stuck_on_rows_as_excess_current() {
    // Every cell stuck conducting: each row reads far above its codeword
    // at high search levels, and the positive divergence must be
    // attributed to the excess-current family (SA0 / short), never to
    // missing current or drift (drift attribution disabled).
    let (rows, dim) = (6, 8);
    let plan = FaultPlan { sa0_rate: 1.0, ..Default::default() };
    let policy =
        RepairPolicy { spare_rows: 0, sentinel_rows: 0, drift_fraction: 2.0, ..Default::default() };
    for seed in SOUNDNESS_SEEDS {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5A00);
        // Nonzero symbols so "stuck at the lowest level" differs from the
        // stored codeword in every row.
        let stored: Vec<Vec<u32>> = gen_vectors(rows, dim, 2, &mut rng)
            .into_iter()
            .map(|row| row.into_iter().map(|s| 1 + s % 3).collect())
            .collect();
        let mut array = array_with(
            DistanceMetric::Hamming,
            dim,
            Backend::Noisy(Box::new(corner_cfg(plan, seed))),
        );
        array.store_all(stored).unwrap();
        array.set_repair_policy(policy.clone()).unwrap();
        array.program();
        let report = array.scrub().expect("programmed array scrubs");
        let flagged: Vec<usize> = report.findings.iter().map(|f| f.row).collect();
        assert_eq!(flagged, (0..rows).collect::<Vec<_>>(), "seed {seed}: all rows stuck on");
        for finding in &report.findings {
            assert!(finding.divergence > 0.0, "stuck-on cells only add current");
            assert_eq!(finding.attribution, FaultAttribution::ExcessCurrent, "seed {seed}");
        }
    }
}

#[test]
fn self_healing_recovers_recall_at_one_percent_stuck_at() {
    // The headline acceptance gate: a 1 % stuck-at cell rate visibly dents
    // the no-repair baseline, and write-verify + row sparing restores
    // recall@1 to within 1 % of the fault-free anchor (exactly 1.0 at the
    // fault-isolation corner). The no-repair leg must simultaneously equal
    // the PR 2 degradation sweep, so the baseline is reproduced unchanged.
    for fault in [FaultKind::Sa0, FaultKind::Sa1] {
        let spec = SweepSpec {
            metric: DistanceMetric::Hamming,
            backend: BackendKind::Noisy,
            fault,
            bits: 2,
            dim: 12,
            rows: 16,
            n_queries: 24,
            trials: 3,
            k: 3,
            rates: vec![0.01],
            seed: 42,
        };
        let policy =
            RepairPolicy { spare_rows: 2 * spec.rows, sentinel_rows: 1, ..Default::default() };
        let recovery = run_recovery(&spec, &policy);
        let baseline = run_sweep(&spec);
        let point = recovery.points[0];
        assert_eq!(point.recall_faulted_1, baseline.points[0].recall_at_1, "{fault:?} baseline");
        assert!(
            point.recall_healed_1 >= 0.99,
            "{fault:?}: healed recall@1 {} must recover to within 1% of 1.0",
            point.recall_healed_1
        );
        assert!(
            point.recall_healed_k >= 0.99,
            "{fault:?}: healed recall@k {} must recover",
            point.recall_healed_k
        );
        assert!(
            point.recall_healed_1 >= point.recall_faulted_1,
            "{fault:?}: healing must never serve worse than the faulted baseline at 1%"
        );
        assert_eq!(point.rows_excluded, 0, "{fault:?}: a 2x spare pool absorbs 1% faults");
        assert_eq!(point.rows_quarantined, point.rows_remapped, "{fault:?}");
    }
}
