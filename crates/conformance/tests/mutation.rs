//! Online-mutation conformance: the acceptance gates of the mutability
//! subsystem.
//!
//! * **Rebuild equivalence** — every checkpoint of every standard cell
//!   byte-matches a from-scratch rebuild of the same logical contents,
//!   on the Ideal backend and on both corner device models.
//! * **Serving through churn** — recall@1 against the exact digital
//!   mirror stays perfect while mutations land through the quorum path.
//! * **Endurance** — the wear-leveled churn keeps max-row-cycles within
//!   2x the mean while the unleveled leg exceeds 5x.
//! * **Bit-reproducibility** — regenerating the `ferex-mutation-v1`
//!   report from the same seed yields a byte-identical JSON document.
//!
//! CI runs this suite with `FEREX_CONFORMANCE_SEED` pinned; the matching
//! machine-readable report is produced by the `robustness` binary.

use ferex_conformance::{standard_mutation_report, MutationReport};

fn conformance_seed() -> u64 {
    std::env::var("FEREX_CONFORMANCE_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(42)
}

#[test]
fn standard_report_passes_all_three_gates() {
    let report = standard_mutation_report(conformance_seed());
    assert!(report.rebuild_equivalence_holds(), "a checkpoint diverged from its rebuild");
    assert!(report.meets_recall_floor(1000), "churn cost recall@1");
    assert!(
        report.wear_gates_hold(),
        "wear gates failed: leveled {} per-mille, unleveled {} per-mille",
        report.churn.leveled.imbalance_milli,
        report.churn.unleveled.imbalance_milli
    );
    assert!(report.passes());
}

#[test]
fn every_cell_mutated_and_served() {
    let report = standard_mutation_report(conformance_seed());
    assert_eq!(report.scenarios.len(), 5, "three metrics plus two device corners");
    for s in &report.scenarios {
        assert!(s.inserts > 0 && s.updates > 0 && s.deletes > 0, "{}: one-sided schedule", s.name);
        assert!(s.searches > 0, "{}: no searches served", s.name);
        assert!(s.wear.total_writes > 0, "{}: wear accounting missed the writes", s.name);
        assert!(s.live_rows <= s.capacity, "{}: live rows exceed capacity", s.name);
    }
}

#[test]
fn report_is_byte_reproducible_and_tagged() {
    let seed = conformance_seed();
    let a = standard_mutation_report(seed).to_json();
    let b = standard_mutation_report(seed).to_json();
    assert_eq!(a, b, "same seed must give a byte-identical report");
    assert!(a.contains(&format!("\"schema\": \"{}\"", MutationReport::SCHEMA)));
    assert!(a.contains("\"leveled\""));
    assert!(a.contains("\"unleveled\""));
}
