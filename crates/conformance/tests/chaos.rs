//! Chaos-soak conformance: replicated degraded-mode serving.
//!
//! Four contracts on top of the self-healing suite in `selfheal.rs`:
//!
//! * **Availability** — the acceptance scenario (three replicas, 2-of-2
//!   quorum, the PR 2 standard 1 % stuck-at rate on one replica, a second
//!   replica killed mid-stream) keeps recall@1 at or above 0.99 for the
//!   whole stream.
//! * **Bit-reproducibility** — regenerating the standard chaos report from
//!   the same seed yields a byte-identical JSON document.
//! * **Zero drift when disabled** — a one-replica, 1/1-quorum, no-kill,
//!   no-repair soak reproduces the PR 2/PR 3 degradation baseline recall
//!   exactly: the supervisor must add nothing when its features are off.
//! * **Fallback exactness** — when quorum cannot be met, the digital
//!   fallback serves precisely the conformance oracle's answer.

use ferex_analog::lta::LtaParams;
use ferex_conformance::harness::{encoding_for, gen_unambiguous_queries, gen_vectors};
use ferex_conformance::{
    run_chaos, run_sweep, standard_chaos_report, BackendKind, ChaosSpec, FaultKind, Oracle,
    SweepSpec,
};
use ferex_core::{
    Backend, CircuitConfig, DistanceMetric, FerexArray, QuorumPolicy, ReplicaPolicy, ReplicaSet,
    ServeSource,
};
use ferex_fefet::{FaultPlan, Technology, VariationModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The two fixed seeds the chaos gates are pinned on (same pair as the
/// scrub-soundness contract).
const CHAOS_SEEDS: [u64; 2] = [42, 1337];

#[test]
fn acceptance_soak_keeps_recall_through_fault_and_kill() {
    // The acceptance scenario verbatim: 3 replicas, quorum 2/2, 1 % SA1 on
    // replica 0, replica 1 killed at mid-stream. With two healthy replicas
    // before the kill and the oracle fallback arbitrating disagreements
    // after it, recall@1 must hold at ≥ 0.99 across the whole stream.
    let spec = ChaosSpec {
        metric: DistanceMetric::Hamming,
        backend: BackendKind::Noisy,
        fault: FaultKind::Sa1,
        bits: 2,
        dim: 12,
        rows: 16,
        n_queries: 60,
        rates: vec![0.01],
        replicas: 3,
        reads: 2,
        agree: 2,
        faulted_replica: 0,
        kill_replica: Some(1),
        kill_at_query: 30,
        scrub_period: 16,
        spare_rows: 2,
        seed: 42,
    };
    let curve = run_chaos(&spec);
    assert!(curve.meets_recall_floor(0.99), "availability gate breached: {:?}", curve.points);
    let p = &curve.points[0];
    assert_eq!(p.replicas_alive, 2, "the scheduled kill must have landed");
    assert!(p.scheduled_scrubs > 0, "the scrub schedule never fired");
}

#[test]
fn standard_chaos_report_is_byte_reproducible() {
    for seed in CHAOS_SEEDS {
        let a = standard_chaos_report(seed);
        let b = standard_chaos_report(seed);
        assert_eq!(a.to_json(), b.to_json(), "seed {seed}: chaos report drifted between runs");
        // Every standard soak must hold the availability gate.
        for curve in &a.curves {
            assert!(
                curve.meets_recall_floor(0.99),
                "seed {seed}, {}/{}: availability gate breached: {:?}",
                curve.metric,
                curve.fault,
                curve.points
            );
        }
    }
}

#[test]
fn disabled_supervisor_reproduces_the_degradation_baseline() {
    // One replica, 1/1 quorum, no kill, no scrubs, no repair policy: the
    // soak's recall must equal run_sweep's single-trial recall exactly —
    // same derived data, same trial seed, same query-id stream.
    for (metric, fault) in
        [(DistanceMetric::Hamming, FaultKind::Sa0), (DistanceMetric::Manhattan, FaultKind::Sa1)]
    {
        let chaos = ChaosSpec {
            metric,
            backend: BackendKind::Noisy,
            fault,
            bits: 2,
            dim: 12,
            rows: 16,
            n_queries: 24,
            rates: vec![0.0, 0.02, 0.05],
            replicas: 1,
            reads: 1,
            agree: 1,
            faulted_replica: 0,
            kill_replica: None,
            kill_at_query: 0,
            scrub_period: 0,
            spare_rows: 0,
            seed: 42,
        };
        let sweep = SweepSpec { k: 1, ..chaos.sweep_spec() };
        let baseline = run_sweep(&sweep);
        let soak = run_chaos(&chaos);
        assert_eq!(soak.points.len(), baseline.points.len());
        for (c, d) in soak.points.iter().zip(&baseline.points) {
            assert_eq!(c.rate, d.rate);
            assert_eq!(
                c.recall_at_1, d.recall_at_1,
                "{metric} {fault:?} rate {}: supervisor drifted off the baseline",
                c.rate
            );
        }
    }
}

#[test]
fn quorum_fallback_serves_the_oracle_answer_exactly() {
    // Two replicas with a 2/2 quorum, one killed: a single eligible
    // replica can never meet the quorum, so every query is served by the
    // digital fallback — which must match the conformance oracle bit for
    // bit, tie policy included.
    let (rows, dim) = (10, 8);
    let metric = DistanceMetric::EuclideanSquared;
    let enc = encoding_for(metric, 2).expect("sizing succeeds at 2 bits");
    let mut rng = StdRng::seed_from_u64(1337);
    let stored = gen_vectors(rows, dim, 2, &mut rng);
    let oracle = Oracle::new(metric, stored.clone());
    let queries = gen_unambiguous_queries(&oracle, 12, dim, 2, &mut rng);
    let mut replicas = Vec::new();
    for i in 0..2u64 {
        let cfg = CircuitConfig {
            variation: VariationModel::none(),
            lta: LtaParams::ideal(),
            faults: FaultPlan::none(),
            seed: ferex_core::derive_replica_seed(1337, i),
            ..Default::default()
        };
        let mut a =
            FerexArray::new(Technology::default(), enc.clone(), dim, Backend::Noisy(Box::new(cfg)));
        a.store_all(stored.iter().cloned()).unwrap();
        a.program();
        replicas.push(a);
    }
    let policy =
        ReplicaPolicy { quorum: QuorumPolicy { reads: 2, agree: 2 }, ..Default::default() };
    let mut set = ReplicaSet::new(replicas, stored, metric, policy);
    set.kill(1);
    for q in &queries {
        let served = set.serve(q).unwrap();
        assert_eq!(served.source, ServeSource::OracleFallback);
        assert_eq!(served.outcome.nearest, oracle.nearest(q));
    }
    assert_eq!(set.stats().oracle_fallbacks, queries.len() as u64);
}
