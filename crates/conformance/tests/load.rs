//! Load-simulator conformance: the serving loop under deterministic load.
//!
//! Four contracts on top of the chaos suite in `chaos.rs`:
//!
//! * **Byte-reproducibility** — regenerating the standard `ferex-load-v1`
//!   report from the same seed yields a byte-identical JSON document,
//!   kill-mid-stream chaos included. This is the CI replay gate.
//! * **Goodput** — at an offered load well above the single-query service
//!   rate (64 req/kilotick vs a 1/62 per-tick capacity, ≈ 4x), adaptive
//!   batch forming at target 16 clears at least 3x the goodput of a
//!   batch-size-1 loop on the same stream — the serving-side image of the
//!   PR 6 kernel speedup the cost model was calibrated against.
//! * **Deadline discipline** — no scenario ever serves a request past its
//!   deadline: requests that cannot make it are shed, so p999 (and the
//!   max) of the served latency distribution is bounded by the configured
//!   deadline by construction.
//! * **Serving exactness under chaos** — scenarios run replicas at the
//!   fault-isolation corner, so recall@1 stays exactly 1.0 even while a
//!   replica is killed mid-stream (the quorum ladder falls back to the
//!   digital oracle rather than degrade).

use ferex_conformance::{standard_load_report, LoadReport};

/// The two fixed seeds the load gates are pinned on (same pair as the
/// chaos and scrub-soundness contracts).
const LOAD_SEEDS: [u64; 2] = [42, 1337];

fn report_for(seed: u64) -> LoadReport {
    standard_load_report(seed)
}

#[test]
fn standard_load_report_is_byte_reproducible() {
    for seed in LOAD_SEEDS {
        let a = report_for(seed);
        let b = report_for(seed);
        assert_eq!(a.to_json(), b.to_json(), "seed {seed}: load report drifted between runs");
        assert!(
            a.scenarios.iter().any(|s| s.name == "kill-mid-stream"),
            "the replay gate must cover mid-stream chaos"
        );
    }
}

#[test]
fn every_scenario_balances_counters_and_respects_deadlines() {
    for seed in LOAD_SEEDS {
        let report = report_for(seed);
        assert!(!report.scenarios.is_empty());
        for s in &report.scenarios {
            assert!(s.counters_balance(), "seed {seed}, {}: {s:?}", s.name);
            assert!(
                s.meets_deadline(),
                "seed {seed}, {}: served past the deadline (max {} > {})",
                s.name,
                s.max_latency,
                s.deadline_ticks
            );
            assert!(
                s.p50 <= s.p99 && s.p99 <= s.p999 && s.p999 <= s.max_latency,
                "seed {seed}, {}: percentile ordering broken",
                s.name
            );
            assert!(s.served > 0, "seed {seed}, {}: nothing served", s.name);
            assert!(
                s.max_batch <= s.target_batch as u64,
                "seed {seed}, {}: batch former overshot its target",
                s.name
            );
            let per_tenant: u64 = s.tenant_served.iter().sum();
            assert_eq!(per_tenant, s.served, "seed {seed}, {}: tenant shares drifted", s.name);
        }
    }
}

#[test]
fn adaptive_batching_clears_the_goodput_gate() {
    for seed in LOAD_SEEDS {
        let report = report_for(seed);
        let b1 = report.scenario("goodput-batch1").expect("batch-1 cell present");
        let ad = report.scenario("goodput-adaptive").expect("adaptive cell present");
        assert_eq!(b1.arrivals, ad.arrivals, "the goodput pair must share the offered load");
        assert!(
            ad.goodput_milli >= 3 * b1.goodput_milli,
            "seed {seed}: adaptive goodput {} below 3x the batch-1 goodput {}",
            ad.goodput_milli,
            b1.goodput_milli
        );
        // The batch-1 loop saturates: it must be shedding heavily while the
        // adaptive loop keeps most of the stream.
        assert!(
            b1.shed_capacity + b1.shed_deadline > b1.served,
            "seed {seed}: the batch-1 cell is not actually overloaded"
        );
        assert!(
            ad.served * 10 >= ad.submitted * 9,
            "seed {seed}: adaptive loop kept under 90% of the stream ({}/{})",
            ad.served,
            ad.submitted
        );
    }
}

#[test]
fn recall_stays_exact_under_mid_stream_chaos() {
    for seed in LOAD_SEEDS {
        let report = report_for(seed);
        for s in &report.scenarios {
            assert_eq!(
                s.recall_at_1, 1.0,
                "seed {seed}, {}: corner-config serving must match the oracle exactly",
                s.name
            );
        }
        let killed = report.scenario("kill-mid-stream").expect("kill cell present");
        assert!(
            killed.oracle_fallbacks > 0,
            "seed {seed}: the kill never forced the fallback ladder"
        );
        let latency_sweep: Vec<_> =
            report.scenarios.iter().filter(|s| s.name.starts_with("latency-tb")).collect();
        assert!(latency_sweep.len() >= 5, "the latency-vs-target-batch sweep went missing");
    }
}
