//! Online-mutation conformance: the three-legged gate of the mutability
//! subsystem.
//!
//! * **Rebuild equivalence** — a seeded interleaved schedule of
//!   insert/update/delete/search/compact ops runs against a replicated
//!   mutation-enabled engine; at every checkpoint the logical-id-keyed
//!   distances of replica 0 must *byte-match* (`f64::to_bits`) a
//!   from-scratch array rebuilt from the same logical contents. Slot
//!   layouts are free to differ — tombstones, compaction and wear rotation
//!   permute physical rows — but per-id analog readout may not.
//! * **Serving through churn** — every search op in the schedule is served
//!   through the [`ReplicaSet`] quorum path *while* mutations land, and
//!   recall@1 against the exact digital mirror must stay perfect
//!   (tie-safe: the served id's integer distance equals the mirror
//!   minimum).
//! * **Endurance soak** — a hot-id churn runs once with wear leveling and
//!   once without; the leveled max-cycles/mean imbalance must stay within
//!   2x while the unleveled leg exceeds 5x, proving the rotation policy
//!   earns its keep.
//!
//! Everything derives from one base seed through purpose-salted
//! `splitmix64` streams, so the standard report is byte-reproducible.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::SeedableRng;

use ferex_analog::lta::LtaParams;
use ferex_core::{
    derive_replica_seed, CellEncoding, CircuitConfig, DistanceMetric, FerexArray, FerexError,
    MutationPolicy, QuorumPolicy, ReplicaPolicy, ReplicaSet,
};
use ferex_fefet::math::splitmix64;
use ferex_fefet::{Technology, VariationModel};

use crate::harness::{gen_vectors, BackendKind};
use crate::report::{ChurnSoak, MutationReport, MutationScenario, WearRow};

/// Purpose-separation salt of the mutation leg's seed streams.
const MUTATION_STREAM_SALT: u64 = 0x4D75_7A5E_EDC0_FFEE;

/// One cell of the mutation soak: data shape, op budget, checkpoint
/// cadence and the replica/quorum geometry the churn is served through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MutationSpec {
    /// Distance metric under mutation.
    pub metric: DistanceMetric,
    /// Backend kind (`Ideal` exact, or the corner-`Noisy`/`Circuit`
    /// device models with variation and sensing noise zeroed).
    pub backend: BackendKind,
    /// Symbol bit width.
    pub bits: u32,
    /// Symbols per vector.
    pub dim: usize,
    /// Physical slot capacity of the mutation table.
    pub capacity: usize,
    /// Live ids seeded before the churn starts.
    pub initial: usize,
    /// Interleaved mutation/search ops in the schedule.
    pub n_ops: usize,
    /// Rebuild-equivalence checkpoint cadence, in ops.
    pub checkpoint_every: usize,
    /// Wear-rotation maintenance cadence, in ops.
    pub maintenance_every: usize,
    /// Replica count the churn is served through.
    pub replicas: usize,
    /// Quorum reads per query.
    pub reads: usize,
    /// Quorum agreement threshold.
    pub agree: usize,
    /// Base seed everything derives from.
    pub seed: u64,
}

impl MutationSpec {
    /// Derives a purpose-separated sub-seed of this scenario's stream.
    fn derived_seed(&self, purpose: u64) -> u64 {
        splitmix64(self.seed ^ splitmix64(purpose ^ MUTATION_STREAM_SALT))
    }

    /// Scenario label, `<metric>-<backend>`.
    fn name(&self) -> String {
        format!("{}-{}", crate::harness::metric_label(self.metric), self.backend.label())
    }
}

/// Builds one mutation-enabled replica: corner circuit config (variation
/// and sensing noise off, faults off), the spec's backend, the shared
/// mutation policy, and the current logical contents replayed in
/// ascending-id order before bulk programming.
fn build_replica(
    spec: &MutationSpec,
    encoding: &CellEncoding,
    policy: MutationPolicy,
    seed: u64,
    live: &BTreeMap<u64, Vec<u32>>,
) -> Result<FerexArray, FerexError> {
    let cfg = CircuitConfig {
        variation: VariationModel::none(),
        lta: LtaParams::ideal(),
        seed,
        ..Default::default()
    };
    let mut array = FerexArray::new(
        Technology::default(),
        encoding.clone(),
        spec.dim,
        spec.backend.backend(cfg),
    );
    array.enable_mutation(policy)?;
    for (id, v) in live {
        array.insert(*id, v.clone())?;
    }
    array.program();
    Ok(array)
}

/// `true` when replica-0 distances keyed by logical id byte-match the
/// rebuilt array on every probe, and both agree with the mirror on the
/// live-id set. Slot layouts may differ; per-id bits may not.
fn checkpoint_matches(
    live: &FerexArray,
    rebuilt: &FerexArray,
    mirror: &BTreeMap<u64, Vec<u32>>,
    probes: &[Vec<u32>],
) -> bool {
    let ids = live.live_ids();
    let mirror_ids: Vec<u64> = mirror.keys().copied().collect();
    if ids != rebuilt.live_ids() || ids != mirror_ids {
        return false;
    }
    for (qi, q) in probes.iter().enumerate() {
        // Fixed query ids keep the sensing-noise stream (a no-op under the
        // corner config) identical on both sides.
        let (Ok(a), Ok(b)) = (live.search_at(q, qi as u64), rebuilt.search_at(q, qi as u64)) else {
            return false;
        };
        for &id in &ids {
            let (Some(sa), Some(sb)) = (live.slot_of(id), rebuilt.slot_of(id)) else {
                return false;
            };
            let (Some(da), Some(db)) = (a.distances.get(sa), b.distances.get(sb)) else {
                return false;
            };
            if da.to_bits() != db.to_bits() {
                return false;
            }
        }
    }
    true
}

/// Runs one mutation cell. See the module docs for the three contracts;
/// this covers the first two (rebuild equivalence + serving through
/// churn); [`run_churn_soak`] covers the endurance leg.
///
/// # Panics
///
/// Panics on malformed specs (zero replicas, initial set exceeding
/// capacity, invalid quorum) and on any backend error, like
/// [`run_sweep`](crate::harness::run_sweep).
pub fn run_mutation(spec: &MutationSpec) -> MutationScenario {
    assert!(spec.replicas >= 1, "mutation soak needs at least one replica");
    assert!(spec.initial >= 2, "mutation soak needs at least two initial ids");
    assert!(spec.initial + 2 <= spec.capacity, "initial set must leave slot headroom");
    assert!(spec.checkpoint_every > 0 && spec.maintenance_every > 0, "cadences must be nonzero");
    // lint:allow(panic-safety/expect, reason = "spec bounds asserted above; an error past them is a harness bug")
    run_mutation_inner(spec).expect("mutation schedule must stay within spec bounds")
}

fn run_mutation_inner(spec: &MutationSpec) -> Result<MutationScenario, FerexError> {
    let encoding = crate::harness::encoding_for(spec.metric, spec.bits)?;
    let mut data_rng = StdRng::seed_from_u64(spec.derived_seed(0));
    let initial = gen_vectors(spec.initial, spec.dim, spec.bits, &mut data_rng);
    let probes = gen_vectors(4, spec.dim, spec.bits, &mut data_rng);
    let mut mirror: BTreeMap<u64, Vec<u32>> =
        initial.into_iter().enumerate().map(|(i, v)| (i as u64, v)).collect();

    let policy = MutationPolicy::with_capacity(spec.capacity);
    let base_seed = spec.derived_seed(1);
    let mut replicas = Vec::with_capacity(spec.replicas);
    for i in 0..spec.replicas {
        replicas.push(build_replica(
            spec,
            &encoding,
            policy,
            derive_replica_seed(base_seed, i as u64),
            &mirror,
        )?);
    }
    let stored = replicas.first().map(|r| r.stored().to_vec()).unwrap_or_default();
    let rp = ReplicaPolicy {
        quorum: QuorumPolicy { reads: spec.reads, agree: spec.agree },
        ..Default::default()
    };
    let mut set = ReplicaSet::new(replicas, stored, spec.metric, rp);

    let op_seed = spec.derived_seed(2);
    let mut next_id = spec.initial as u64;
    let (mut inserts, mut updates, mut deletes) = (0u64, 0u64, 0u64);
    let (mut searches, mut hits) = (0usize, 0usize);
    let (mut checkpoints, mut matched) = (0usize, 0usize);
    let mut rotated = 0u64;

    for op in 0..spec.n_ops {
        let draw = splitmix64(op_seed ^ splitmix64(op as u64));
        let ids: Vec<u64> = mirror.keys().copied().collect();
        let pick = |salt: u64| -> Option<u64> {
            if ids.is_empty() {
                return None;
            }
            ids.get((splitmix64(draw ^ splitmix64(salt)) % ids.len() as u64) as usize).copied()
        };
        let kind = draw % 4;
        if kind == 0 && mirror.len() + 2 <= spec.capacity {
            // Insert a fresh id; keep headroom so wear rotation always has
            // free slots to move onto.
            let v = gen_vectors(1, spec.dim, spec.bits, &mut data_rng)
                .pop()
                .ok_or(FerexError::Empty)?;
            set.insert(next_id, v.clone())?;
            mirror.insert(next_id, v);
            next_id += 1;
            inserts += 1;
        } else if kind == 3 {
            // Serve through the quorum path while the churn is live. The
            // query is a live vector, so the mirror minimum is zero and
            // any id at that distance is a tie-safe hit.
            let id = pick(11).ok_or(FerexError::Empty)?;
            let q = mirror.get(&id).cloned().ok_or(FerexError::UnknownId { id })?;
            let served = set.serve(&q)?;
            let best =
                mirror.values().map(|v| spec.metric.vector_distance(&q, v)).min().unwrap_or(0);
            let got = set
                .replica(0)
                .id_at(served.outcome.nearest)
                .and_then(|gid| mirror.get(&gid))
                .map(|v| spec.metric.vector_distance(&q, v));
            hits += usize::from(got == Some(best));
            searches += 1;
        } else if kind == 2 && mirror.len() > 2 {
            let id = pick(7).ok_or(FerexError::Empty)?;
            set.delete(id)?;
            mirror.remove(&id);
            deletes += 1;
        } else {
            let id = pick(3).ok_or(FerexError::Empty)?;
            let v = gen_vectors(1, spec.dim, spec.bits, &mut data_rng)
                .pop()
                .ok_or(FerexError::Empty)?;
            set.update(id, v.clone())?;
            mirror.insert(id, v);
            updates += 1;
        }
        if (op + 1) % spec.maintenance_every == 0 {
            rotated += set.maintenance().rotated as u64;
        }
        if (op + 1) % spec.checkpoint_every == 0 {
            // From-scratch rebuild of the current logical contents, same
            // backend stream as replica 0.
            let rebuilt =
                build_replica(spec, &encoding, policy, derive_replica_seed(base_seed, 0), &mirror)?;
            checkpoints += 1;
            matched += usize::from(checkpoint_matches(set.replica(0), &rebuilt, &mirror, &probes));
        }
    }

    let stats = set.stats();
    Ok(MutationScenario {
        name: spec.name(),
        metric: crate::harness::metric_label(spec.metric).to_string(),
        backend: spec.backend.label().to_string(),
        dim: spec.dim,
        capacity: spec.capacity,
        initial: spec.initial,
        ops: spec.n_ops,
        replicas: spec.replicas,
        inserts,
        updates,
        deletes,
        checkpoints,
        checkpoints_matched: matched,
        searches,
        recall_milli: (hits * 1000).checked_div(searches).unwrap_or(0) as u64,
        oracle_fallbacks: stats.oracle_fallbacks,
        disagreements: stats.disagreements,
        live_rows: mirror.len(),
        wear: WearRow::from_summary(&set.wear(), rotated),
    })
}

/// Runs the endurance soak: a hot-id churn (two ids absorb every update)
/// against a single Ideal-backend array, once with wear leveling and once
/// without, identical op streams otherwise.
///
/// # Panics
///
/// Panics on backend errors; the schedule itself is statically in-bounds.
pub fn run_churn_soak(seed: u64) -> ChurnSoak {
    // lint:allow(panic-safety/expect, reason = "fixed schedule stays within the fixed capacity; an error is a harness bug")
    run_churn_soak_inner(seed).expect("churn soak must stay within its fixed bounds")
}

const CHURN_CAPACITY: usize = 32;
const CHURN_LIVE: usize = 24;
const CHURN_ROUNDS: usize = 400;
const CHURN_HOT_IDS: usize = 2;
const CHURN_MAINTENANCE: usize = 8;

fn run_churn_soak_inner(seed: u64) -> Result<ChurnSoak, FerexError> {
    let encoding = crate::harness::encoding_for(DistanceMetric::Hamming, 2)?;
    let leg = |leveling: bool| -> Result<WearRow, FerexError> {
        let mut policy = MutationPolicy::with_capacity(CHURN_CAPACITY);
        policy.wear_leveling = leveling;
        let cfg = CircuitConfig { seed, ..Default::default() };
        let mut a = FerexArray::new(
            Technology::default(),
            encoding.clone(),
            4,
            BackendKind::Ideal.backend(cfg),
        );
        a.enable_mutation(policy)?;
        for id in 0..CHURN_LIVE as u64 {
            a.insert(id, vec![(id % 4) as u32; 4])?; // lint:allow(cast-truncation/narrowing, reason = "value < 4 by the modulo")
        }
        a.program();
        let mut rotated = 0u64;
        for round in 0..CHURN_ROUNDS as u64 {
            let id = round % CHURN_HOT_IDS as u64;
            a.update_id(id, vec![(round % 4) as u32; 4])?; // lint:allow(cast-truncation/narrowing, reason = "value < 4 by the modulo")
            if (round + 1) % CHURN_MAINTENANCE as u64 == 0 {
                rotated += a.maintenance().rotated as u64;
            }
        }
        Ok(WearRow::from_summary(&a.wear(), rotated))
    };
    Ok(ChurnSoak {
        capacity: CHURN_CAPACITY,
        live: CHURN_LIVE,
        rounds: CHURN_ROUNDS,
        hot_ids: CHURN_HOT_IDS,
        maintenance_period: CHURN_MAINTENANCE,
        leveled: leg(true)?,
        unleveled: leg(false)?,
    })
}

/// The standard mutation cells: every metric on the bit-exact Ideal
/// backend, plus a corner-`Noisy` and a corner-`Circuit` Hamming cell
/// proving the delta-program path byte-matches rebuilds on the device
/// models too.
pub fn standard_mutation_specs(seed: u64) -> Vec<MutationSpec> {
    let cell = |metric, backend| MutationSpec {
        metric,
        backend,
        bits: 2,
        dim: 6,
        capacity: 24,
        initial: 12,
        n_ops: 96,
        checkpoint_every: 24,
        maintenance_every: 16,
        replicas: 2,
        reads: 2,
        agree: 2,
        seed,
    };
    let mut specs: Vec<MutationSpec> =
        DistanceMetric::ALL.into_iter().map(|m| cell(m, BackendKind::Ideal)).collect();
    specs.push(cell(DistanceMetric::Hamming, BackendKind::Noisy));
    specs.push(cell(DistanceMetric::Hamming, BackendKind::Circuit));
    specs
}

/// Runs the standard cells plus the endurance soak into the archived
/// `ferex-mutation-v1` report.
pub fn standard_mutation_report(seed: u64) -> MutationReport {
    MutationReport {
        seed,
        bits: 2,
        scenarios: standard_mutation_specs(seed).iter().map(run_mutation).collect(),
        churn: run_churn_soak(seed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_specs_cover_all_metrics_and_device_corners() {
        let specs = standard_mutation_specs(42);
        assert_eq!(specs.len(), 5);
        assert_eq!(specs.iter().filter(|s| s.backend == BackendKind::Ideal).count(), 3);
        assert!(specs.iter().any(|s| s.backend == BackendKind::Noisy));
        assert!(specs.iter().any(|s| s.backend == BackendKind::Circuit));
        for s in &specs {
            assert!(s.initial + 2 <= s.capacity);
            assert_eq!(s.seed, 42);
        }
    }

    #[test]
    fn ideal_cell_matches_rebuilds_and_serves_perfectly() {
        let spec = MutationSpec {
            metric: DistanceMetric::Hamming,
            backend: BackendKind::Ideal,
            bits: 2,
            dim: 4,
            capacity: 16,
            initial: 6,
            n_ops: 48,
            checkpoint_every: 12,
            maintenance_every: 8,
            replicas: 1,
            reads: 1,
            agree: 1,
            seed: 7,
        };
        let s = run_mutation(&spec);
        assert_eq!(s.checkpoints, 4);
        assert_eq!(s.checkpoints_matched, s.checkpoints, "rebuild equivalence must hold");
        assert!(s.searches > 0, "schedule must exercise the serving path");
        assert_eq!(s.recall_milli, 1000, "churn must not cost recall");
        assert_eq!(s.inserts + s.updates + s.deletes + s.searches as u64, s.ops as u64);
        assert!(s.wear.total_writes > 0);
    }

    #[test]
    fn corner_circuit_cell_byte_matches_rebuilds() {
        let mut spec = standard_mutation_specs(42)
            .into_iter()
            .find(|s| s.backend == BackendKind::Circuit)
            .unwrap();
        spec.n_ops = 24;
        spec.checkpoint_every = 12;
        let s = run_mutation(&spec);
        assert!(s.checkpoints >= 2);
        assert_eq!(s.checkpoints_matched, s.checkpoints);
        assert_eq!(s.recall_milli, 1000);
    }

    #[test]
    fn churn_soak_separates_leveled_from_unleveled_wear() {
        let churn = run_churn_soak(42);
        assert!(
            churn.leveled.imbalance_milli <= 2000,
            "leveled max/mean {} per-mille",
            churn.leveled.imbalance_milli
        );
        assert!(
            churn.unleveled.imbalance_milli >= 5000,
            "unleveled max/mille {} per-mille",
            churn.unleveled.imbalance_milli
        );
        assert!(churn.leveled.rotated > 0, "leveling must actually rotate rows");
        assert_eq!(churn.unleveled.rotated, 0, "unleveled leg must not rotate");
    }

    #[test]
    fn mutation_runs_are_byte_reproducible() {
        let a = standard_mutation_report(42).to_json();
        let b = standard_mutation_report(42).to_json();
        assert_eq!(a, b);
        let other = standard_mutation_report(1337).to_json();
        assert_eq!(a.lines().count(), other.lines().count(), "same shape for any seed");
    }
}
