//! Pure-digital nearest-neighbor reference oracle.
//!
//! Computes exact symbol-domain distances with `u64` integer arithmetic —
//! no currents, no voltages, no floats — and ranks rows by
//! `(distance, row index)` ascending. That tie policy matches the analog
//! chain end to end: an ideal LTA reports the *first* minimal row
//! ([`ferex_analog::lta::LtaParams::sense`]) and iterative masking pops
//! strictly-smaller rows first ([`ferex_analog::lta::LtaParams::sense_k`]),
//! so on a fault-free Ideal backend every oracle answer must be reproduced
//! bit-exactly.

use ferex_core::DistanceMetric;

/// Exact digital reference for nearest-neighbor search over a stored
/// matrix.
///
/// # Examples
///
/// ```
/// use ferex_conformance::Oracle;
/// use ferex_core::DistanceMetric;
///
/// let oracle = Oracle::new(DistanceMetric::Hamming, vec![vec![0, 1], vec![3, 3]]);
/// assert_eq!(oracle.distances(&[0, 1]), vec![0, 3]);
/// assert_eq!(oracle.nearest(&[0, 1]), 0);
/// assert_eq!(oracle.nearest_k(&[0, 1], 2), vec![0, 1]);
/// ```
#[derive(Debug, Clone)]
pub struct Oracle {
    metric: DistanceMetric,
    stored: Vec<Vec<u32>>,
}

impl Oracle {
    /// Builds an oracle over `stored` row vectors.
    ///
    /// # Panics
    ///
    /// Panics if `stored` is empty or its rows have unequal lengths.
    pub fn new(metric: DistanceMetric, stored: Vec<Vec<u32>>) -> Self {
        assert!(!stored.is_empty(), "oracle needs at least one stored row");
        let dim = stored[0].len();
        assert!(stored.iter().all(|r| r.len() == dim), "stored rows must share one dimension");
        Oracle { metric, stored }
    }

    /// The metric this oracle ranks by.
    pub fn metric(&self) -> DistanceMetric {
        self.metric
    }

    /// The stored rows.
    pub fn stored(&self) -> &[Vec<u32>] {
        &self.stored
    }

    /// Exact integer distance from `query` to every stored row.
    ///
    /// # Panics
    ///
    /// Panics if `query` has the wrong dimension.
    pub fn distances(&self, query: &[u32]) -> Vec<u64> {
        self.stored.iter().map(|row| self.metric.vector_distance(query, row)).collect()
    }

    /// Index of the nearest row; ties break to the lowest index.
    pub fn nearest(&self, query: &[u32]) -> usize {
        self.rank(query)[0]
    }

    /// The `k` nearest row indices, ranked by `(distance, index)`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or exceeds the stored count.
    pub fn nearest_k(&self, query: &[u32], k: usize) -> Vec<usize> {
        assert!(k > 0 && k <= self.stored.len(), "k = {k} out of range");
        let mut order = self.rank(query);
        order.truncate(k);
        order
    }

    /// Full ranking of all rows by `(distance, index)` ascending.
    pub fn rank(&self, query: &[u32]) -> Vec<usize> {
        let d = self.distances(query);
        let mut order: Vec<usize> = (0..d.len()).collect();
        order.sort_by_key(|&i| (d[i], i));
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances_match_the_metric_definition() {
        let stored = vec![vec![0, 1, 2, 3], vec![3, 2, 1, 0], vec![1, 1, 1, 1]];
        let q = [0u32, 1, 2, 0];
        for metric in DistanceMetric::ALL {
            let oracle = Oracle::new(metric, stored.clone());
            let d = oracle.distances(&q);
            for (i, row) in stored.iter().enumerate() {
                assert_eq!(d[i], metric.vector_distance(&q, row), "{metric} row {i}");
            }
        }
    }

    #[test]
    fn ties_break_to_the_lowest_index() {
        // Rows 0 and 1 are equidistant from the query under Hamming.
        let oracle = Oracle::new(DistanceMetric::Hamming, vec![vec![0, 1], vec![1, 0], vec![0, 0]]);
        let q = [0u32, 0];
        assert_eq!(oracle.distances(&q), vec![1, 1, 0]);
        assert_eq!(oracle.nearest(&q), 2);
        assert_eq!(oracle.nearest_k(&q, 3), vec![2, 0, 1], "tied rows in index order");
    }

    #[test]
    fn rank_is_a_permutation_sorted_by_distance() {
        let stored: Vec<Vec<u32>> = (0..6).map(|r| vec![r as u32 % 4; 5]).collect();
        let oracle = Oracle::new(DistanceMetric::Manhattan, stored);
        let order = oracle.rank(&[2; 5]);
        let d = oracle.distances(&[2; 5]);
        let mut seen = order.clone();
        seen.sort_unstable();
        assert_eq!(seen, (0..6).collect::<Vec<_>>());
        for w in order.windows(2) {
            assert!((d[w[0]], w[0]) < (d[w[1]], w[1]), "out of order: {order:?} over {d:?}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one stored row")]
    fn empty_matrix_is_rejected() {
        let _ = Oracle::new(DistanceMetric::Hamming, Vec::new());
    }

    #[test]
    #[should_panic(expected = "share one dimension")]
    fn ragged_matrix_is_rejected() {
        let _ = Oracle::new(DistanceMetric::Hamming, vec![vec![0, 1], vec![0]]);
    }
}
