//! Deterministic chaos soak: replicated serving under faults, kills, and
//! scheduled scrubs.
//!
//! A chaos run drives a [`ReplicaSet`] through a long query stream while a
//! seeded schedule injects adversity — one replica carries a hard-fault
//! plan, another is killed mid-stream, and maintenance scrubs fire on a
//! fixed period. Recall@1 against the digital oracle is measured over the
//! whole stream; the serving contract under test is that the quorum +
//! fallback ladder keeps recall at the oracle level for as long as a
//! healthy replica (or the digital fallback) can answer.
//!
//! Everything is derived from one seed through the same domain-separated
//! streams as [`run_sweep`](crate::harness::run_sweep): the stored matrix
//! and query set are byte-identical to a degradation sweep with the same
//! (metric, backend, fault, bits) coordinates, and replica `i`'s backend
//! seed is [`derive_replica_seed`] of the sweep's trial-0 seed. A chaos
//! soak with one replica, a 1/1 quorum, no kills and no repair policy
//! therefore reproduces the PR 2/PR 3 degradation baseline exactly — the
//! supervisor adds zero drift when its features are disabled. Virtual tick
//! clocks (no wall time) make the whole report byte-reproducible.

use crate::harness::{gen_unambiguous_queries, gen_vectors, BackendKind, FaultKind, SweepSpec};
use crate::oracle::Oracle;
use crate::report::{ChaosCurve, ChaosPoint, ChaosReport};
use ferex_analog::lta::LtaParams;
use ferex_core::{
    derive_replica_seed, CircuitConfig, DistanceMetric, FerexArray, QuorumPolicy, RepairPolicy,
    ReplicaPolicy, ReplicaSet,
};
use ferex_fefet::{FaultPlan, Technology, VariationModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One cell of the chaos matrix: a replicated serving soak over rising
/// fault rates on the faulted replica.
#[derive(Debug, Clone)]
pub struct ChaosSpec {
    /// Distance metric under test.
    pub metric: DistanceMetric,
    /// Stochastic backend under test.
    pub backend: BackendKind,
    /// Fault class injected into the faulted replica.
    pub fault: FaultKind,
    /// Symbol bit width.
    pub bits: u32,
    /// Symbols per vector.
    pub dim: usize,
    /// Stored rows per replica.
    pub rows: usize,
    /// Length of the served query stream.
    pub n_queries: usize,
    /// Fault rates applied to the faulted replica, ascending; 0.0 anchors
    /// the fault-free availability point.
    pub rates: Vec<f64>,
    /// Replica count.
    pub replicas: usize,
    /// Quorum reads per query.
    pub reads: usize,
    /// Quorum agreement threshold.
    pub agree: usize,
    /// Which replica carries the fault plan (the others stay clean).
    pub faulted_replica: usize,
    /// Replica killed mid-stream, if any.
    pub kill_replica: Option<usize>,
    /// Query index at which the kill fires.
    pub kill_at_query: usize,
    /// Scheduled maintenance scrub period in queries; 0 disables.
    pub scrub_period: usize,
    /// Spare rows granted to every replica's repair policy; 0 runs without
    /// a repair policy (plain programming, the PR 2 baseline posture).
    pub spare_rows: usize,
    /// Base seed everything derives from.
    pub seed: u64,
}

impl ChaosSpec {
    /// The degradation-sweep spec this chaos run shares its data and trial
    /// seeds with: same (metric, backend, fault, bits) coordinates, one
    /// trial, recall@1 only.
    pub fn sweep_spec(&self) -> SweepSpec {
        SweepSpec {
            metric: self.metric,
            backend: self.backend,
            fault: self.fault,
            bits: self.bits,
            dim: self.dim,
            rows: self.rows,
            n_queries: self.n_queries,
            trials: 1,
            k: 1,
            rates: self.rates.clone(),
            seed: self.seed,
        }
    }
}

/// Runs one chaos soak: for each rate, build the replica set (faulted
/// replica carrying `fault.plan(rate)`), serve the query stream
/// sequentially with the seeded kill and scrub schedule, and measure
/// recall@1 plus the supervisor's resilience counters.
///
/// # Panics
///
/// Panics on malformed specs (no rates, indices out of range, invalid
/// quorum) and on any backend error, like
/// [`run_sweep`](crate::harness::run_sweep).
pub fn run_chaos(spec: &ChaosSpec) -> ChaosCurve {
    assert!(!spec.rates.is_empty(), "chaos soak needs at least one rate");
    assert!(spec.replicas >= 1, "chaos soak needs at least one replica");
    assert!(spec.faulted_replica < spec.replicas, "faulted replica out of range");
    if let Some(k) = spec.kill_replica {
        assert!(k < spec.replicas, "killed replica out of range");
    }
    let sweep = spec.sweep_spec();
    let encoding =
        crate::harness::encoding_for(spec.metric, spec.bits).expect("sizing must succeed");
    let mut data_rng = StdRng::seed_from_u64(sweep.derived_seed(0));
    let stored = gen_vectors(spec.rows, spec.dim, spec.bits, &mut data_rng);
    let oracle = Oracle::new(spec.metric, stored.clone());
    let queries =
        gen_unambiguous_queries(&oracle, spec.n_queries, spec.dim, spec.bits, &mut data_rng);
    let expected: Vec<usize> = queries.iter().map(|q| oracle.nearest(q)).collect();
    // Replica seeds branch off the sweep's trial-0 seed, so replica 0 of a
    // 1-replica soak is byte-identical to run_sweep's trial-0 array.
    let base_seed = sweep.derived_seed(1);

    let mut points = Vec::with_capacity(spec.rates.len());
    for &rate in &spec.rates {
        let mut replicas = Vec::with_capacity(spec.replicas);
        for i in 0..spec.replicas {
            let faults =
                if i == spec.faulted_replica { spec.fault.plan(rate) } else { FaultPlan::none() };
            let cfg = CircuitConfig {
                variation: VariationModel::none(),
                lta: LtaParams::ideal(),
                faults,
                seed: derive_replica_seed(base_seed, i as u64),
                ..Default::default()
            };
            let mut array = FerexArray::new(
                Technology::default(),
                encoding.clone(),
                spec.dim,
                spec.backend.backend(cfg),
            );
            array.store_all(stored.iter().cloned()).expect("in-range by construction");
            if spec.spare_rows > 0 {
                // lint:allow(panic-safety/expect, reason = "standard chaos spec builds a valid policy")
                array
                    .set_repair_policy(RepairPolicy {
                        spare_rows: spec.spare_rows,
                        sentinel_rows: 1,
                        ..Default::default()
                    })
                    .expect("valid policy");
                array.program_verified().expect("verify budget is bounded");
            } else {
                array.program();
            }
            replicas.push(array);
        }
        let policy = ReplicaPolicy {
            quorum: QuorumPolicy { reads: spec.reads, agree: spec.agree },
            ..Default::default()
        };
        let mut set = ReplicaSet::new(replicas, stored.clone(), spec.metric, policy);

        let mut hits = 0usize;
        for (qi, (query, want)) in queries.iter().zip(&expected).enumerate() {
            if let Some(k) = spec.kill_replica {
                if qi == spec.kill_at_query {
                    set.kill(k);
                }
            }
            if spec.scrub_period > 0 && qi > 0 && qi % spec.scrub_period == 0 {
                set.scrub_all();
            }
            let served = set.serve(query).expect("in-range by construction");
            hits += usize::from(served.outcome.nearest == *want);
        }
        let stats = set.stats();
        points.push(ChaosPoint {
            rate,
            recall_at_1: hits as f64 / spec.n_queries as f64,
            oracle_fallbacks: stats.oracle_fallbacks,
            disagreements: stats.disagreements,
            scrubs_escalated: stats.scrubs_escalated,
            scheduled_scrubs: stats.scheduled_scrubs,
            breaker_trips: stats.breaker_trips,
            replicas_alive: set.alive(),
        });
    }
    ChaosCurve {
        metric: crate::harness::metric_label(spec.metric).to_string(),
        backend: spec.backend.label().to_string(),
        fault: spec.fault.label().to_string(),
        rows: spec.rows,
        dim: spec.dim,
        n_queries: spec.n_queries,
        replicas: spec.replicas,
        reads: spec.reads,
        agree: spec.agree,
        spare_rows: spec.spare_rows,
        faulted_replica: spec.faulted_replica,
        kill_replica: spec.kill_replica,
        kill_at_query: spec.kill_at_query,
        scrub_period: spec.scrub_period,
        points,
    }
}

/// The fixed matrix behind the standard chaos report: every metric × the
/// stuck-at fault classes on the `Noisy` backend, three replicas with a
/// 2-of-2 quorum, replica 0 faulted, replica 1 killed mid-stream, scrubs
/// every 16 queries, and a 2-row spare pool so health-gated routing sees
/// real quarantine traffic.
pub fn standard_chaos_specs(seed: u64) -> Vec<ChaosSpec> {
    let mut specs = Vec::new();
    for metric in DistanceMetric::ALL {
        for fault in [FaultKind::Sa0, FaultKind::Sa1] {
            specs.push(ChaosSpec {
                metric,
                backend: BackendKind::Noisy,
                fault,
                bits: 2,
                dim: 12,
                rows: 16,
                n_queries: 60,
                rates: vec![0.0, 0.01, 0.02, 0.05],
                replicas: 3,
                reads: 2,
                agree: 2,
                faulted_replica: 0,
                kill_replica: Some(1),
                kill_at_query: 30,
                scrub_period: 16,
                spare_rows: 2,
                seed,
            });
        }
    }
    specs
}

/// Generates the standard machine-readable chaos report from one seed.
/// Deterministic: same seed, byte-identical report.
pub fn standard_chaos_report(seed: u64) -> ChaosReport {
    ChaosReport {
        seed,
        bits: 2,
        curves: standard_chaos_specs(seed).iter().map(run_chaos).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_matrix_is_stuck_at_over_all_metrics() {
        let specs = standard_chaos_specs(5);
        assert_eq!(specs.len(), 3 * 2);
        for spec in &specs {
            assert!(matches!(spec.fault, FaultKind::Sa0 | FaultKind::Sa1));
            assert_eq!(spec.replicas, 3);
            assert_eq!((spec.reads, spec.agree), (2, 2));
            assert_eq!(spec.rates[0], 0.0, "every soak anchors at the fault-free point");
            assert!(spec.kill_at_query < spec.n_queries, "the kill must land inside the stream");
            assert_ne!(
                Some(spec.faulted_replica),
                spec.kill_replica,
                "killing the faulted replica would leave nothing degraded to route around"
            );
        }
    }

    #[test]
    fn sweep_spec_adapter_preserves_data_coordinates() {
        let spec = standard_chaos_specs(9).remove(0);
        let sweep = spec.sweep_spec();
        assert_eq!(sweep.metric, spec.metric);
        assert_eq!(sweep.fault, spec.fault);
        assert_eq!(sweep.bits, spec.bits);
        assert_eq!(sweep.seed, spec.seed);
        assert_eq!(sweep.trials, 1);
        assert_eq!(sweep.k, 1);
    }
}
