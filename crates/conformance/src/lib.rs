#![forbid(unsafe_code)]
//! # ferex-conformance — golden-model differential conformance harness
//!
//! The correctness backbone of the stack: every backend, fault regime and
//! serving path is checked against a pure-digital reference before any
//! scaling work trusts it. Three layers:
//!
//! 1. [`oracle`] — an exact digital nearest-neighbor reference over any
//!    stored matrix, with the same deterministic tie policy as the analog
//!    sensing chain (lowest row index wins).
//! 2. [`harness`] — generators sweeping {metric × bits × backend ×
//!    batch-vs-sequential × fault plan}: bit-exact Ideal agreement,
//!    statistical-vs-device divergence tolerances, and recall degradation
//!    curves under rising fault rates.
//! 3. [`report`] — the machine-readable degradation report (hand-rolled
//!    JSON; the vendored `serde` is an inert stub) consumed by
//!    `ferex-bench`'s `robustness` binary and archived by CI.
//! 4. [`chaos`] and [`load`] — deterministic serving soaks: replicated
//!    serving under faults/kills/scrubs, and the virtual-time load
//!    simulator driving the adaptive batch-forming loop with seeded
//!    open/closed-loop arrivals and exact latency distributions.
//!
//! The contract every sweep asserts:
//!
//! * **(a)** the Ideal backend is *bit-exact* against the oracle for every
//!   metric, bit width, and serving path;
//! * **(b)** the statistical (`Noisy`) and device-level (`Circuit`)
//!   backends agree with each other within stated tolerances on identical
//!   fault maps;
//! * **(c)** accuracy (recall@1 / recall@k) degrades monotonically — within
//!   a stated sampling slack — as fault rates rise, reproducibly from a
//!   seed.

pub mod chaos;
pub mod harness;
pub mod load;
pub mod mutation;
pub mod oracle;
pub mod report;

pub use chaos::{run_chaos, standard_chaos_report, standard_chaos_specs, ChaosSpec};
pub use harness::{
    run_recovery, run_sweep, standard_recovery_report, standard_recovery_specs, standard_report,
    standard_specs, BackendKind, FaultKind, SweepSpec,
};
pub use load::{
    percentile, run_load, run_load_detailed, run_load_v2, standard_load_report,
    standard_load_specs, standard_load_v2_report, standard_load_v2_specs, ArrivalModel,
    BurstWindow, LoadDetail, LoadSpec,
};
pub use mutation::{
    run_churn_soak, run_mutation, standard_mutation_report, standard_mutation_specs, MutationSpec,
};
pub use oracle::Oracle;
pub use report::{
    ChaosCurve, ChaosPoint, ChaosReport, ChurnSoak, ConformanceReport, CurvePoint,
    DegradationCurve, LoadReport, LoadScenario, LoadV2Replica, LoadV2Report, LoadV2Scenario,
    MutationReport, MutationScenario, RecoveryCurve, RecoveryPoint, RecoveryReport, WearRow,
};
