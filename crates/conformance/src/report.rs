//! Machine-readable degradation report.
//!
//! Serialized by hand as JSON (the vendored `serde` is an inert stub, so no
//! derive machinery is available offline). The schema is versioned by the
//! `schema` field; consumers are `ferex-bench`'s `robustness` binary and
//! the CI conformance job, which archives the file as a build artifact.

use std::fmt::Write as _;

/// One sampled point of a degradation curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurvePoint {
    /// Injected per-cell fault rate.
    pub rate: f64,
    /// Fraction of queries whose device top-1 equals the oracle top-1.
    pub recall_at_1: f64,
    /// Fraction of queries whose device top-k contains the oracle top-1.
    pub recall_at_k: f64,
}

/// Recall-vs-fault-rate curve for one (metric, backend, fault) cell of the
/// sweep matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradationCurve {
    /// Metric label (`hamming`, `manhattan`, `euclidean2`).
    pub metric: String,
    /// Backend label (`noisy`, `circuit`).
    pub backend: String,
    /// Fault-type label (`sa0`, `sa1`, `open`, `short`).
    pub fault: String,
    /// Stored rows per trial array.
    pub rows: usize,
    /// Symbols per vector.
    pub dim: usize,
    /// Queries per trial.
    pub n_queries: usize,
    /// Independent arrays averaged per rate point.
    pub trials: u64,
    /// The `k` of `recall_at_k`.
    pub k: usize,
    /// Sampled points, in ascending rate order.
    pub points: Vec<CurvePoint>,
}

impl DegradationCurve {
    /// `true` if recall@1 never rises by more than `slack` between
    /// consecutive rate points — the monotone-degradation contract with a
    /// finite-sample allowance.
    pub fn is_monotone_within(&self, slack: f64) -> bool {
        self.points.windows(2).all(|w| w[1].recall_at_1 <= w[0].recall_at_1 + slack)
    }

    /// Total recall@1 drop from the first to the last rate point.
    pub fn total_drop(&self) -> f64 {
        match (self.points.first(), self.points.last()) {
            (Some(a), Some(b)) => a.recall_at_1 - b.recall_at_1,
            _ => 0.0,
        }
    }
}

/// The full conformance degradation report.
#[derive(Debug, Clone, PartialEq)]
pub struct ConformanceReport {
    /// Base seed the whole sweep derives from.
    pub seed: u64,
    /// Symbol bit width of the sweep.
    pub bits: u32,
    /// Curves for every (metric, backend, fault) combination swept.
    pub curves: Vec<DegradationCurve>,
}

/// Escapes a string for embedding in a JSON literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            // lint:allow(cast-truncation/narrowing, reason = "char to u32 is a lossless widening; chars are 21-bit scalars")
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats a finite `f64` as a JSON number (`Display` for `f64` emits the
/// shortest round-trip decimal, which is valid JSON for finite values).
fn json_num(x: f64) -> String {
    assert!(x.is_finite(), "report numbers must be finite, got {x}");
    format!("{x}")
}

impl ConformanceReport {
    /// Schema tag embedded in every serialized report.
    pub const SCHEMA: &'static str = "ferex-conformance-degradation-v1";

    /// Serializes the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"{}\",", json_escape(Self::SCHEMA));
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(out, "  \"bits\": {},", self.bits);
        out.push_str("  \"curves\": [\n");
        for (i, c) in self.curves.iter().enumerate() {
            out.push_str("    {\n");
            let _ = writeln!(out, "      \"metric\": \"{}\",", json_escape(&c.metric));
            let _ = writeln!(out, "      \"backend\": \"{}\",", json_escape(&c.backend));
            let _ = writeln!(out, "      \"fault\": \"{}\",", json_escape(&c.fault));
            let _ = writeln!(out, "      \"rows\": {},", c.rows);
            let _ = writeln!(out, "      \"dim\": {},", c.dim);
            let _ = writeln!(out, "      \"n_queries\": {},", c.n_queries);
            let _ = writeln!(out, "      \"trials\": {},", c.trials);
            let _ = writeln!(out, "      \"k\": {},", c.k);
            out.push_str("      \"points\": [\n");
            for (j, p) in c.points.iter().enumerate() {
                let _ = write!(
                    out,
                    "        {{\"rate\": {}, \"recall_at_1\": {}, \"recall_at_k\": {}}}",
                    json_num(p.rate),
                    json_num(p.recall_at_1),
                    json_num(p.recall_at_k),
                );
                out.push_str(if j + 1 < c.points.len() { ",\n" } else { "\n" });
            }
            out.push_str("      ]\n");
            out.push_str(if i + 1 < self.curves.len() { "    },\n" } else { "    }\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// One sampled point of a recall-recovery curve: the same faulted array
/// measured without and with the self-healing repair pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryPoint {
    /// Injected per-cell fault rate.
    pub rate: f64,
    /// recall@1 of the faulted array with repair disabled (PR 2 baseline).
    pub recall_faulted_1: f64,
    /// recall@k of the faulted array with repair disabled.
    pub recall_faulted_k: f64,
    /// recall@1 after write-verify + row sparing.
    pub recall_healed_1: f64,
    /// recall@k after write-verify + row sparing.
    pub recall_healed_k: f64,
    /// Logical rows quarantined across all trials at this rate.
    pub rows_quarantined: usize,
    /// Quarantined rows successfully remapped onto spares, summed over
    /// trials.
    pub rows_remapped: usize,
    /// Quarantined rows excluded because the spare pool ran dry, summed
    /// over trials.
    pub rows_excluded: usize,
}

/// Recovery curve for one (metric, backend, fault) cell of the sweep
/// matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryCurve {
    /// Metric label (`hamming`, `manhattan`, `euclidean2`).
    pub metric: String,
    /// Backend label (`noisy`, `circuit`).
    pub backend: String,
    /// Fault-type label (`sa0`, `sa1`, `open`, `short`).
    pub fault: String,
    /// Stored rows per trial array.
    pub rows: usize,
    /// Spare rows granted to the repair policy.
    pub spare_rows: usize,
    /// Symbols per vector.
    pub dim: usize,
    /// Queries per trial.
    pub n_queries: usize,
    /// Independent arrays averaged per rate point.
    pub trials: u64,
    /// The `k` of recall@k.
    pub k: usize,
    /// Sampled points, in ascending rate order.
    pub points: Vec<RecoveryPoint>,
}

impl RecoveryCurve {
    /// `true` if self-healing never lowers recall@1 below the no-repair
    /// baseline by more than `slack` at any rate point.
    pub fn never_regresses_within(&self, slack: f64) -> bool {
        self.points.iter().all(|p| p.recall_healed_1 >= p.recall_faulted_1 - slack)
    }
}

/// The full self-healing recall-recovery report.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    /// Base seed the whole sweep derives from.
    pub seed: u64,
    /// Symbol bit width of the sweep.
    pub bits: u32,
    /// Curves for every (metric, backend, fault) combination swept.
    pub curves: Vec<RecoveryCurve>,
}

impl RecoveryReport {
    /// Schema tag embedded in every serialized recovery report.
    pub const SCHEMA: &'static str = "ferex-conformance-recovery-v1";

    /// Serializes the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"{}\",", json_escape(Self::SCHEMA));
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(out, "  \"bits\": {},", self.bits);
        out.push_str("  \"curves\": [\n");
        for (i, c) in self.curves.iter().enumerate() {
            out.push_str("    {\n");
            let _ = writeln!(out, "      \"metric\": \"{}\",", json_escape(&c.metric));
            let _ = writeln!(out, "      \"backend\": \"{}\",", json_escape(&c.backend));
            let _ = writeln!(out, "      \"fault\": \"{}\",", json_escape(&c.fault));
            let _ = writeln!(out, "      \"rows\": {},", c.rows);
            let _ = writeln!(out, "      \"spare_rows\": {},", c.spare_rows);
            let _ = writeln!(out, "      \"dim\": {},", c.dim);
            let _ = writeln!(out, "      \"n_queries\": {},", c.n_queries);
            let _ = writeln!(out, "      \"trials\": {},", c.trials);
            let _ = writeln!(out, "      \"k\": {},", c.k);
            out.push_str("      \"points\": [\n");
            for (j, p) in c.points.iter().enumerate() {
                let _ = write!(
                    out,
                    "        {{\"rate\": {}, \"recall_faulted_1\": {}, \"recall_faulted_k\": {}, \
                     \"recall_healed_1\": {}, \"recall_healed_k\": {}, \
                     \"rows_quarantined\": {}, \"rows_remapped\": {}, \"rows_excluded\": {}}}",
                    json_num(p.rate),
                    json_num(p.recall_faulted_1),
                    json_num(p.recall_faulted_k),
                    json_num(p.recall_healed_1),
                    json_num(p.recall_healed_k),
                    p.rows_quarantined,
                    p.rows_remapped,
                    p.rows_excluded,
                );
                out.push_str(if j + 1 < c.points.len() { ",\n" } else { "\n" });
            }
            out.push_str("      ]\n");
            out.push_str(if i + 1 < self.curves.len() { "    },\n" } else { "    }\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// One sampled point of a chaos-soak availability curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosPoint {
    /// Fault rate injected into the faulted replica.
    pub rate: f64,
    /// Fraction of the stream whose served answer equals the oracle top-1.
    pub recall_at_1: f64,
    /// Queries answered by the digital fallback.
    pub oracle_fallbacks: u64,
    /// Queries on which at least one read replica dissented.
    pub disagreements: u64,
    /// Targeted scrubs escalated from dissents.
    pub scrubs_escalated: u64,
    /// Maintenance scrubs fired by the schedule.
    pub scheduled_scrubs: u64,
    /// Circuit-breaker trips across the soak.
    pub breaker_trips: u64,
    /// Replicas still alive at the end of the stream.
    pub replicas_alive: usize,
}

/// Availability curve of one chaos soak cell.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosCurve {
    /// Metric label (`hamming`, `manhattan`, `euclidean2`).
    pub metric: String,
    /// Backend label (`noisy`, `circuit`).
    pub backend: String,
    /// Fault-type label (`sa0`, `sa1`, `open`, `short`).
    pub fault: String,
    /// Stored rows per replica.
    pub rows: usize,
    /// Symbols per vector.
    pub dim: usize,
    /// Length of the served query stream.
    pub n_queries: usize,
    /// Replica count.
    pub replicas: usize,
    /// Quorum reads per query.
    pub reads: usize,
    /// Quorum agreement threshold.
    pub agree: usize,
    /// Spare rows of each replica's repair policy (0 = no repair).
    pub spare_rows: usize,
    /// Replica carrying the fault plan.
    pub faulted_replica: usize,
    /// Replica killed mid-stream, if any.
    pub kill_replica: Option<usize>,
    /// Query index of the kill.
    pub kill_at_query: usize,
    /// Maintenance scrub period in queries (0 = disabled).
    pub scrub_period: usize,
    /// Sampled points, in ascending rate order.
    pub points: Vec<ChaosPoint>,
}

impl ChaosCurve {
    /// `true` if recall@1 stays at or above `floor` at every rate point —
    /// the availability gate of the chaos soak.
    pub fn meets_recall_floor(&self, floor: f64) -> bool {
        self.points.iter().all(|p| p.recall_at_1 >= floor)
    }
}

/// The full chaos-soak availability report.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosReport {
    /// Base seed the whole soak derives from.
    pub seed: u64,
    /// Symbol bit width of the soak.
    pub bits: u32,
    /// Curves for every chaos cell soaked.
    pub curves: Vec<ChaosCurve>,
}

impl ChaosReport {
    /// Schema tag embedded in every serialized chaos report.
    pub const SCHEMA: &'static str = "ferex-conformance-chaos-v1";

    /// Serializes the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"{}\",", json_escape(Self::SCHEMA));
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(out, "  \"bits\": {},", self.bits);
        out.push_str("  \"curves\": [\n");
        for (i, c) in self.curves.iter().enumerate() {
            out.push_str("    {\n");
            let _ = writeln!(out, "      \"metric\": \"{}\",", json_escape(&c.metric));
            let _ = writeln!(out, "      \"backend\": \"{}\",", json_escape(&c.backend));
            let _ = writeln!(out, "      \"fault\": \"{}\",", json_escape(&c.fault));
            let _ = writeln!(out, "      \"rows\": {},", c.rows);
            let _ = writeln!(out, "      \"dim\": {},", c.dim);
            let _ = writeln!(out, "      \"n_queries\": {},", c.n_queries);
            let _ = writeln!(out, "      \"replicas\": {},", c.replicas);
            let _ = writeln!(out, "      \"reads\": {},", c.reads);
            let _ = writeln!(out, "      \"agree\": {},", c.agree);
            let _ = writeln!(out, "      \"spare_rows\": {},", c.spare_rows);
            let _ = writeln!(out, "      \"faulted_replica\": {},", c.faulted_replica);
            match c.kill_replica {
                Some(k) => {
                    let _ = writeln!(out, "      \"kill_replica\": {k},");
                }
                None => {
                    let _ = writeln!(out, "      \"kill_replica\": null,");
                }
            }
            let _ = writeln!(out, "      \"kill_at_query\": {},", c.kill_at_query);
            let _ = writeln!(out, "      \"scrub_period\": {},", c.scrub_period);
            out.push_str("      \"points\": [\n");
            for (j, p) in c.points.iter().enumerate() {
                let _ = write!(
                    out,
                    "        {{\"rate\": {}, \"recall_at_1\": {}, \"oracle_fallbacks\": {}, \
                     \"disagreements\": {}, \"scrubs_escalated\": {}, \"scheduled_scrubs\": {}, \
                     \"breaker_trips\": {}, \"replicas_alive\": {}}}",
                    json_num(p.rate),
                    json_num(p.recall_at_1),
                    p.oracle_fallbacks,
                    p.disagreements,
                    p.scrubs_escalated,
                    p.scheduled_scrubs,
                    p.breaker_trips,
                    p.replicas_alive,
                );
                out.push_str(if j + 1 < c.points.len() { ",\n" } else { "\n" });
            }
            out.push_str("      ]\n");
            out.push_str(if i + 1 < self.curves.len() { "    },\n" } else { "    }\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// One row of per-slot wear telemetry, the serialized form of
/// [`ferex_core::WearSummary`] plus the maintenance rotation count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WearRow {
    /// Hottest slot's program/erase cycle count.
    pub max_cycles: u64,
    /// Mean cycles across all slots, in 1/1000 cycles.
    pub mean_milli: u64,
    /// `max / mean` per-mille — the wear-leveling figure of merit.
    pub imbalance_milli: u64,
    /// Median slot cycles (nearest-rank).
    pub p50_cycles: u64,
    /// 90th-percentile slot cycles (nearest-rank).
    pub p90_cycles: u64,
    /// Total write attempts absorbed by the array.
    pub total_writes: u64,
    /// Compaction passes run.
    pub compactions: u64,
    /// Wear rotations applied by maintenance.
    pub rotated: u64,
}

impl WearRow {
    /// Flattens a core wear summary plus the soak's rotation counter.
    pub fn from_summary(w: &ferex_core::WearSummary, rotated: u64) -> Self {
        WearRow {
            max_cycles: w.max_cycles,
            mean_milli: w.mean_milli,
            imbalance_milli: w.imbalance_milli(),
            p50_cycles: w.p50_cycles,
            p90_cycles: w.p90_cycles,
            total_writes: w.total_writes,
            compactions: w.compactions,
            rotated,
        }
    }

    fn to_json_inline(self) -> String {
        format!(
            "{{\"max_cycles\": {}, \"mean_milli\": {}, \"imbalance_milli\": {}, \
             \"p50_cycles\": {}, \"p90_cycles\": {}, \"total_writes\": {}, \
             \"compactions\": {}, \"rotated\": {}}}",
            self.max_cycles,
            self.mean_milli,
            self.imbalance_milli,
            self.p50_cycles,
            self.p90_cycles,
            self.total_writes,
            self.compactions,
            self.rotated,
        )
    }
}

/// One cell of the mutation soak: op counters, rebuild-equivalence
/// checkpoints, churn-serving recall, and final wear telemetry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MutationScenario {
    /// Scenario label, `<metric>-<backend>`.
    pub name: String,
    /// Metric label (`hamming`, `manhattan`, `euclidean2`).
    pub metric: String,
    /// Backend label (`ideal`, `noisy`, `circuit`).
    pub backend: String,
    /// Symbols per vector.
    pub dim: usize,
    /// Physical slot capacity.
    pub capacity: usize,
    /// Live ids seeded before the churn.
    pub initial: usize,
    /// Ops in the interleaved schedule.
    pub ops: usize,
    /// Replica count the churn was served through.
    pub replicas: usize,
    /// Insert ops applied.
    pub inserts: u64,
    /// Update ops applied.
    pub updates: u64,
    /// Delete ops applied.
    pub deletes: u64,
    /// Rebuild-equivalence checkpoints taken.
    pub checkpoints: usize,
    /// Checkpoints whose id-keyed distances byte-matched the rebuild.
    pub checkpoints_matched: usize,
    /// Quorum searches served during the churn.
    pub searches: usize,
    /// recall@1 against the digital mirror, per-mille.
    pub recall_milli: u64,
    /// Digital-oracle fallbacks taken by the supervisor.
    pub oracle_fallbacks: u64,
    /// Quorum disagreements observed.
    pub disagreements: u64,
    /// Live ids at the end of the schedule.
    pub live_rows: usize,
    /// Final wear telemetry of replica 0.
    pub wear: WearRow,
}

/// The endurance soak: one hot-id churn with wear leveling and one
/// without, identical op streams otherwise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnSoak {
    /// Physical slot capacity.
    pub capacity: usize,
    /// Live ids held through the soak.
    pub live: usize,
    /// Update rounds.
    pub rounds: usize,
    /// Hot ids absorbing every update.
    pub hot_ids: usize,
    /// Maintenance cadence, in rounds.
    pub maintenance_period: usize,
    /// Wear with the rotation policy on.
    pub leveled: WearRow,
    /// Wear with the rotation policy off.
    pub unleveled: WearRow,
}

/// The archived online-mutation report: every standard cell plus the
/// endurance soak, with the three gates as methods.
#[derive(Debug, Clone, PartialEq)]
pub struct MutationReport {
    /// Base seed the whole soak derives from.
    pub seed: u64,
    /// Symbol bit width of the soak.
    pub bits: u32,
    /// One row per mutation cell.
    pub scenarios: Vec<MutationScenario>,
    /// The leveled-vs-unleveled endurance soak.
    pub churn: ChurnSoak,
}

impl MutationReport {
    /// Schema tag embedded in every serialized mutation report.
    pub const SCHEMA: &'static str = "ferex-mutation-v1";

    /// Gate (a): every checkpoint in every cell byte-matched its
    /// from-scratch rebuild (and at least one checkpoint ran).
    pub fn rebuild_equivalence_holds(&self) -> bool {
        !self.scenarios.is_empty()
            && self
                .scenarios
                .iter()
                .all(|s| s.checkpoints > 0 && s.checkpoints_matched == s.checkpoints)
    }

    /// Gate (b): churn-serving recall@1 stays at or above the floor in
    /// every cell (and every cell actually served searches).
    pub fn meets_recall_floor(&self, floor_milli: u64) -> bool {
        !self.scenarios.is_empty()
            && self.scenarios.iter().all(|s| s.searches > 0 && s.recall_milli >= floor_milli)
    }

    /// Gate (c): leveled wear imbalance stays within 2x the mean while
    /// the unleveled leg exceeds 5x.
    pub fn wear_gates_hold(&self) -> bool {
        self.churn.leveled.imbalance_milli <= 2000 && self.churn.unleveled.imbalance_milli >= 5000
    }

    /// All three gates at the acceptance floor (perfect recall).
    pub fn passes(&self) -> bool {
        self.rebuild_equivalence_holds() && self.meets_recall_floor(1000) && self.wear_gates_hold()
    }

    /// Serializes the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"{}\",", json_escape(Self::SCHEMA));
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(out, "  \"bits\": {},", self.bits);
        out.push_str("  \"scenarios\": [\n");
        for (i, s) in self.scenarios.iter().enumerate() {
            out.push_str("    {\n");
            let _ = writeln!(out, "      \"name\": \"{}\",", json_escape(&s.name));
            let _ = writeln!(out, "      \"metric\": \"{}\",", json_escape(&s.metric));
            let _ = writeln!(out, "      \"backend\": \"{}\",", json_escape(&s.backend));
            let _ = writeln!(out, "      \"dim\": {},", s.dim);
            let _ = writeln!(out, "      \"capacity\": {},", s.capacity);
            let _ = writeln!(out, "      \"initial\": {},", s.initial);
            let _ = writeln!(out, "      \"ops\": {},", s.ops);
            let _ = writeln!(out, "      \"replicas\": {},", s.replicas);
            let _ = writeln!(out, "      \"inserts\": {},", s.inserts);
            let _ = writeln!(out, "      \"updates\": {},", s.updates);
            let _ = writeln!(out, "      \"deletes\": {},", s.deletes);
            let _ = writeln!(out, "      \"checkpoints\": {},", s.checkpoints);
            let _ = writeln!(out, "      \"checkpoints_matched\": {},", s.checkpoints_matched);
            let _ = writeln!(out, "      \"searches\": {},", s.searches);
            let _ = writeln!(out, "      \"recall_milli\": {},", s.recall_milli);
            let _ = writeln!(out, "      \"oracle_fallbacks\": {},", s.oracle_fallbacks);
            let _ = writeln!(out, "      \"disagreements\": {},", s.disagreements);
            let _ = writeln!(out, "      \"live_rows\": {},", s.live_rows);
            let _ = writeln!(out, "      \"wear\": {}", s.wear.to_json_inline());
            out.push_str(if i + 1 < self.scenarios.len() { "    },\n" } else { "    }\n" });
        }
        out.push_str("  ],\n");
        out.push_str("  \"churn\": {\n");
        let _ = writeln!(out, "    \"capacity\": {},", self.churn.capacity);
        let _ = writeln!(out, "    \"live\": {},", self.churn.live);
        let _ = writeln!(out, "    \"rounds\": {},", self.churn.rounds);
        let _ = writeln!(out, "    \"hot_ids\": {},", self.churn.hot_ids);
        let _ = writeln!(out, "    \"maintenance_period\": {},", self.churn.maintenance_period);
        let _ = writeln!(out, "    \"leveled\": {},", self.churn.leveled.to_json_inline());
        let _ = writeln!(out, "    \"unleveled\": {}", self.churn.unleveled.to_json_inline());
        out.push_str("  }\n}\n");
        out
    }
}

/// One scenario row of the serving-loop load report: scenario shape,
/// serving counters, and the exact virtual-latency distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadScenario {
    /// Scenario name (`steady-open-4t`, `goodput-adaptive`, ...).
    pub name: String,
    /// Metric label (`hamming`, `manhattan`, `euclidean2`).
    pub metric: String,
    /// Backend label (`noisy`, `circuit`).
    pub backend: String,
    /// Stored rows per replica.
    pub rows: usize,
    /// Symbols per vector.
    pub dim: usize,
    /// Tenant count.
    pub tenants: usize,
    /// Arrival-model label (`open@64`, `closed@2`).
    pub arrivals: String,
    /// Burst-window label (`600..1800x4`, or `none`).
    pub burst: String,
    /// Tenant receiving half of all arrivals, if any.
    pub hot_tenant: Option<usize>,
    /// Requests in the stream.
    pub n_requests: usize,
    /// Batch former's target size.
    pub target_batch: usize,
    /// Per-request deadline in ticks.
    pub deadline_ticks: u64,
    /// Serving-queue capacity (0 = unbounded).
    pub queue_capacity: usize,
    /// DRR quantum.
    pub quantum: u32,
    /// Cost model: fixed ticks per batch activation.
    pub setup_ticks: u64,
    /// Cost model: ticks per query within a batch.
    pub per_query_ticks: u64,
    /// Replica count.
    pub replicas: usize,
    /// Quorum reads per query.
    pub reads: usize,
    /// Quorum agreement threshold.
    pub agree: usize,
    /// Kill-schedule label (`r1@600`, or `none`).
    pub kill: String,
    /// Revive-schedule label (`r0@1500`, or `none`).
    pub revive: String,
    /// Requests submitted.
    pub submitted: u64,
    /// Requests served to completion.
    pub served: u64,
    /// Requests shed by queue backpressure.
    pub shed_capacity: u64,
    /// Requests shed because their deadline became unmeetable.
    pub shed_deadline: u64,
    /// Batches served.
    pub batches: u64,
    /// Largest batch served.
    pub max_batch: u64,
    /// Virtual ticks the array spent serving.
    pub busy_ticks: u64,
    /// Virtual ticks from first arrival to last completion.
    pub ticks: u64,
    /// Median virtual latency (exact integer, nearest rank).
    pub p50: u64,
    /// 99th-percentile virtual latency.
    pub p99: u64,
    /// 99.9th-percentile virtual latency.
    pub p999: u64,
    /// Largest served latency.
    pub max_latency: u64,
    /// Served requests per 1000 virtual ticks.
    pub goodput_milli: u64,
    /// Fraction of served answers equal to the oracle top-1.
    pub recall_at_1: f64,
    /// Queries answered by the digital fallback.
    pub oracle_fallbacks: u64,
    /// Requests served per tenant.
    pub tenant_served: Vec<u64>,
    /// Requests shed per tenant.
    pub tenant_shed: Vec<u64>,
}

impl LoadScenario {
    /// `true` when no served request finished past its deadline — the
    /// latency-distribution gate (`p999 <= deadline` follows a fortiori).
    pub fn meets_deadline(&self) -> bool {
        self.max_latency <= self.deadline_ticks
    }

    /// `true` when the serving counters balance:
    /// `submitted == served + shed_capacity + shed_deadline`.
    pub fn counters_balance(&self) -> bool {
        self.submitted == self.served + self.shed_capacity + self.shed_deadline
    }
}

/// The full serving-loop load report.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// Base seed every scenario derives from.
    pub seed: u64,
    /// One row per scenario of the standard matrix.
    pub scenarios: Vec<LoadScenario>,
}

impl LoadReport {
    /// Schema tag embedded in every serialized load report.
    pub const SCHEMA: &'static str = "ferex-load-v1";

    /// Finds a scenario row by name.
    pub fn scenario(&self, name: &str) -> Option<&LoadScenario> {
        self.scenarios.iter().find(|s| s.name == name)
    }

    /// Serializes the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"{}\",", json_escape(Self::SCHEMA));
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        out.push_str("  \"scenarios\": [\n");
        for (i, s) in self.scenarios.iter().enumerate() {
            out.push_str("    {\n");
            let _ = writeln!(out, "      \"name\": \"{}\",", json_escape(&s.name));
            let _ = writeln!(out, "      \"metric\": \"{}\",", json_escape(&s.metric));
            let _ = writeln!(out, "      \"backend\": \"{}\",", json_escape(&s.backend));
            let _ = writeln!(out, "      \"rows\": {},", s.rows);
            let _ = writeln!(out, "      \"dim\": {},", s.dim);
            let _ = writeln!(out, "      \"tenants\": {},", s.tenants);
            let _ = writeln!(out, "      \"arrivals\": \"{}\",", json_escape(&s.arrivals));
            let _ = writeln!(out, "      \"burst\": \"{}\",", json_escape(&s.burst));
            match s.hot_tenant {
                Some(h) => {
                    let _ = writeln!(out, "      \"hot_tenant\": {h},");
                }
                None => {
                    let _ = writeln!(out, "      \"hot_tenant\": null,");
                }
            }
            let _ = writeln!(out, "      \"n_requests\": {},", s.n_requests);
            let _ = writeln!(out, "      \"target_batch\": {},", s.target_batch);
            let _ = writeln!(out, "      \"deadline_ticks\": {},", s.deadline_ticks);
            let _ = writeln!(out, "      \"queue_capacity\": {},", s.queue_capacity);
            let _ = writeln!(out, "      \"quantum\": {},", s.quantum);
            let _ = writeln!(out, "      \"setup_ticks\": {},", s.setup_ticks);
            let _ = writeln!(out, "      \"per_query_ticks\": {},", s.per_query_ticks);
            let _ = writeln!(out, "      \"replicas\": {},", s.replicas);
            let _ = writeln!(out, "      \"reads\": {},", s.reads);
            let _ = writeln!(out, "      \"agree\": {},", s.agree);
            let _ = writeln!(out, "      \"kill\": \"{}\",", json_escape(&s.kill));
            let _ = writeln!(out, "      \"revive\": \"{}\",", json_escape(&s.revive));
            let _ = writeln!(out, "      \"submitted\": {},", s.submitted);
            let _ = writeln!(out, "      \"served\": {},", s.served);
            let _ = writeln!(out, "      \"shed_capacity\": {},", s.shed_capacity);
            let _ = writeln!(out, "      \"shed_deadline\": {},", s.shed_deadline);
            let _ = writeln!(out, "      \"batches\": {},", s.batches);
            let _ = writeln!(out, "      \"max_batch\": {},", s.max_batch);
            let _ = writeln!(out, "      \"busy_ticks\": {},", s.busy_ticks);
            let _ = writeln!(out, "      \"ticks\": {},", s.ticks);
            let _ = writeln!(out, "      \"p50\": {},", s.p50);
            let _ = writeln!(out, "      \"p99\": {},", s.p99);
            let _ = writeln!(out, "      \"p999\": {},", s.p999);
            let _ = writeln!(out, "      \"max_latency\": {},", s.max_latency);
            let _ = writeln!(out, "      \"goodput_milli\": {},", s.goodput_milli);
            let _ = writeln!(out, "      \"recall_at_1\": {},", json_num(s.recall_at_1));
            let _ = writeln!(out, "      \"oracle_fallbacks\": {},", s.oracle_fallbacks);
            let _ = writeln!(out, "      \"tenant_served\": {},", json_u64_array(&s.tenant_served));
            let _ = writeln!(out, "      \"tenant_shed\": {}", json_u64_array(&s.tenant_shed));
            out.push_str(if i + 1 < self.scenarios.len() { "    },\n" } else { "    }\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Per-replica latency telemetry of one v2 scenario: the sampled
/// service-tick distribution seen by the scheduler, the EWMA it steered
/// by, and the hedge/brownout counters attributed to this replica.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadV2Replica {
    /// Replica index.
    pub replica: usize,
    /// Latency-model label (`healthy`, `slow@8000`, `degrading@1500`,
    /// `none`).
    pub model: String,
    /// Batch reads sampled against this replica (hedge duplicates
    /// included).
    pub reads: u64,
    /// Median sampled service ticks (nearest rank; 0 if never read).
    pub p50_ticks: u64,
    /// 99th-percentile sampled service ticks.
    pub p99_ticks: u64,
    /// Largest sampled service ticks.
    pub max_ticks: u64,
    /// Final EWMA slowdown estimate, per-mille of the expected cost.
    pub ewma_milli: u64,
    /// Hedges issued because this replica held the slow slot.
    pub hedged_against: u64,
    /// Hedges this replica won as the duplicate read.
    pub hedge_wins: u64,
    /// Final routing demerit, per-mille (0 when not browned out).
    pub demerit_milli: u64,
}

/// One scenario row of the v2 (latency-heterogeneity) load report:
/// scenario shape, the hedged serving leg, the unhedged leg of the same
/// spec, and per-replica latency telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadV2Scenario {
    /// Scenario name (`v2-one-slow-8x`, ...).
    pub name: String,
    /// Metric label (`hamming`, `manhattan`, `euclidean2`).
    pub metric: String,
    /// Backend label (`noisy`, `circuit`).
    pub backend: String,
    /// Arrival-model label (`open@40`, `closed@2`).
    pub arrivals: String,
    /// Requests in the stream.
    pub n_requests: usize,
    /// Batch former's target size.
    pub target_batch: usize,
    /// Per-request deadline in ticks.
    pub deadline_ticks: u64,
    /// Partial-batch flush age in ticks (0 = disabled).
    pub max_wait_ticks: u64,
    /// Replica count.
    pub replicas: usize,
    /// Quorum reads per query.
    pub reads: usize,
    /// Quorum agreement threshold.
    pub agree: usize,
    /// Slow-replica plan label (`r1@8000`, or `none`).
    pub slow: String,
    /// Degrading-replica plan label (`r1@1500`, or `none`).
    pub degrade: String,
    /// Hedge-policy label (`q=950,b=500`, or `none`).
    pub hedge: String,
    /// Brownout-policy label (`t=2500,rp=2048`, or `none`).
    pub brownout: String,
    /// Requests submitted (hedged leg).
    pub submitted: u64,
    /// Requests served to completion (hedged leg).
    pub served: u64,
    /// Requests shed by queue backpressure (hedged leg).
    pub shed_capacity: u64,
    /// Requests shed because their deadline became unmeetable (hedged
    /// leg).
    pub shed_deadline: u64,
    /// Batches served (hedged leg).
    pub batches: u64,
    /// Hedge duplicates issued.
    pub hedges_issued: u64,
    /// Hedges whose duplicate beat the slow primary.
    pub hedge_wins: u64,
    /// Brownout demotions.
    pub brownout_demotions: u64,
    /// Half-open re-probes of demoted replicas.
    pub reprobes: u64,
    /// Median virtual latency of the hedged leg.
    pub p50: u64,
    /// 99th-percentile virtual latency of the hedged leg.
    pub p99: u64,
    /// 99.9th-percentile virtual latency of the hedged leg.
    pub p999: u64,
    /// Largest served latency of the hedged leg.
    pub max_latency: u64,
    /// Served requests per 1000 virtual ticks, hedged leg.
    pub goodput_milli: u64,
    /// Fraction of served answers equal to the oracle top-1 (hedged leg).
    pub recall_at_1: f64,
    /// Requests served by the unhedged leg.
    pub unhedged_served: u64,
    /// Median virtual latency of the unhedged leg.
    pub unhedged_p50: u64,
    /// 99th-percentile virtual latency of the unhedged leg.
    pub unhedged_p99: u64,
    /// 99.9th-percentile virtual latency of the unhedged leg.
    pub unhedged_p999: u64,
    /// Served requests per 1000 virtual ticks, unhedged leg.
    pub unhedged_goodput_milli: u64,
    /// Per-replica latency telemetry of the hedged leg.
    pub per_replica: Vec<LoadV2Replica>,
}

impl LoadV2Scenario {
    /// `true` when the hedged leg's serving counters balance:
    /// `submitted == served + shed_capacity + shed_deadline`.
    pub fn counters_balance(&self) -> bool {
        self.submitted == self.served + self.shed_capacity + self.shed_deadline
    }
}

/// The full v2 (latency-heterogeneity) load report.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadV2Report {
    /// Base seed every scenario derives from.
    pub seed: u64,
    /// One row per scenario of the v2 matrix.
    pub scenarios: Vec<LoadV2Scenario>,
}

impl LoadV2Report {
    /// Schema tag embedded in every serialized v2 load report.
    pub const SCHEMA: &'static str = "ferex-load-v2";

    /// Finds a scenario row by name.
    pub fn scenario(&self, name: &str) -> Option<&LoadV2Scenario> {
        self.scenarios.iter().find(|s| s.name == name)
    }

    /// Serializes the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"{}\",", json_escape(Self::SCHEMA));
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        out.push_str("  \"scenarios\": [\n");
        for (i, s) in self.scenarios.iter().enumerate() {
            out.push_str("    {\n");
            let _ = writeln!(out, "      \"name\": \"{}\",", json_escape(&s.name));
            let _ = writeln!(out, "      \"metric\": \"{}\",", json_escape(&s.metric));
            let _ = writeln!(out, "      \"backend\": \"{}\",", json_escape(&s.backend));
            let _ = writeln!(out, "      \"arrivals\": \"{}\",", json_escape(&s.arrivals));
            let _ = writeln!(out, "      \"n_requests\": {},", s.n_requests);
            let _ = writeln!(out, "      \"target_batch\": {},", s.target_batch);
            let _ = writeln!(out, "      \"deadline_ticks\": {},", s.deadline_ticks);
            let _ = writeln!(out, "      \"max_wait_ticks\": {},", s.max_wait_ticks);
            let _ = writeln!(out, "      \"replicas\": {},", s.replicas);
            let _ = writeln!(out, "      \"reads\": {},", s.reads);
            let _ = writeln!(out, "      \"agree\": {},", s.agree);
            let _ = writeln!(out, "      \"slow\": \"{}\",", json_escape(&s.slow));
            let _ = writeln!(out, "      \"degrade\": \"{}\",", json_escape(&s.degrade));
            let _ = writeln!(out, "      \"hedge\": \"{}\",", json_escape(&s.hedge));
            let _ = writeln!(out, "      \"brownout\": \"{}\",", json_escape(&s.brownout));
            let _ = writeln!(out, "      \"submitted\": {},", s.submitted);
            let _ = writeln!(out, "      \"served\": {},", s.served);
            let _ = writeln!(out, "      \"shed_capacity\": {},", s.shed_capacity);
            let _ = writeln!(out, "      \"shed_deadline\": {},", s.shed_deadline);
            let _ = writeln!(out, "      \"batches\": {},", s.batches);
            let _ = writeln!(out, "      \"hedges_issued\": {},", s.hedges_issued);
            let _ = writeln!(out, "      \"hedge_wins\": {},", s.hedge_wins);
            let _ = writeln!(out, "      \"brownout_demotions\": {},", s.brownout_demotions);
            let _ = writeln!(out, "      \"reprobes\": {},", s.reprobes);
            let _ = writeln!(out, "      \"p50\": {},", s.p50);
            let _ = writeln!(out, "      \"p99\": {},", s.p99);
            let _ = writeln!(out, "      \"p999\": {},", s.p999);
            let _ = writeln!(out, "      \"max_latency\": {},", s.max_latency);
            let _ = writeln!(out, "      \"goodput_milli\": {},", s.goodput_milli);
            let _ = writeln!(out, "      \"recall_at_1\": {},", json_num(s.recall_at_1));
            let _ = writeln!(out, "      \"unhedged_served\": {},", s.unhedged_served);
            let _ = writeln!(out, "      \"unhedged_p50\": {},", s.unhedged_p50);
            let _ = writeln!(out, "      \"unhedged_p99\": {},", s.unhedged_p99);
            let _ = writeln!(out, "      \"unhedged_p999\": {},", s.unhedged_p999);
            let _ =
                writeln!(out, "      \"unhedged_goodput_milli\": {},", s.unhedged_goodput_milli);
            out.push_str("      \"per_replica\": [\n");
            for (j, r) in s.per_replica.iter().enumerate() {
                let _ = write!(
                    out,
                    "        {{\"replica\": {}, \"model\": \"{}\", \"reads\": {}, \
                     \"p50_ticks\": {}, \"p99_ticks\": {}, \"max_ticks\": {}, \
                     \"ewma_milli\": {}, \"hedged_against\": {}, \"hedge_wins\": {}, \
                     \"demerit_milli\": {}}}",
                    r.replica,
                    json_escape(&r.model),
                    r.reads,
                    r.p50_ticks,
                    r.p99_ticks,
                    r.max_ticks,
                    r.ewma_milli,
                    r.hedged_against,
                    r.hedge_wins,
                    r.demerit_milli,
                );
                out.push_str(if j + 1 < s.per_replica.len() { ",\n" } else { "\n" });
            }
            out.push_str("      ]\n");
            out.push_str(if i + 1 < self.scenarios.len() { "    },\n" } else { "    }\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Formats a `u64` slice as a compact JSON array literal.
fn json_u64_array(xs: &[u64]) -> String {
    let mut out = String::from("[");
    for (i, x) in xs.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{x}");
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ConformanceReport {
        ConformanceReport {
            seed: 42,
            bits: 2,
            curves: vec![DegradationCurve {
                metric: "hamming".into(),
                backend: "noisy".into(),
                fault: "sa1".into(),
                rows: 8,
                dim: 6,
                n_queries: 16,
                trials: 2,
                k: 3,
                points: vec![
                    CurvePoint { rate: 0.0, recall_at_1: 1.0, recall_at_k: 1.0 },
                    CurvePoint { rate: 0.25, recall_at_1: 0.5, recall_at_k: 0.75 },
                ],
            }],
        }
    }

    #[test]
    fn json_has_schema_and_all_points() {
        let json = sample().to_json();
        assert!(json.contains("\"schema\": \"ferex-conformance-degradation-v1\""));
        assert!(json.contains("\"metric\": \"hamming\""));
        assert!(json.contains("{\"rate\": 0, \"recall_at_1\": 1, \"recall_at_k\": 1}"));
        assert!(json.contains("{\"rate\": 0.25, \"recall_at_1\": 0.5, \"recall_at_k\": 0.75}"));
        // Structurally balanced.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn monotonicity_and_drop_helpers() {
        let report = sample();
        let curve = &report.curves[0];
        assert!(curve.is_monotone_within(0.0));
        assert!((curve.total_drop() - 0.5).abs() < 1e-12);
        let mut rising = curve.clone();
        rising.points.reverse();
        assert!(!rising.is_monotone_within(0.1));
        assert!(rising.is_monotone_within(0.6));
    }

    #[test]
    fn recovery_json_has_schema_and_balanced_structure() {
        let report = RecoveryReport {
            seed: 42,
            bits: 2,
            curves: vec![RecoveryCurve {
                metric: "hamming".into(),
                backend: "noisy".into(),
                fault: "sa0".into(),
                rows: 16,
                spare_rows: 32,
                dim: 12,
                n_queries: 24,
                trials: 3,
                k: 3,
                points: vec![RecoveryPoint {
                    rate: 0.01,
                    recall_faulted_1: 0.9,
                    recall_faulted_k: 0.95,
                    recall_healed_1: 1.0,
                    recall_healed_k: 1.0,
                    rows_quarantined: 4,
                    rows_remapped: 4,
                    rows_excluded: 0,
                }],
            }],
        };
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"ferex-conformance-recovery-v1\""));
        assert!(json.contains("\"spare_rows\": 32"));
        assert!(json.contains("\"recall_healed_1\": 1"));
        assert!(json.contains("\"rows_remapped\": 4"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(report.curves[0].never_regresses_within(0.0));
        let mut regressing = report.clone();
        regressing.curves[0].points[0].recall_healed_1 = 0.5;
        assert!(!regressing.curves[0].never_regresses_within(0.1));
    }

    #[test]
    fn chaos_json_has_schema_and_balanced_structure() {
        let report = ChaosReport {
            seed: 42,
            bits: 2,
            curves: vec![ChaosCurve {
                metric: "hamming".into(),
                backend: "noisy".into(),
                fault: "sa1".into(),
                rows: 16,
                dim: 12,
                n_queries: 60,
                replicas: 3,
                reads: 2,
                agree: 2,
                spare_rows: 2,
                faulted_replica: 0,
                kill_replica: Some(1),
                kill_at_query: 30,
                scrub_period: 16,
                points: vec![ChaosPoint {
                    rate: 0.01,
                    recall_at_1: 1.0,
                    oracle_fallbacks: 3,
                    disagreements: 3,
                    scrubs_escalated: 1,
                    scheduled_scrubs: 6,
                    breaker_trips: 0,
                    replicas_alive: 2,
                }],
            }],
        };
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"ferex-conformance-chaos-v1\""));
        assert!(json.contains("\"replicas\": 3"));
        assert!(json.contains("\"kill_replica\": 1"));
        assert!(json.contains("\"recall_at_1\": 1, \"oracle_fallbacks\": 3"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(report.curves[0].meets_recall_floor(0.99));
        let mut degraded = report.clone();
        degraded.curves[0].points[0].recall_at_1 = 0.9;
        assert!(!degraded.curves[0].meets_recall_floor(0.99));
        // A no-kill curve serializes the kill as an explicit null.
        let mut no_kill = report;
        no_kill.curves[0].kill_replica = None;
        assert!(no_kill.to_json().contains("\"kill_replica\": null"));
    }

    #[test]
    fn load_json_has_schema_and_balanced_structure() {
        let report = LoadReport {
            seed: 42,
            scenarios: vec![LoadScenario {
                name: "steady-open-4t".into(),
                metric: "hamming".into(),
                backend: "noisy".into(),
                rows: 16,
                dim: 8,
                tenants: 4,
                arrivals: "open@40".into(),
                burst: "none".into(),
                hot_tenant: None,
                n_requests: 240,
                target_batch: 16,
                deadline_ticks: 512,
                queue_capacity: 64,
                quantum: 1,
                setup_ticks: 52,
                per_query_ticks: 10,
                replicas: 2,
                reads: 1,
                agree: 1,
                kill: "none".into(),
                revive: "none".into(),
                submitted: 240,
                served: 230,
                shed_capacity: 6,
                shed_deadline: 4,
                batches: 20,
                max_batch: 16,
                busy_ticks: 3340,
                ticks: 6200,
                p50: 210,
                p99: 480,
                p999: 505,
                max_latency: 505,
                goodput_milli: 37,
                recall_at_1: 1.0,
                oracle_fallbacks: 0,
                tenant_served: vec![58, 57, 58, 57],
                tenant_shed: vec![3, 2, 3, 2],
            }],
        };
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"ferex-load-v1\""));
        assert!(json.contains("\"arrivals\": \"open@40\""));
        assert!(json.contains("\"hot_tenant\": null"));
        assert!(json.contains("\"tenant_served\": [58, 57, 58, 57]"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        let row = report.scenario("steady-open-4t").unwrap();
        assert!(row.meets_deadline());
        assert!(row.counters_balance());
        assert!(report.scenario("nope").is_none());
        let mut late = report.clone();
        late.scenarios[0].max_latency = 600;
        assert!(!late.scenarios[0].meets_deadline());
        let mut hot = report;
        hot.scenarios[0].hot_tenant = Some(0);
        assert!(hot.to_json().contains("\"hot_tenant\": 0"));
    }

    #[test]
    fn load_v2_json_has_schema_and_balanced_structure() {
        let report = LoadV2Report {
            seed: 42,
            scenarios: vec![LoadV2Scenario {
                name: "v2-one-slow-8x".into(),
                metric: "hamming".into(),
                backend: "noisy".into(),
                arrivals: "open@40".into(),
                n_requests: 240,
                target_batch: 16,
                deadline_ticks: 4096,
                max_wait_ticks: 256,
                replicas: 3,
                reads: 2,
                agree: 1,
                slow: "r1@8000".into(),
                degrade: "none".into(),
                hedge: "q=950,b=500".into(),
                brownout: "t=2500,rp=2048".into(),
                submitted: 240,
                served: 238,
                shed_capacity: 2,
                shed_deadline: 0,
                batches: 16,
                hedges_issued: 2,
                hedge_wins: 2,
                brownout_demotions: 1,
                reprobes: 0,
                p50: 280,
                p99: 540,
                p999: 560,
                max_latency: 560,
                goodput_milli: 37,
                recall_at_1: 1.0,
                unhedged_served: 238,
                unhedged_p50: 300,
                unhedged_p99: 2900,
                unhedged_p999: 3400,
                unhedged_goodput_milli: 9,
                per_replica: vec![
                    LoadV2Replica {
                        replica: 0,
                        model: "healthy".into(),
                        reads: 16,
                        p50_ticks: 212,
                        p99_ticks: 330,
                        max_ticks: 337,
                        ewma_milli: 1020,
                        hedged_against: 0,
                        hedge_wins: 0,
                        demerit_milli: 0,
                    },
                    LoadV2Replica {
                        replica: 1,
                        model: "slow@8000".into(),
                        reads: 1,
                        p50_ticks: 1696,
                        p99_ticks: 1696,
                        max_ticks: 1696,
                        ewma_milli: 2750,
                        hedged_against: 2,
                        hedge_wins: 0,
                        demerit_milli: 1750,
                    },
                ],
            }],
        };
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"ferex-load-v2\""));
        assert!(json.contains("\"slow\": \"r1@8000\""));
        assert!(json.contains("\"hedge\": \"q=950,b=500\""));
        assert!(json.contains("\"unhedged_p999\": 3400"));
        assert!(json.contains("\"model\": \"slow@8000\""));
        assert!(json.contains("\"demerit_milli\": 1750"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        let row = report.scenario("v2-one-slow-8x").unwrap();
        assert!(row.counters_balance());
        assert!(report.scenario("nope").is_none());
        let mut unbalanced = report.clone();
        unbalanced.scenarios[0].served = 1;
        assert!(!unbalanced.scenarios[0].counters_balance());
    }

    #[test]
    fn escaping_is_json_safe() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("tab\tend"), "tab\\u0009end");
    }
}
