//! Sweep generators: data, arrays, and recall-degradation campaigns.
//!
//! Everything here is seed-deterministic: the stored matrix, the query set,
//! each trial's backend configuration, and the fault maps all derive from
//! one base seed through domain-separated SplitMix64 mixes, so a report
//! regenerated from the same seed is byte-identical.
//!
//! Degradation sweeps run at the *fault-isolation corner* — zero
//! device-to-device variation and an ideal LTA — so recall@1 is exactly 1.0
//! at rate 0 and every drop below it is attributable to the injected
//! faults alone.

use crate::oracle::Oracle;
use crate::report::{
    ConformanceReport, CurvePoint, DegradationCurve, RecoveryCurve, RecoveryPoint, RecoveryReport,
};
use ferex_analog::lta::LtaParams;
use ferex_core::{
    find_minimal_cell, sizing_for, Backend, CellEncoding, CircuitConfig, DistanceMetric,
    FerexArray, FerexError, RepairPolicy,
};
use ferex_fefet::math::splitmix64;
use ferex_fefet::{FaultPlan, Technology, VariationModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Domain-separation salt for conformance data/trial seed derivation.
const CONFORMANCE_STREAM_SALT: u64 = 0xC0F0_44CE_5EED_7A11;

/// Which simulation backend a sweep exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// Exact functional model.
    Ideal,
    /// Statistical per-cell model.
    Noisy,
    /// Device-level crossbar model.
    Circuit,
}

impl BackendKind {
    /// The two stochastic backends fault sweeps cover.
    pub const STOCHASTIC: [BackendKind; 2] = [BackendKind::Noisy, BackendKind::Circuit];

    /// Report label.
    pub fn label(&self) -> &'static str {
        match self {
            BackendKind::Ideal => "ideal",
            BackendKind::Noisy => "noisy",
            BackendKind::Circuit => "circuit",
        }
    }

    /// Materializes the backend from a circuit configuration (ignored for
    /// `Ideal`).
    pub fn backend(&self, cfg: CircuitConfig) -> Backend {
        match self {
            BackendKind::Ideal => Backend::Ideal,
            BackendKind::Noisy => Backend::Noisy(Box::new(cfg)),
            BackendKind::Circuit => Backend::Circuit(Box::new(cfg)),
        }
    }
}

/// Which single fault class a sweep scales the rate of.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Stuck-at-lowest-threshold cells.
    Sa0,
    /// Stuck-at-highest-threshold (erased) cells.
    Sa1,
    /// Open series resistors.
    Open,
    /// Shorted series resistors.
    Short,
}

impl FaultKind {
    /// Every hard-fault class, in report order.
    pub const ALL: [FaultKind; 4] =
        [FaultKind::Sa0, FaultKind::Sa1, FaultKind::Open, FaultKind::Short];

    /// Report label (matches [`ferex_fefet::CellFault::label`]).
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::Sa0 => "sa0",
            FaultKind::Sa1 => "sa1",
            FaultKind::Open => "open",
            FaultKind::Short => "short",
        }
    }

    /// A plan injecting only this fault class at `rate`.
    pub fn plan(&self, rate: f64) -> FaultPlan {
        let mut plan = FaultPlan::none();
        match self {
            FaultKind::Sa0 => plan.sa0_rate = rate,
            FaultKind::Sa1 => plan.sa1_rate = rate,
            FaultKind::Open => plan.open_rate = rate,
            FaultKind::Short => plan.short_rate = rate,
        }
        plan
    }
}

/// Metric label used in reports.
pub fn metric_label(metric: DistanceMetric) -> &'static str {
    match metric {
        DistanceMetric::Hamming => "hamming",
        DistanceMetric::Manhattan => "manhattan",
        DistanceMetric::EuclideanSquared => "euclidean2",
    }
}

/// Runs the CSP sizing pipeline for `(metric, bits)` under the default
/// technology and returns the derived encoding.
///
/// # Errors
///
/// Encoding-pipeline failures.
pub fn encoding_for(metric: DistanceMetric, bits: u32) -> Result<CellEncoding, FerexError> {
    let dm = ferex_core::DistanceMatrix::from_metric(metric, bits);
    let tech = Technology::default();
    Ok(find_minimal_cell(&dm, &sizing_for(&tech))?.encoding)
}

/// Deterministic symbol matrix: `n` vectors of `dim` uniform `bits`-bit
/// symbols.
pub fn gen_vectors(n: usize, dim: usize, bits: u32, rng: &mut StdRng) -> Vec<Vec<u32>> {
    let n_symbols = 1u32 << bits;
    (0..n).map(|_| (0..dim).map(|_| rng.gen_range(0..n_symbols)).collect()).collect()
}

/// Deterministic query set whose fault-free oracle nearest is *uniquely*
/// minimal (rejection sampling). Integer distances make the runner-up gap
/// at least one full current unit, so neither the device solver's small
/// analog error nor the tie policy can blur the fault-free anchor point of
/// a degradation curve — any recall loss is the injected faults' doing.
pub fn gen_unambiguous_queries(
    oracle: &Oracle,
    n: usize,
    dim: usize,
    bits: u32,
    rng: &mut StdRng,
) -> Vec<Vec<u32>> {
    let mut out = Vec::with_capacity(n);
    let mut budget = 10_000usize;
    while out.len() < n {
        assert!(budget > 0, "query rejection sampling exhausted — matrix too degenerate");
        budget -= 1;
        let q = gen_vectors(1, dim, bits, rng).pop().expect("one vector");
        let d = oracle.distances(&q);
        let min = *d.iter().min().expect("non-empty");
        if d.iter().filter(|&&x| x == min).count() == 1 {
            out.push(q);
        }
    }
    out
}

/// One cell of the sweep matrix: a (metric × backend × fault) recall curve
/// over rising fault rates.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Distance metric under test.
    pub metric: DistanceMetric,
    /// Stochastic backend under test.
    pub backend: BackendKind,
    /// Fault class whose rate is swept.
    pub fault: FaultKind,
    /// Symbol bit width.
    pub bits: u32,
    /// Symbols per vector.
    pub dim: usize,
    /// Stored rows per trial array.
    pub rows: usize,
    /// Queries per trial.
    pub n_queries: usize,
    /// Independent arrays (distinct seeds and fault maps) per rate point.
    pub trials: u64,
    /// The `k` of recall@k.
    pub k: usize,
    /// Fault rates, ascending; should start at 0.0 for the fault-free
    /// anchor point.
    pub rates: Vec<f64>,
    /// Base seed everything derives from.
    pub seed: u64,
}

impl SweepSpec {
    /// Mixes the spec's coordinates into a sub-seed for `purpose`-indexed
    /// streams, keeping data, trials and faults decorrelated.
    pub(crate) fn derived_seed(&self, purpose: u64) -> u64 {
        let mut s = splitmix64(self.seed ^ CONFORMANCE_STREAM_SALT);
        for word in
            [self.metric as u64, self.backend as u64, self.fault as u64, self.bits as u64, purpose]
        {
            s = splitmix64(s ^ splitmix64(word));
        }
        s
    }
}

/// Runs one degradation sweep: for each rate, average recall@1 / recall@k
/// over `trials` independently seeded arrays serving the same stored data
/// and query set through the real batched device paths.
///
/// # Panics
///
/// Panics on malformed specs (no rates, `k` out of range) and on any
/// backend error — conformance data is generated in-range by construction,
/// so an error here is itself a conformance failure.
pub fn run_sweep(spec: &SweepSpec) -> DegradationCurve {
    assert!(!spec.rates.is_empty(), "sweep needs at least one rate");
    assert!(spec.k >= 1 && spec.k <= spec.rows, "k = {} out of range", spec.k);
    let encoding = encoding_for(spec.metric, spec.bits).expect("sizing must succeed");
    let mut data_rng = StdRng::seed_from_u64(spec.derived_seed(0));
    let stored = gen_vectors(spec.rows, spec.dim, spec.bits, &mut data_rng);
    let oracle = Oracle::new(spec.metric, stored.clone());
    let queries =
        gen_unambiguous_queries(&oracle, spec.n_queries, spec.dim, spec.bits, &mut data_rng);
    let expected: Vec<usize> = queries.iter().map(|q| oracle.nearest(q)).collect();

    let mut points = Vec::with_capacity(spec.rates.len());
    for &rate in &spec.rates {
        let mut hit1 = 0usize;
        let mut hitk = 0usize;
        for trial in 0..spec.trials {
            let cfg = CircuitConfig {
                variation: VariationModel::none(),
                lta: LtaParams::ideal(),
                faults: spec.fault.plan(rate),
                seed: spec.derived_seed(1 + trial),
                ..Default::default()
            };
            let mut array = FerexArray::new(
                Technology::default(),
                encoding.clone(),
                spec.dim,
                spec.backend.backend(cfg),
            );
            array.store_all(stored.iter().cloned()).expect("in-range by construction");
            array.program();
            let top1 = array.search_batch(&queries).expect("programmed");
            let topk = array.search_k_batch(&queries, spec.k).expect("programmed");
            for (i, want) in expected.iter().enumerate() {
                hit1 += usize::from(top1[i].nearest == *want);
                hitk += usize::from(topk[i].contains(want));
            }
        }
        let n = (spec.trials as usize * spec.n_queries) as f64;
        points.push(CurvePoint {
            rate,
            recall_at_1: hit1 as f64 / n,
            recall_at_k: hitk as f64 / n,
        });
    }
    DegradationCurve {
        metric: metric_label(spec.metric).to_string(),
        backend: spec.backend.label().to_string(),
        fault: spec.fault.label().to_string(),
        rows: spec.rows,
        dim: spec.dim,
        n_queries: spec.n_queries,
        trials: spec.trials,
        k: spec.k,
        points,
    }
}

/// The fixed sweep matrix behind the standard report: every metric × both
/// stochastic backends × all four hard-fault classes. The `Noisy` backend
/// runs at application-ish scale; the device-level `Circuit` backend runs a
/// reduced but structurally identical sweep (every cell is a full
/// bisection-solved device, so its arrays are kept small).
pub fn standard_specs(seed: u64) -> Vec<SweepSpec> {
    let mut specs = Vec::new();
    for metric in DistanceMetric::ALL {
        for backend in BackendKind::STOCHASTIC {
            for fault in FaultKind::ALL {
                let spec = match backend {
                    BackendKind::Noisy => SweepSpec {
                        metric,
                        backend,
                        fault,
                        bits: 2,
                        dim: 12,
                        rows: 16,
                        n_queries: 24,
                        trials: 3,
                        k: 3,
                        rates: vec![0.0, 0.02, 0.05, 0.1, 0.2, 0.4],
                        seed,
                    },
                    BackendKind::Circuit => SweepSpec {
                        metric,
                        backend,
                        fault,
                        bits: 2,
                        dim: 6,
                        rows: 8,
                        n_queries: 10,
                        trials: 2,
                        k: 3,
                        rates: vec![0.0, 0.05, 0.15, 0.3],
                        seed,
                    },
                    // `STOCHASTIC` never yields `Ideal`; skipping is the
                    // panic-free form of that guard.
                    BackendKind::Ideal => continue,
                };
                specs.push(spec);
            }
        }
    }
    specs
}

/// Generates the standard machine-readable conformance report from one
/// seed. Deterministic: same seed, byte-identical report.
pub fn standard_report(seed: u64) -> ConformanceReport {
    ConformanceReport {
        seed,
        bits: 2,
        curves: standard_specs(seed).iter().map(run_sweep).collect(),
    }
}

/// Runs one recall-recovery sweep: at every rate, each trial array is
/// measured twice — once exactly as [`run_sweep`] does (repair disabled,
/// so the faulted leg reproduces the PR 2 degradation baseline
/// byte-for-byte), and once with `policy` installed so write-verify,
/// quarantine and row sparing run before serving.
///
/// # Panics
///
/// Panics on malformed specs and on any backend error, like [`run_sweep`].
pub fn run_recovery(spec: &SweepSpec, policy: &RepairPolicy) -> RecoveryCurve {
    assert!(!spec.rates.is_empty(), "sweep needs at least one rate");
    assert!(spec.k >= 1 && spec.k <= spec.rows, "k = {} out of range", spec.k);
    let encoding = encoding_for(spec.metric, spec.bits).expect("sizing must succeed");
    let mut data_rng = StdRng::seed_from_u64(spec.derived_seed(0));
    let stored = gen_vectors(spec.rows, spec.dim, spec.bits, &mut data_rng);
    let oracle = Oracle::new(spec.metric, stored.clone());
    let queries =
        gen_unambiguous_queries(&oracle, spec.n_queries, spec.dim, spec.bits, &mut data_rng);
    let expected: Vec<usize> = queries.iter().map(|q| oracle.nearest(q)).collect();

    let mut points = Vec::with_capacity(spec.rates.len());
    for &rate in &spec.rates {
        let mut faulted1 = 0usize;
        let mut faultedk = 0usize;
        let mut healed1 = 0usize;
        let mut healedk = 0usize;
        let mut quarantined = 0usize;
        let mut remapped = 0usize;
        let mut excluded = 0usize;
        for trial in 0..spec.trials {
            let cfg = CircuitConfig {
                variation: VariationModel::none(),
                lta: LtaParams::ideal(),
                faults: spec.fault.plan(rate),
                seed: spec.derived_seed(1 + trial),
                ..Default::default()
            };
            // No-repair leg: identical to run_sweep, preserving the PR 2
            // degradation baseline for this (spec, rate, trial).
            let mut array = FerexArray::new(
                Technology::default(),
                encoding.clone(),
                spec.dim,
                spec.backend.backend(cfg.clone()),
            );
            array.store_all(stored.iter().cloned()).expect("in-range by construction");
            array.program();
            let top1 = array.search_batch(&queries).expect("programmed");
            let topk = array.search_k_batch(&queries, spec.k).expect("programmed");
            for (i, want) in expected.iter().enumerate() {
                faulted1 += usize::from(top1[i].nearest == *want);
                faultedk += usize::from(topk[i].contains(want));
            }
            // Healed leg: same data, same fault map, repair pipeline on.
            let mut healed = FerexArray::new(
                Technology::default(),
                encoding.clone(),
                spec.dim,
                spec.backend.backend(cfg),
            );
            healed.store_all(stored.iter().cloned()).expect("in-range by construction");
            // lint:allow(panic-safety/expect, reason = "standard recovery spec builds a valid policy")
            healed.set_repair_policy(policy.clone()).expect("valid policy");
            let report = healed.program_verified().expect("verify budget is bounded");
            quarantined += report.rows_quarantined.len();
            remapped += report.rows_remapped.len();
            excluded += report.rows_excluded.len();
            // A fully quarantined array with no spares left serves nothing:
            // count every query as a miss instead of panicking, so recovery
            // curves can show the collapse past the spare pool's capacity.
            let active = healed.health().rows_active;
            if active >= spec.k {
                let top1 = healed.search_batch(&queries).expect("programmed");
                let topk = healed.search_k_batch(&queries, spec.k).expect("programmed");
                for (i, want) in expected.iter().enumerate() {
                    healed1 += usize::from(top1[i].nearest == *want);
                    healedk += usize::from(topk[i].contains(want));
                }
            } else if active >= 1 {
                let top1 = healed.search_batch(&queries).expect("programmed");
                for (i, want) in expected.iter().enumerate() {
                    healed1 += usize::from(top1[i].nearest == *want);
                }
            }
        }
        let n = (spec.trials as usize * spec.n_queries) as f64;
        points.push(RecoveryPoint {
            rate,
            recall_faulted_1: faulted1 as f64 / n,
            recall_faulted_k: faultedk as f64 / n,
            recall_healed_1: healed1 as f64 / n,
            recall_healed_k: healedk as f64 / n,
            rows_quarantined: quarantined,
            rows_remapped: remapped,
            rows_excluded: excluded,
        });
    }
    RecoveryCurve {
        metric: metric_label(spec.metric).to_string(),
        backend: spec.backend.label().to_string(),
        fault: spec.fault.label().to_string(),
        rows: spec.rows,
        spare_rows: policy.spare_rows,
        dim: spec.dim,
        n_queries: spec.n_queries,
        trials: spec.trials,
        k: spec.k,
        points,
    }
}

/// The sweep matrix behind the standard recovery report: every metric ×
/// both stochastic backends × the stuck-at fault classes, at low rates
/// where a 2×-rows spare pool is expected to absorb every quarantined row.
pub fn standard_recovery_specs(seed: u64) -> Vec<(SweepSpec, RepairPolicy)> {
    let mut specs = Vec::new();
    for metric in DistanceMetric::ALL {
        for backend in BackendKind::STOCHASTIC {
            for fault in [FaultKind::Sa0, FaultKind::Sa1] {
                let mut spec = match backend {
                    BackendKind::Noisy => SweepSpec {
                        metric,
                        backend,
                        fault,
                        bits: 2,
                        dim: 12,
                        rows: 16,
                        n_queries: 24,
                        trials: 3,
                        k: 3,
                        rates: vec![0.01, 0.02, 0.05],
                        seed,
                    },
                    BackendKind::Circuit => SweepSpec {
                        metric,
                        backend,
                        fault,
                        bits: 2,
                        dim: 6,
                        rows: 8,
                        n_queries: 10,
                        trials: 2,
                        k: 3,
                        rates: vec![0.01, 0.02, 0.05],
                        seed,
                    },
                    // `STOCHASTIC` never yields `Ideal`; skipping is the
                    // panic-free form of that guard.
                    BackendKind::Ideal => continue,
                };
                spec.rates.retain(|&r| r > 0.0);
                let policy = RepairPolicy {
                    spare_rows: 2 * spec.rows,
                    sentinel_rows: 1,
                    ..Default::default()
                };
                specs.push((spec, policy));
            }
        }
    }
    specs
}

/// Generates the standard machine-readable recall-recovery report from one
/// seed. Deterministic: same seed, byte-identical report.
pub fn standard_recovery_report(seed: u64) -> RecoveryReport {
    RecoveryReport {
        seed,
        bits: 2,
        curves: standard_recovery_specs(seed).iter().map(|(s, p)| run_recovery(s, p)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_vectors_are_in_range_and_deterministic() {
        let mut rng = StdRng::seed_from_u64(7);
        let v = gen_vectors(20, 9, 3, &mut rng);
        assert_eq!(v.len(), 20);
        assert!(v.iter().all(|r| r.len() == 9 && r.iter().all(|&s| s < 8)));
        let mut rng2 = StdRng::seed_from_u64(7);
        assert_eq!(v, gen_vectors(20, 9, 3, &mut rng2));
    }

    #[test]
    fn fault_kind_plans_scale_exactly_one_rate() {
        for fault in FaultKind::ALL {
            let plan = fault.plan(0.25);
            assert!(plan.has_hard_faults());
            let total = plan.sa0_rate + plan.sa1_rate + plan.open_rate + plan.short_rate;
            assert_eq!(total, 0.25, "{fault:?} must set exactly one rate");
            assert!(fault.plan(0.0).is_benign());
        }
    }

    #[test]
    fn standard_matrix_covers_metrics_backends_and_faults() {
        let specs = standard_specs(1);
        assert_eq!(specs.len(), 3 * 2 * 4);
        for metric in DistanceMetric::ALL {
            for backend in BackendKind::STOCHASTIC {
                let n = specs.iter().filter(|s| s.metric == metric && s.backend == backend).count();
                assert_eq!(n, FaultKind::ALL.len(), "{metric} × {backend:?}");
            }
        }
        // Every sweep anchors at the fault-free point.
        assert!(specs.iter().all(|s| s.rates[0] == 0.0));
    }

    #[test]
    fn recovery_baseline_leg_matches_degradation_sweep() {
        // The no-repair leg of run_recovery must reproduce run_sweep's
        // recall numbers exactly: same data, same trial seeds, same fault
        // maps, same batched serving paths.
        let spec = SweepSpec {
            metric: DistanceMetric::Hamming,
            backend: BackendKind::Noisy,
            fault: FaultKind::Sa0,
            bits: 2,
            dim: 8,
            rows: 10,
            n_queries: 12,
            trials: 2,
            k: 2,
            rates: vec![0.05, 0.2],
            seed: 17,
        };
        let policy = RepairPolicy { spare_rows: 20, sentinel_rows: 1, ..Default::default() };
        let degradation = run_sweep(&spec);
        let recovery = run_recovery(&spec, &policy);
        assert_eq!(recovery.spare_rows, 20);
        for (d, r) in degradation.points.iter().zip(&recovery.points) {
            assert_eq!(d.rate, r.rate);
            assert_eq!(d.recall_at_1, r.recall_faulted_1, "baseline recall@1 diverged");
            assert_eq!(d.recall_at_k, r.recall_faulted_k, "baseline recall@k diverged");
            assert_eq!(r.rows_quarantined, r.rows_remapped + r.rows_excluded);
        }
        // Determinism: a second run is identical.
        assert_eq!(recovery, run_recovery(&spec, &policy));
    }

    #[test]
    fn standard_recovery_matrix_is_stuck_at_only_and_low_rate() {
        let specs = standard_recovery_specs(3);
        assert_eq!(specs.len(), 3 * 2 * 2);
        for (spec, policy) in &specs {
            assert!(matches!(spec.fault, FaultKind::Sa0 | FaultKind::Sa1));
            assert!(spec.rates.iter().all(|&r| r > 0.0 && r <= 0.05));
            assert_eq!(policy.spare_rows, 2 * spec.rows);
            assert_eq!(policy.sentinel_rows, 1);
        }
    }

    #[test]
    fn zero_rate_sweep_has_perfect_recall() {
        // At the fault-isolation corner with a benign plan, the stochastic
        // backends are exact — recall must be 1.0, the oracle anchor.
        let spec = SweepSpec {
            metric: DistanceMetric::Manhattan,
            backend: BackendKind::Noisy,
            fault: FaultKind::Sa1,
            bits: 2,
            dim: 8,
            rows: 10,
            n_queries: 12,
            trials: 2,
            k: 2,
            rates: vec![0.0],
            seed: 11,
        };
        let curve = run_sweep(&spec);
        assert_eq!(curve.points[0].recall_at_1, 1.0);
        assert_eq!(curve.points[0].recall_at_k, 1.0);
    }
}
