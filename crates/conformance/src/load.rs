//! Deterministic load simulator for the serving loop: seeded arrival
//! generators, chaos schedules, and exact virtual-latency distributions.
//!
//! A load scenario drives a [`ServeLoop`] on its virtual tick clock with
//! seeded arrivals — **open loop** (a Poisson-like process sampled by
//! SplitMix64 Bernoulli sub-slots, optionally with a burst window) or
//! **closed loop** (a fixed number of outstanding requests per tenant,
//! each completion immediately respawning the next) — while the PR 4
//! chaos vocabulary (kill / revive mid-stream) degrades the replica set
//! underneath. Because the clock is virtual and every random draw is a
//! domain-separated SplitMix64 stream, a scenario replays
//! bit-reproducibly: p50/p99/p999 latency are exact integers and the
//! whole [`LoadReport`](crate::report::LoadReport) is byte-identical
//! across runs with the same seed.
//!
//! The Poisson approximation deliberately avoids `f64::ln` (libm varies
//! across platforms): each tick is split into [`SUBSLOTS`] Bernoulli
//! trials whose success threshold is an integer comparison
//! `draw < rate · 2^64 / (1000 · SUBSLOTS)`, i.e. a binomial thinning of
//! the tick that converges on Poisson arrivals for the small per-slot
//! probabilities used here.

use crate::harness::{gen_vectors, metric_label, BackendKind};
use crate::oracle::Oracle;
use crate::report::{LoadReport, LoadScenario, LoadV2Replica, LoadV2Report, LoadV2Scenario};
use ferex_analog::lta::LtaParams;
use ferex_core::serve::{CostModel, Request, ServeLoop, ServeLoopStats, ServePolicy};
use ferex_core::{
    derive_replica_seed, BrownoutPolicy, CircuitConfig, DistanceMetric, FerexArray, HedgePolicy,
    LatencyModel, QuorumPolicy, ReplicaPolicy, ReplicaSet,
};
use ferex_fefet::math::splitmix64;
use ferex_fefet::{FaultPlan, Technology, VariationModel};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::VecDeque;

/// Domain-separation salt for load-simulator seed derivation, disjoint
/// from the conformance, replica, and query streams.
const LOAD_STREAM_SALT: u64 = 0x10AD_5EED_F00D_7105;

/// Bernoulli sub-slots per virtual tick of the open-loop arrival process.
const SUBSLOTS: u64 = 8;

/// Distinct query payloads a scenario cycles through.
const QUERY_POOL: usize = 32;

/// How requests arrive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalModel {
    /// Open loop: seeded Poisson-like arrivals at `rate_milli` expected
    /// requests per 1000 ticks, independent of service progress.
    OpenLoop {
        /// Expected arrivals per 1000 ticks.
        rate_milli: u64,
    },
    /// Closed loop: `outstanding` requests per tenant are kept in flight;
    /// every completion immediately submits the tenant's next request at
    /// its completion tick.
    ClosedLoop {
        /// In-flight requests per tenant.
        outstanding: usize,
    },
}

impl ArrivalModel {
    /// Report label, e.g. `open@64` or `closed@2`.
    pub fn label(&self) -> String {
        match self {
            ArrivalModel::OpenLoop { rate_milli } => format!("open@{rate_milli}"),
            ArrivalModel::ClosedLoop { outstanding } => format!("closed@{outstanding}"),
        }
    }
}

/// A rate multiplier applied to the open-loop process inside a tick
/// window — the burst scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BurstWindow {
    /// First tick of the burst (inclusive).
    pub from_tick: u64,
    /// End of the burst (exclusive).
    pub until_tick: u64,
    /// Rate multiplier inside the window.
    pub mult: u64,
}

/// One load scenario: array + replica-set shape, serving-loop policy,
/// arrival process, and chaos schedule.
#[derive(Debug, Clone)]
pub struct LoadSpec {
    /// Scenario name (report key).
    pub name: &'static str,
    /// Distance metric.
    pub metric: DistanceMetric,
    /// Stochastic backend of the replicas.
    pub backend: BackendKind,
    /// Symbol bit width.
    pub bits: u32,
    /// Symbols per vector.
    pub dim: usize,
    /// Stored rows per replica.
    pub rows: usize,
    /// Tenant count.
    pub tenants: usize,
    /// Arrival process.
    pub arrivals: ArrivalModel,
    /// Open-loop burst window, if any.
    pub burst: Option<BurstWindow>,
    /// Tenant receiving half of all open-loop arrivals (the hot-tenant
    /// scenario); the rest spread uniformly.
    pub hot_tenant: Option<usize>,
    /// Requests submitted before the stream ends.
    pub n_requests: usize,
    /// Batch former's target size.
    pub target_batch: usize,
    /// Per-request deadline in ticks after arrival.
    pub deadline_ticks: u64,
    /// Serving-loop queue capacity (0 = unbounded).
    pub queue_capacity: usize,
    /// DRR quantum.
    pub quantum: u32,
    /// Virtual service-cost model.
    pub cost: CostModel,
    /// Replica count.
    pub replicas: usize,
    /// Quorum reads per query.
    pub reads: usize,
    /// Quorum agreement threshold.
    pub agree: usize,
    /// Replica killed mid-stream at `(replica, tick)`, if any.
    pub kill: Option<(usize, u64)>,
    /// Replica revived at `(replica, tick)` — paired with `kill`, this is
    /// the slow-replica brownout window.
    pub revive: Option<(usize, u64)>,
    /// Attach a seeded [`LatencyModel`] to every replica (`false`
    /// reproduces the v1 uniform-cost charge byte for byte).
    pub latency_models: bool,
    /// Per-replica constant slowdown overrides, `(replica,
    /// slow_factor_milli)` — the one-slow-replica scenario family.
    pub slow_replicas: Vec<(usize, u64)>,
    /// One replica aging at `(replica, milli_per_kilotick)` — the
    /// degrading-replica scenario family.
    pub degrade: Option<(usize, u64)>,
    /// Jitter amplitude of the attached models, 0..=1000 per-mille.
    pub jitter_milli: u64,
    /// Hedged-request policy of the serving loop, if any.
    pub hedge: Option<HedgePolicy>,
    /// Brownout demotion policy of the serving loop, if any.
    pub brownout: Option<BrownoutPolicy>,
    /// Batch former's wait cap (0 = off).
    pub max_wait_ticks: u64,
    /// Hard tick ceiling; the run must finish (drain) before it.
    pub max_ticks: u64,
    /// Base seed everything derives from.
    pub seed: u64,
}

impl LoadSpec {
    /// Derives a purpose-separated sub-seed of this scenario's stream.
    fn derived_seed(&self, purpose: u64) -> u64 {
        splitmix64(self.seed ^ splitmix64(purpose ^ LOAD_STREAM_SALT))
    }
}

/// Nearest-rank percentile, shared with the core stats utility (one
/// implementation serves the v1 and v2 load reports and the CLI).
pub use ferex_core::stats::percentile;

/// One pending future arrival of the driver (closed-loop respawns).
#[derive(Debug, Clone, Copy)]
struct FutureArrival {
    tick: u64,
    tenant: usize,
}

/// Per-replica latency telemetry of one load run, alongside the
/// [`LoadScenario`] row — the raw material of the v2 report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadDetail {
    /// Final serving-loop counters (hedges, wins, demotions, re-probes).
    pub stats: ServeLoopStats,
    /// Sampled modeled service ticks per replica, in charge order.
    pub samples: Vec<Vec<u64>>,
    /// Final per-replica latency EWMA, per-mille of the expected cost.
    pub ewma_milli: Vec<u64>,
    /// Hedges issued against each replica.
    pub hedged_against: Vec<u64>,
    /// Hedge wins credited to each replica.
    pub hedge_wins_by: Vec<u64>,
    /// Final per-replica brownout routing demerit, per-mille.
    pub demerit_milli: Vec<u64>,
}

/// Runs one load scenario to completion (stream end + queue drain) and
/// returns its report row.
///
/// # Panics
///
/// As [`run_load_detailed`].
pub fn run_load(spec: &LoadSpec) -> LoadScenario {
    run_load_detailed(spec).0
}

/// [`run_load`] plus the per-replica latency telemetry the v2 report is
/// built from.
///
/// # Panics
///
/// Panics on malformed specs (zero tenants, out-of-range chaos or
/// latency-model indices, invalid quorum or hedging knobs), on encoding
/// failure, and when the run fails to drain within `max_ticks` — all
/// deterministic spec bugs, not data-dependent conditions.
pub fn run_load_detailed(spec: &LoadSpec) -> (LoadScenario, LoadDetail) {
    assert!(spec.tenants >= 1, "load scenario needs at least one tenant");
    assert!(spec.n_requests >= 1, "load scenario needs at least one request");
    if let Some((r, _)) = spec.kill {
        assert!(r < spec.replicas, "killed replica out of range");
    }
    if let Some((r, _)) = spec.revive {
        assert!(r < spec.replicas, "revived replica out of range");
    }
    if let Some(h) = spec.hot_tenant {
        assert!(h < spec.tenants, "hot tenant out of range");
    }
    for &(r, f) in &spec.slow_replicas {
        assert!(r < spec.replicas, "slow replica out of range");
        assert!(f >= 1000, "slow factor below 1x");
    }
    if let Some((r, _)) = spec.degrade {
        assert!(r < spec.replicas, "degrading replica out of range");
    }
    let encoding = crate::harness::encoding_for(spec.metric, spec.bits)
        // lint:allow(panic-safety/expect, reason = "standard specs use sizable (metric, bits) cells")
        .expect("sizing must succeed");
    let mut data_rng = StdRng::seed_from_u64(spec.derived_seed(0));
    let stored = gen_vectors(spec.rows, spec.dim, spec.bits, &mut data_rng);
    let oracle = Oracle::new(spec.metric, stored.clone());
    let pool = gen_vectors(QUERY_POOL, spec.dim, spec.bits, &mut data_rng);
    let expected: Vec<usize> = pool.iter().map(|q| oracle.nearest(q)).collect();
    let base_seed = spec.derived_seed(1);

    // Replicas at the fault-isolation corner: any recall loss would be the
    // serving ladder's doing, not the devices'.
    let mut replicas = Vec::with_capacity(spec.replicas);
    for i in 0..spec.replicas {
        let cfg = CircuitConfig {
            variation: VariationModel::none(),
            lta: LtaParams::ideal(),
            faults: FaultPlan::none(),
            seed: derive_replica_seed(base_seed, i as u64),
            ..Default::default()
        };
        let mut array = FerexArray::new(
            Technology::default(),
            encoding.clone(),
            spec.dim,
            spec.backend.backend(cfg),
        );
        // lint:allow(panic-safety/expect, reason = "generated symbols are in range by construction")
        array.store_all(stored.iter().cloned()).expect("in-range by construction");
        array.program();
        replicas.push(array);
    }
    let set = ReplicaSet::new(
        replicas,
        stored.clone(),
        spec.metric,
        ReplicaPolicy {
            quorum: QuorumPolicy { reads: spec.reads, agree: spec.agree },
            ..Default::default()
        },
    );
    let policy = ServePolicy {
        target_batch: spec.target_batch,
        queue_capacity: spec.queue_capacity,
        quantum: spec.quantum,
        cost: spec.cost,
        max_wait_ticks: spec.max_wait_ticks,
        hedge: spec.hedge,
        brownout: spec.brownout,
    };
    // lint:allow(panic-safety/expect, reason = "spec knobs validated above; store is non-empty")
    let mut sim = ServeLoop::new(set, spec.tenants, policy).expect("valid serving policy");

    if spec.latency_models {
        let latency_seed = spec.derived_seed(6);
        for i in 0..spec.replicas {
            let mut model =
                LatencyModel::healthy(spec.cost, derive_replica_seed(latency_seed, i as u64));
            model.jitter_milli = spec.jitter_milli.min(1000);
            if let Some(&(_, f)) = spec.slow_replicas.iter().find(|&&(r, _)| r == i) {
                model.slow_factor_milli = f;
            }
            if spec.degrade.is_some_and(|(r, _)| r == i) {
                model.degrade_milli_per_kilotick = spec.degrade.map_or(0, |(_, d)| d);
            }
            // lint:allow(panic-safety/expect, reason = "indices and knobs validated above")
            sim.set_mut().set_latency_model(i, model).expect("validated latency model");
        }
    }

    // Domain-separated attribute streams, all keyed on the submission
    // counter so open- and closed-loop runs share one vocabulary.
    let arrival_seed = spec.derived_seed(2);
    let tenant_seed = spec.derived_seed(3);
    let prio_seed = spec.derived_seed(4);
    let query_seed = spec.derived_seed(5);

    let mut submitted = 0usize;
    let mut pool_of_qid: Vec<usize> = Vec::with_capacity(spec.n_requests);
    let mut latencies: Vec<u64> = Vec::new();
    let mut hits = 0u64;
    let mut respawns: VecDeque<FutureArrival> = VecDeque::new();
    let mut end_tick = 0u64;
    let mut tick = 0u64;

    // Seed the closed loop: `outstanding` requests per tenant at tick 0.
    if let ArrivalModel::ClosedLoop { outstanding } = spec.arrivals {
        assert!(outstanding >= 1, "closed loop needs at least one outstanding request");
        for tenant in 0..spec.tenants {
            for _ in 0..outstanding {
                respawns.push_back(FutureArrival { tick: 0, tenant });
            }
        }
    }

    let submit = |sim: &mut ServeLoop<FerexArray>,
                  pool_of_qid: &mut Vec<usize>,
                  n: usize,
                  tick: u64,
                  tenant: usize| {
        let pi = (splitmix64(query_seed ^ splitmix64(n as u64)) % QUERY_POOL as u64) as usize;
        let priority = (splitmix64(prio_seed ^ splitmix64(n as u64)) % 8) as u32; // lint:allow(cast-truncation/narrowing, reason = "value < 8 by the modulo")
        let query = pool.get(pi).cloned().unwrap_or_default();
        pool_of_qid.push(pi);
        let req = Request {
            tenant,
            priority,
            arrival_tick: tick,
            deadline_ticks: spec.deadline_ticks,
            query,
        };
        // lint:allow(panic-safety/expect, reason = "tenant and payload are in range by construction")
        sim.submit(req).expect("valid request");
    };

    loop {
        assert!(tick < spec.max_ticks, "load scenario failed to drain within max_ticks");
        // Chaos schedule first: the tick's arrivals see the degraded set.
        if let Some((r, at)) = spec.kill {
            if at == tick {
                sim.set_mut().kill(r);
            }
        }
        if let Some((r, at)) = spec.revive {
            if at == tick {
                sim.set_mut().revive(r);
            }
        }
        // Arrivals due this tick.
        match spec.arrivals {
            ArrivalModel::OpenLoop { rate_milli } => {
                let mult = match spec.burst {
                    Some(b) if tick >= b.from_tick && tick < b.until_tick => b.mult,
                    _ => 1,
                };
                let threshold = bernoulli_threshold(rate_milli.saturating_mul(mult));
                for slot in 0..SUBSLOTS {
                    if submitted >= spec.n_requests {
                        break;
                    }
                    let draw = splitmix64(arrival_seed ^ splitmix64(tick * SUBSLOTS + slot));
                    if draw < threshold {
                        let t_draw = splitmix64(tenant_seed ^ splitmix64(submitted as u64));
                        let tenant = pick_tenant(t_draw, spec.tenants, spec.hot_tenant);
                        submit(&mut sim, &mut pool_of_qid, submitted, tick, tenant);
                        submitted += 1;
                    }
                }
            }
            ArrivalModel::ClosedLoop { .. } => {
                while respawns.front().is_some_and(|f| f.tick <= tick) {
                    let Some(f) = respawns.pop_front() else { break };
                    if submitted >= spec.n_requests {
                        continue;
                    }
                    submit(&mut sim, &mut pool_of_qid, submitted, tick, f.tenant);
                    submitted += 1;
                }
            }
        }
        // Serve.
        // lint:allow(panic-safety/expect, reason = "ticks are monotone and queries pre-validated")
        let (completions, _sheds) = sim.poll(tick).expect("monotone ticks");
        for c in &completions {
            latencies.push(c.latency());
            end_tick = end_tick.max(c.completion_tick);
            let want = pool_of_qid.get(c.qid as usize).and_then(|&pi| expected.get(pi));
            hits += u64::from(want == Some(&c.outcome.outcome.nearest));
            if matches!(spec.arrivals, ArrivalModel::ClosedLoop { .. }) {
                respawns.push_back(FutureArrival { tick: c.completion_tick, tenant: c.tenant });
            }
        }
        if submitted >= spec.n_requests && sim.queue_depth() == 0 && tick >= end_tick {
            break;
        }
        tick += 1;
    }

    let stats = sim.stats();
    let served = stats.served;
    let ticks = end_tick.max(1);
    latencies.sort_unstable();
    let goodput_milli = served.saturating_mul(1000) / ticks;
    let recall_at_1 = if served == 0 { 1.0 } else { hits as f64 / served as f64 };
    let detail = LoadDetail {
        stats,
        samples: (0..spec.replicas).map(|i| sim.replica_samples(i).to_vec()).collect(),
        ewma_milli: sim.latency_ewma_milli().to_vec(),
        hedged_against: sim.hedged_against().to_vec(),
        hedge_wins_by: sim.hedge_wins_by().to_vec(),
        demerit_milli: (0..spec.replicas)
            .map(|i| sim.set().status(i).latency_demerit_milli)
            .collect(),
    };
    let scenario = LoadScenario {
        name: spec.name.to_string(),
        metric: metric_label(spec.metric).to_string(),
        backend: spec.backend.label().to_string(),
        rows: spec.rows,
        dim: spec.dim,
        tenants: spec.tenants,
        arrivals: spec.arrivals.label(),
        burst: match spec.burst {
            Some(b) => format!("{}..{}x{}", b.from_tick, b.until_tick, b.mult),
            None => "none".to_string(),
        },
        hot_tenant: spec.hot_tenant,
        n_requests: spec.n_requests,
        target_batch: spec.target_batch,
        deadline_ticks: spec.deadline_ticks,
        queue_capacity: spec.queue_capacity,
        quantum: spec.quantum,
        setup_ticks: spec.cost.batch_setup_ticks,
        per_query_ticks: spec.cost.per_query_ticks,
        replicas: spec.replicas,
        reads: spec.reads,
        agree: spec.agree,
        kill: chaos_label(spec.kill),
        revive: chaos_label(spec.revive),
        submitted: stats.submitted,
        served,
        shed_capacity: stats.shed_capacity,
        shed_deadline: stats.shed_deadline,
        batches: stats.batches,
        max_batch: stats.max_batch,
        busy_ticks: stats.busy_ticks,
        ticks,
        p50: percentile(&latencies, 50, 100),
        p99: percentile(&latencies, 99, 100),
        p999: percentile(&latencies, 999, 1000),
        max_latency: latencies.last().copied().unwrap_or(0),
        goodput_milli,
        recall_at_1,
        oracle_fallbacks: sim.set().stats().oracle_fallbacks,
        tenant_served: sim.served_per_tenant().to_vec(),
        tenant_shed: sim.shed_per_tenant().to_vec(),
    };
    (scenario, detail)
}

/// Integer Bernoulli threshold for one sub-slot: `p = rate_milli / (1000 ·
/// SUBSLOTS)` mapped onto the full `u64` range.
fn bernoulli_threshold(rate_milli: u64) -> u64 {
    let num = (rate_milli as u128) << 64;
    let den = 1000u128 * SUBSLOTS as u128;
    (num / den).min(u64::MAX as u128) as u64
}

/// Tenant of one arrival: the hot tenant absorbs every other arrival,
/// the rest spread uniformly.
fn pick_tenant(draw: u64, tenants: usize, hot: Option<usize>) -> usize {
    match hot {
        Some(h) if draw.is_multiple_of(2) => h,
        _ => ((draw >> 1) % tenants as u64) as usize,
    }
}

fn chaos_label(event: Option<(usize, u64)>) -> String {
    match event {
        Some((r, at)) => format!("r{r}@{at}"),
        None => "none".to_string(),
    }
}

/// The fixed scenario matrix behind the standard load report. All cells
/// run the Noisy backend at the fault-isolation corner with the
/// [`CostModel::noisy_10k`] service costs — the 64-query-equivalent Noisy
/// 10k-row configuration measured by the PR 6 kernel bench (62 ticks per
/// lone query, ~10.8 amortized at batch 64).
///
/// The two `goodput-*` cells feed the acceptance gate: offered load is 64
/// requests per 1000 ticks ≈ 4x the single-query service capacity
/// (1/62 per tick), and the adaptive cell must clear 3x the goodput of
/// the batch-size-1 cell with p999 under the 512-tick deadline.
pub fn standard_load_specs(seed: u64) -> Vec<LoadSpec> {
    let base = LoadSpec {
        name: "",
        metric: DistanceMetric::Hamming,
        backend: BackendKind::Noisy,
        bits: 2,
        dim: 8,
        rows: 16,
        tenants: 2,
        arrivals: ArrivalModel::OpenLoop { rate_milli: 40 },
        burst: None,
        hot_tenant: None,
        n_requests: 240,
        target_batch: 16,
        deadline_ticks: 512,
        queue_capacity: 64,
        quantum: 1,
        cost: CostModel::noisy_10k(),
        replicas: 2,
        reads: 1,
        agree: 1,
        kill: None,
        revive: None,
        latency_models: false,
        slow_replicas: Vec::new(),
        degrade: None,
        jitter_milli: 0,
        hedge: None,
        brownout: None,
        max_wait_ticks: 0,
        max_ticks: 100_000,
        seed,
    };
    vec![
        LoadSpec { name: "steady-open-4t", tenants: 4, ..base.clone() },
        LoadSpec {
            name: "hot-tenant",
            tenants: 4,
            hot_tenant: Some(0),
            arrivals: ArrivalModel::OpenLoop { rate_milli: 48 },
            queue_capacity: 48,
            ..base.clone()
        },
        LoadSpec {
            name: "burst",
            arrivals: ArrivalModel::OpenLoop { rate_milli: 30 },
            burst: Some(BurstWindow { from_tick: 600, until_tick: 1800, mult: 4 }),
            n_requests: 300,
            queue_capacity: 48,
            ..base.clone()
        },
        LoadSpec {
            name: "closed-loop-4t",
            tenants: 4,
            arrivals: ArrivalModel::ClosedLoop { outstanding: 2 },
            n_requests: 200,
            target_batch: 8,
            queue_capacity: 0,
            ..base.clone()
        },
        LoadSpec {
            name: "brownout",
            metric: DistanceMetric::Manhattan,
            replicas: 3,
            reads: 2,
            agree: 1,
            kill: Some((0, 500)),
            revive: Some((0, 1500)),
            ..base.clone()
        },
        LoadSpec {
            name: "kill-mid-stream",
            replicas: 2,
            reads: 2,
            agree: 2,
            kill: Some((1, 600)),
            ..base.clone()
        },
        LoadSpec {
            name: "goodput-batch1",
            tenants: 1,
            arrivals: ArrivalModel::OpenLoop { rate_milli: 64 },
            n_requests: 300,
            target_batch: 1,
            queue_capacity: 32,
            ..base.clone()
        },
        LoadSpec {
            name: "goodput-adaptive",
            tenants: 1,
            arrivals: ArrivalModel::OpenLoop { rate_milli: 64 },
            n_requests: 300,
            target_batch: 16,
            queue_capacity: 64,
            ..base.clone()
        },
        LoadSpec { name: "latency-tb1", target_batch: 1, n_requests: 200, ..latency_base(&base) },
        LoadSpec { name: "latency-tb4", target_batch: 4, n_requests: 200, ..latency_base(&base) },
        LoadSpec { name: "latency-tb8", target_batch: 8, n_requests: 200, ..latency_base(&base) },
        LoadSpec { name: "latency-tb16", target_batch: 16, n_requests: 200, ..latency_base(&base) },
        LoadSpec { name: "latency-tb32", target_batch: 32, n_requests: 200, ..latency_base(&base) },
    ]
}

/// Shared shape of the `latency-tb*` sweep: fixed offered load of 48
/// requests per 1000 ticks, only the target batch size varies.
fn latency_base(base: &LoadSpec) -> LoadSpec {
    LoadSpec {
        arrivals: ArrivalModel::OpenLoop { rate_milli: 48 },
        deadline_ticks: 768,
        queue_capacity: 64,
        ..base.clone()
    }
}

/// Generates the standard machine-readable load report from one seed.
/// Deterministic: same seed, byte-identical report.
pub fn standard_load_report(seed: u64) -> LoadReport {
    LoadReport { seed, scenarios: standard_load_specs(seed).iter().map(run_load).collect() }
}

/// The v2 (latency-heterogeneity) scenario family: every cell runs
/// seeded per-replica latency models on a 3-replica / 2-read set with
/// hedging and brownout demotion armed, against an all-healthy baseline,
/// three one-slow-replica severities, and a degrading replica.
///
/// The `v2-one-slow-8x` cell feeds the tail-latency SLO gate: with
/// replica 1 at 8x, the hedged p999 must stay within 2x the all-healthy
/// p999 while the unhedged leg of the same cell blows past 5x it.
pub fn standard_load_v2_specs(seed: u64) -> Vec<LoadSpec> {
    let base = LoadSpec {
        name: "",
        metric: DistanceMetric::Hamming,
        backend: BackendKind::Noisy,
        bits: 2,
        dim: 8,
        rows: 16,
        tenants: 2,
        arrivals: ArrivalModel::OpenLoop { rate_milli: 40 },
        burst: None,
        hot_tenant: None,
        n_requests: 240,
        target_batch: 16,
        deadline_ticks: 4096,
        queue_capacity: 64,
        quantum: 1,
        cost: CostModel::noisy_10k(),
        replicas: 3,
        reads: 2,
        agree: 1,
        kill: None,
        revive: None,
        latency_models: true,
        slow_replicas: Vec::new(),
        degrade: None,
        jitter_milli: 1000,
        hedge: Some(HedgePolicy { quantile_milli: 950, budget_milli: 500 }),
        brownout: Some(BrownoutPolicy {
            demote_threshold_milli: 2500,
            reprobe_ticks: 2048,
            ewma_shift: 2,
        }),
        max_wait_ticks: 256,
        max_ticks: 200_000,
        seed,
    };
    vec![
        LoadSpec { name: "v2-all-healthy", ..base.clone() },
        LoadSpec { name: "v2-one-slow-2x", slow_replicas: vec![(1, 2000)], ..base.clone() },
        LoadSpec { name: "v2-one-slow-4x", slow_replicas: vec![(1, 4000)], ..base.clone() },
        LoadSpec { name: "v2-one-slow-8x", slow_replicas: vec![(1, 8000)], ..base.clone() },
        LoadSpec { name: "v2-degrading", degrade: Some((1, 1500)), ..base.clone() },
    ]
}

/// Runs one v2 scenario twice — the spec as given (hedging and brownout
/// armed) and an unhedged leg with both disarmed but identical latency
/// models — and folds both legs plus the per-replica telemetry into one
/// report row.
///
/// # Panics
///
/// As [`run_load_detailed`].
pub fn run_load_v2(spec: &LoadSpec) -> LoadV2Scenario {
    let (hedged, detail) = run_load_detailed(spec);
    let unhedged_spec = LoadSpec { hedge: None, brownout: None, ..spec.clone() };
    let (unhedged, _) = run_load_detailed(&unhedged_spec);
    let per_replica = (0..spec.replicas)
        .map(|i| {
            let mut sorted = detail.samples.get(i).cloned().unwrap_or_default();
            sorted.sort_unstable();
            LoadV2Replica {
                replica: i,
                model: replica_model_label(spec, i),
                reads: sorted.len() as u64,
                p50_ticks: percentile(&sorted, 50, 100),
                p99_ticks: percentile(&sorted, 99, 100),
                max_ticks: sorted.last().copied().unwrap_or(0),
                ewma_milli: detail.ewma_milli.get(i).copied().unwrap_or(1000),
                hedged_against: detail.hedged_against.get(i).copied().unwrap_or(0),
                hedge_wins: detail.hedge_wins_by.get(i).copied().unwrap_or(0),
                demerit_milli: detail.demerit_milli.get(i).copied().unwrap_or(0),
            }
        })
        .collect();
    LoadV2Scenario {
        name: spec.name.to_string(),
        metric: metric_label(spec.metric).to_string(),
        backend: spec.backend.label().to_string(),
        arrivals: spec.arrivals.label(),
        n_requests: spec.n_requests,
        target_batch: spec.target_batch,
        deadline_ticks: spec.deadline_ticks,
        max_wait_ticks: spec.max_wait_ticks,
        replicas: spec.replicas,
        reads: spec.reads,
        agree: spec.agree,
        slow: slow_label(&spec.slow_replicas),
        degrade: match spec.degrade {
            Some((r, d)) => format!("r{r}@{d}"),
            None => "none".to_string(),
        },
        hedge: match spec.hedge {
            Some(h) => format!("q={},b={}", h.quantile_milli, h.budget_milli),
            None => "none".to_string(),
        },
        brownout: match spec.brownout {
            Some(b) => format!("t={},rp={}", b.demote_threshold_milli, b.reprobe_ticks),
            None => "none".to_string(),
        },
        submitted: hedged.submitted,
        served: hedged.served,
        shed_capacity: hedged.shed_capacity,
        shed_deadline: hedged.shed_deadline,
        batches: hedged.batches,
        hedges_issued: detail.stats.hedges_issued,
        hedge_wins: detail.stats.hedge_wins,
        brownout_demotions: detail.stats.brownout_demotions,
        reprobes: detail.stats.reprobes,
        p50: hedged.p50,
        p99: hedged.p99,
        p999: hedged.p999,
        max_latency: hedged.max_latency,
        goodput_milli: hedged.goodput_milli,
        recall_at_1: hedged.recall_at_1,
        unhedged_served: unhedged.served,
        unhedged_p50: unhedged.p50,
        unhedged_p99: unhedged.p99,
        unhedged_p999: unhedged.p999,
        unhedged_goodput_milli: unhedged.goodput_milli,
        per_replica,
    }
}

/// Label of one replica's attached latency model, e.g. `slow@8000`.
fn replica_model_label(spec: &LoadSpec, i: usize) -> String {
    if !spec.latency_models {
        return "none".to_string();
    }
    if let Some(&(_, f)) = spec.slow_replicas.iter().find(|&&(r, _)| r == i) {
        return format!("slow@{f}");
    }
    if let Some((r, d)) = spec.degrade {
        if r == i {
            return format!("degrading@{d}");
        }
    }
    "healthy".to_string()
}

fn slow_label(slow: &[(usize, u64)]) -> String {
    if slow.is_empty() {
        return "none".to_string();
    }
    slow.iter().map(|(r, f)| format!("r{r}@{f}")).collect::<Vec<_>>().join(",")
}

/// Generates the v2 latency/hedging load report from one seed.
/// Deterministic: same seed, byte-identical report.
pub fn standard_load_v2_report(seed: u64) -> LoadV2Report {
    LoadV2Report { seed, scenarios: standard_load_v2_specs(seed).iter().map(run_load_v2).collect() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bernoulli_threshold_is_proportional() {
        assert_eq!(bernoulli_threshold(0), 0);
        let t1 = bernoulli_threshold(10);
        let t2 = bernoulli_threshold(20);
        // Proportional up to the floor of the integer division.
        assert!(t2 >= t1 * 2 && t2 - t1 * 2 <= 1, "t1 = {t1}, t2 = {t2}");
        // 8000 milli = one arrival per sub-slot: the full range.
        assert_eq!(bernoulli_threshold(8000), u64::MAX);
    }

    #[test]
    fn hot_tenant_takes_half_the_arrivals() {
        let n = 10_000u64;
        let hot = (0..n).filter(|&d| pick_tenant(splitmix64(d), 4, Some(0)) == 0).count();
        // Half by the hot path plus ~1/8 of the uniform remainder.
        let share = hot as f64 / n as f64;
        assert!((0.55..0.70).contains(&share), "hot share {share}");
    }

    #[test]
    fn standard_matrix_covers_the_required_scenarios() {
        let specs = standard_load_specs(11);
        let names: Vec<&str> = specs.iter().map(|s| s.name).collect();
        for required in [
            "steady-open-4t",
            "hot-tenant",
            "burst",
            "closed-loop-4t",
            "brownout",
            "kill-mid-stream",
            "goodput-batch1",
            "goodput-adaptive",
        ] {
            assert!(names.contains(&required), "missing scenario {required}");
        }
        // The goodput pair differs only in serving-loop shape, not load.
        let b1 = specs.iter().find(|s| s.name == "goodput-batch1").unwrap();
        let ad = specs.iter().find(|s| s.name == "goodput-adaptive").unwrap();
        assert_eq!(b1.arrivals, ad.arrivals);
        assert_eq!(b1.n_requests, ad.n_requests);
        assert_eq!(b1.deadline_ticks, ad.deadline_ticks);
        assert_eq!(b1.target_batch, 1);
        assert!(ad.target_batch > 1);
        // Offered load clears 2x the single-query service rate.
        let service_one = b1.cost.service_ticks(1);
        if let ArrivalModel::OpenLoop { rate_milli } = b1.arrivals {
            assert!(rate_milli * service_one >= 2 * 1000, "offered load below the 2x gate floor");
        } else {
            panic!("goodput cells must be open loop");
        }
    }

    #[test]
    fn small_open_loop_scenario_is_deterministic() {
        let spec =
            LoadSpec { n_requests: 40, max_ticks: 20_000, ..standard_load_specs(3).remove(0) };
        let a = run_load(&spec);
        let b = run_load(&spec);
        assert_eq!(a, b);
        assert_eq!(a.submitted, 40);
        assert_eq!(a.submitted, a.served + a.shed_capacity + a.shed_deadline);
        assert!(a.p50 <= a.p99 && a.p99 <= a.p999);
        assert!(a.max_latency <= a.deadline_ticks, "admitted requests never miss deadlines");
    }
}
