//! Integration tests: both hypervector encoders drive the full
//! train → AM-inference pipeline.

use ferex_datasets::spec::UCIHAR;
use ferex_datasets::synth::{generate, SynthOptions};
use ferex_hdc::am::{AmClassifier, AmConfig};
use ferex_hdc::encoder::{FeatureEncoder, ProjectionEncoder};
use ferex_hdc::level::RecordEncoder;
use ferex_hdc::model::HdcModel;

fn dataset() -> ferex_datasets::Dataset {
    generate(&UCIHAR.scaled(0.02), &SynthOptions::default())
}

#[test]
fn record_encoder_full_pipeline() {
    let data = dataset();
    let encoder = RecordEncoder::fit(2048, 16, 3, data.train.iter().map(|s| s.features.as_slice()));
    let mut model = HdcModel::train_single_pass(encoder, &data.train, data.n_classes());
    model.retrain(&data.train, 3);
    let software = model.accuracy(&data.test);
    // The record encoder is legitimately weaker than random projection on
    // isotropic Gaussian data (its per-feature level signal is small
    // relative to the global feature range); functional means far above
    // the 1/12 chance level.
    assert!(software > 0.30, "record-encoder software accuracy only {software}");

    let mut am = AmClassifier::from_model(&model, &AmConfig::default()).expect("builds");
    let hw = am.accuracy(&model, &data.test).expect("searches");
    assert!(hw > software - 0.15, "AM accuracy {hw} vs software {software}");
}

#[test]
fn encoders_are_comparable_on_the_same_data() {
    let data = dataset();
    let proj = ProjectionEncoder::new(data.n_features(), 2048, 9);
    let record = RecordEncoder::fit(2048, 16, 9, data.train.iter().map(|s| s.features.as_slice()));
    let m_proj = HdcModel::train_single_pass(proj, &data.train, data.n_classes());
    let m_record = HdcModel::train_single_pass(record, &data.train, data.n_classes());
    let a_proj = m_proj.accuracy(&data.test);
    let a_record = m_record.accuracy(&data.test);
    // Both encoders must be functional (chance = 1/12); projection is
    // expected to dominate on this data.
    assert!(a_proj > 0.8, "projection {a_proj}");
    assert!(a_record > 0.25, "record {a_record}");
    assert!(a_proj >= a_record);
}

#[test]
fn trait_objects_allow_runtime_encoder_choice() {
    let data = dataset();
    let encoders: Vec<Box<dyn FeatureEncoder>> = vec![
        Box::new(ProjectionEncoder::new(data.n_features(), 512, 1)),
        Box::new(RecordEncoder::fit(512, 8, 1, data.train.iter().map(|s| s.features.as_slice()))),
    ];
    for enc in &encoders {
        let hv = enc.encode(&data.test[0].features);
        assert_eq!(hv.dim(), 512);
    }
}
