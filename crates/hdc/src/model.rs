//! HDC classification model: single-pass and iterative training, software
//! inference.
//!
//! "Second, single-pass training is performed, where the encoded
//! high-dimensional vectors of a certain class are aggregated. Iterative
//! training \[is\] conducted for higher algorithmic accuracy. Finally, during
//! the inference phase of classification, the predicted class vector that
//! has closest distance to the query vector is output" (paper Sec. IV-B).

use crate::encoder::{FeatureEncoder, ProjectionEncoder};
use crate::hypervector::{Accumulator, Hypervector};
use ferex_datasets::dataset::Sample;

/// A trained HDC classifier: one accumulated prototype per class.
///
/// Generic over the [`FeatureEncoder`]; defaults to the paper's random
/// projection, with the record-based [`crate::level::RecordEncoder`] as the
/// drop-in alternative.
#[derive(Debug, Clone, PartialEq)]
pub struct HdcModel<E = ProjectionEncoder> {
    encoder: E,
    classes: Vec<Accumulator>,
}

/// Training statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Misclassified-sample count per retraining epoch (empty for pure
    /// single-pass training).
    pub epoch_errors: Vec<usize>,
}

impl<E: FeatureEncoder> HdcModel<E> {
    /// Single-pass training: bundle every sample's hypervector into its
    /// class accumulator.
    ///
    /// # Panics
    ///
    /// Panics if `n_classes == 0`, `samples` is empty, or a label is out of
    /// range.
    pub fn train_single_pass(encoder: E, samples: &[Sample], n_classes: usize) -> Self {
        assert!(n_classes > 0, "need at least one class");
        assert!(!samples.is_empty(), "need at least one training sample");
        let mut classes = vec![Accumulator::new(encoder.dim()); n_classes];
        for s in samples {
            assert!(s.label < n_classes, "label {} out of range", s.label);
            let hv = encoder.encode(&s.features);
            classes[s.label].add(&hv, 1);
        }
        HdcModel { encoder, classes }
    }

    /// Iterative (perceptron-style) retraining: for each misclassified
    /// sample, reinforce the true class and penalize the predicted one.
    /// Returns per-epoch error counts; stops early once an epoch is
    /// error-free.
    pub fn retrain(&mut self, samples: &[Sample], epochs: usize) -> TrainReport {
        let mut epoch_errors = Vec::with_capacity(epochs);
        for _ in 0..epochs {
            let mut errors = 0;
            for s in samples {
                let hv = self.encoder.encode(&s.features);
                let pred = self.classify_hv(&hv);
                if pred != s.label {
                    self.classes[s.label].add(&hv, 1);
                    self.classes[pred].add(&hv, -1);
                    errors += 1;
                }
            }
            epoch_errors.push(errors);
            if errors == 0 {
                break;
            }
        }
        TrainReport { epoch_errors }
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.classes.len()
    }

    /// The encoder used by this model.
    pub fn encoder(&self) -> &E {
        &self.encoder
    }

    /// Hypervector dimensionality.
    pub fn dim(&self) -> usize {
        self.encoder.dim()
    }

    /// The bipolar class prototypes (collapsed accumulators) — what gets
    /// quantized and stored into the FeReX array.
    pub fn class_prototypes(&self) -> Vec<Hypervector> {
        self.classes.iter().map(Accumulator::to_hypervector).collect()
    }

    /// The raw accumulator sums per class (for value-quantized AM storage).
    pub fn class_sums(&self) -> Vec<&[i64]> {
        self.classes.iter().map(Accumulator::sums).collect()
    }

    /// Classifies an already-encoded hypervector with full-precision
    /// accumulator similarity (the "software-based implementation" of the
    /// paper's comparisons).
    pub fn classify_hv(&self, hv: &Hypervector) -> usize {
        self.classes
            .iter()
            .enumerate()
            .max_by_key(|(_, acc)| acc.similarity(hv))
            .map(|(i, _)| i)
            .expect("at least one class")
    }

    /// Encodes and classifies a raw feature vector.
    pub fn classify(&self, features: &[f32]) -> usize {
        self.classify_hv(&self.encoder.encode(features))
    }

    /// Accuracy over a labeled set.
    pub fn accuracy(&self, samples: &[Sample]) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        let correct = samples.iter().filter(|s| self.classify(&s.features) == s.label).count();
        correct as f64 / samples.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ferex_datasets::spec::UCIHAR;
    use ferex_datasets::synth::{generate, SynthOptions};

    fn small_setup() -> (ferex_datasets::Dataset, HdcModel) {
        let spec = UCIHAR.scaled(0.03);
        let data = generate(&spec, &SynthOptions::default());
        let encoder = ProjectionEncoder::new(spec.n_features, 2048, 11);
        let model = HdcModel::train_single_pass(encoder, &data.train, spec.n_classes);
        (data, model)
    }

    #[test]
    fn single_pass_training_classifies_well() {
        let (data, model) = small_setup();
        let acc = model.accuracy(&data.test);
        assert!(acc > 0.85, "single-pass accuracy only {acc}");
    }

    #[test]
    fn retraining_does_not_hurt() {
        let (data, mut model) = small_setup();
        let before = model.accuracy(&data.test);
        let report = model.retrain(&data.train, 5);
        let after = model.accuracy(&data.test);
        assert!(!report.epoch_errors.is_empty());
        assert!(after >= before - 0.03, "retraining regressed {before} → {after}");
    }

    #[test]
    fn retraining_errors_decrease_on_train_set() {
        let (data, mut model) = small_setup();
        let report = model.retrain(&data.train, 8);
        let first = report.epoch_errors[0];
        let last = *report.epoch_errors.last().unwrap();
        assert!(last <= first, "train errors grew: {:?}", report.epoch_errors);
    }

    #[test]
    fn prototypes_have_model_dimension() {
        let (_, model) = small_setup();
        let protos = model.class_prototypes();
        assert_eq!(protos.len(), model.n_classes());
        assert!(protos.iter().all(|p| p.dim() == model.dim()));
    }

    #[test]
    fn classify_hv_agrees_with_classify() {
        let (data, model) = small_setup();
        let s = &data.test[0];
        let hv = model.encoder().encode(&s.features);
        assert_eq!(model.classify_hv(&hv), model.classify(&s.features));
    }

    #[test]
    fn empty_test_set_scores_zero() {
        let (_, model) = small_setup();
        assert_eq!(model.accuracy(&[]), 0.0);
    }
}
