//! Feature encoding into hyperdimensional space.
//!
//! "In HDC, low dimensional features are initially projected to high
//! dimensional representations randomly, enabling holographicness across
//! the high dimensional feature vectors" (paper Sec. IV-B). We implement
//! the standard random signed projection: a fixed ±1 matrix `P` (seeded,
//! never stored on disk) maps a feature vector `x` to `sign(P·x)`.

use crate::hypervector::Hypervector;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Anything that maps feature vectors into hyperspace.
///
/// The HDC model and AM classifier are generic over this trait, so the
/// projection encoder (this module) and the record-based ID–level encoder
/// ([`crate::level`]) are interchangeable.
pub trait FeatureEncoder {
    /// Input feature dimensionality.
    fn n_features(&self) -> usize;

    /// Output hypervector dimensionality.
    fn dim(&self) -> usize;

    /// Encodes one feature vector.
    ///
    /// # Panics
    ///
    /// Implementations panic on feature-count mismatch.
    fn encode(&self, features: &[f32]) -> Hypervector;
}

/// Random signed-projection encoder.
///
/// # Examples
///
/// ```
/// use ferex_hdc::encoder::ProjectionEncoder;
///
/// let enc = ProjectionEncoder::new(16, 512, 7);
/// let hv = enc.encode(&[0.5; 16]);
/// assert_eq!(hv.dim(), 512);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ProjectionEncoder {
    n_features: usize,
    dim: usize,
    /// Row-major ±1 projection, `dim` rows × `n_features` columns.
    projection: Vec<i8>,
}

impl ProjectionEncoder {
    /// Builds the encoder with a deterministic projection from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `n_features == 0` or `dim == 0`.
    pub fn new(n_features: usize, dim: usize, seed: u64) -> Self {
        assert!(n_features > 0 && dim > 0, "encoder dimensions must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let projection =
            (0..n_features * dim).map(|_| if rng.gen::<bool>() { 1i8 } else { -1 }).collect();
        ProjectionEncoder { n_features, dim, projection }
    }

    /// Input feature dimensionality.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Output hypervector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Encodes a feature vector: `sign(P·x)` (ties break to +1).
    ///
    /// # Panics
    ///
    /// Panics on feature-count mismatch.
    pub fn encode(&self, features: &[f32]) -> Hypervector {
        FeatureEncoder::encode(self, features)
    }
}

impl FeatureEncoder for ProjectionEncoder {
    fn n_features(&self) -> usize {
        self.n_features
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn encode(&self, features: &[f32]) -> Hypervector {
        assert_eq!(features.len(), self.n_features, "feature count mismatch");
        let comps: Vec<i8> = (0..self.dim)
            .map(|d| {
                let row = &self.projection[d * self.n_features..(d + 1) * self.n_features];
                let dot: f64 = row.iter().zip(features).map(|(&p, &x)| p as f64 * x as f64).sum();
                if dot >= 0.0 {
                    1
                } else {
                    -1
                }
            })
            .collect();
        Hypervector::from_components(comps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoding_is_deterministic() {
        let a = ProjectionEncoder::new(8, 256, 3);
        let b = ProjectionEncoder::new(8, 256, 3);
        let x = [0.1f32, -0.5, 2.0, 0.0, 1.0, -1.0, 0.25, 3.0];
        assert_eq!(a.encode(&x), b.encode(&x));
    }

    #[test]
    fn different_seeds_give_different_projections() {
        let a = ProjectionEncoder::new(8, 256, 3);
        let b = ProjectionEncoder::new(8, 256, 4);
        let x = [1.0f32; 8];
        assert_ne!(a.encode(&x), b.encode(&x));
    }

    #[test]
    fn similar_inputs_encode_similarly() {
        // Locality: small perturbations flip few signs; distant inputs flip
        // about half (the property nearest-neighbor search relies on).
        let enc = ProjectionEncoder::new(32, 2048, 9);
        let x: Vec<f32> = (0..32).map(|i| (i as f32 * 0.37).sin()).collect();
        let mut near = x.clone();
        near[0] += 0.01;
        let far: Vec<f32> = x.iter().map(|v| -v).collect();
        let hx = enc.encode(&x);
        let d_near = hx.hamming(&enc.encode(&near));
        let d_far = hx.hamming(&enc.encode(&far));
        assert!(d_near < 100, "near perturbation flipped {d_near}");
        assert!(d_far > 1800, "negation flipped only {d_far}");
    }

    #[test]
    fn scaling_input_preserves_encoding() {
        // sign(P·(c·x)) = sign(P·x) for c > 0.
        let enc = ProjectionEncoder::new(16, 512, 1);
        let x: Vec<f32> = (0..16).map(|i| i as f32 - 8.0).collect();
        let scaled: Vec<f32> = x.iter().map(|v| v * 3.5).collect();
        assert_eq!(enc.encode(&x), enc.encode(&scaled));
    }

    #[test]
    #[should_panic(expected = "feature count")]
    fn arity_checked() {
        let enc = ProjectionEncoder::new(4, 64, 0);
        let _ = enc.encode(&[1.0, 2.0]);
    }
}
