//! HDC inference through the FeReX associative memory.
//!
//! The paper's application flow (Sec. IV-B): class hypervectors are
//! quantized to multi-bit symbols and programmed into the FeReX array (one
//! row per class); at inference the encoded query is quantized with the
//! same ranges and a single associative search returns the class whose
//! vector has minimal distance under the *configured* metric. Swapping the
//! metric re-encodes the same array — the Fig. 8(a) experiment.

use crate::encoder::FeatureEncoder;
use crate::hypervector::Hypervector;
use crate::model::HdcModel;
use ferex_core::{Backend, DistanceMetric, Ferex, FerexError};
use ferex_datasets::dataset::Sample;
use ferex_fefet::Technology;

/// Configuration of the AM inference stage.
#[derive(Debug, Clone)]
pub struct AmConfig {
    /// Distance metric the array is configured for.
    pub metric: DistanceMetric,
    /// Symbol bit width the class vectors are quantized to.
    pub bits: u32,
    /// Array simulation backend.
    pub backend: Backend,
    /// Technology card.
    pub tech: Technology,
}

impl Default for AmConfig {
    fn default() -> Self {
        AmConfig {
            metric: DistanceMetric::Hamming,
            bits: 2,
            backend: Backend::Ideal,
            tech: Technology::default(),
        }
    }
}

/// An HDC classifier whose similarity search runs on a FeReX array.
#[derive(Debug, Clone)]
pub struct AmClassifier {
    ferex: Ferex,
    /// Per-dimension symmetric quantization scale for class sums.
    scale: Vec<f64>,
    bits: u32,
}

impl AmClassifier {
    /// Quantizes the trained model's class vectors and programs them into a
    /// freshly configured FeReX array.
    ///
    /// Class accumulator sums are quantized per dimension, symmetrically
    /// around zero (so the bipolar query maps onto the symbol extremes
    /// consistently).
    ///
    /// # Errors
    ///
    /// Encoding-pipeline failures for the requested metric/bits.
    pub fn from_model<E: FeatureEncoder>(
        model: &HdcModel<E>,
        config: &AmConfig,
    ) -> Result<Self, FerexError> {
        let mut ferex = Ferex::builder()
            .metric(config.metric)
            .bits(config.bits)
            .dim(model.dim())
            .technology(config.tech.clone())
            .backend(config.backend.clone())
            .build()?;
        let sums = model.class_sums();
        // Symmetric per-dimension scale: the largest |sum| over classes.
        let dim = model.dim();
        let mut scale = vec![1.0f64; dim];
        for (d, s) in scale.iter_mut().enumerate() {
            let max_abs = sums.iter().map(|c| c[d].unsigned_abs()).max().unwrap_or(1).max(1);
            *s = max_abs as f64;
        }
        let top = ((1u32 << config.bits) - 1) as f64;
        for class in &sums {
            let symbols: Vec<u32> = class
                .iter()
                .zip(&scale)
                .map(|(&v, &s)| {
                    let t = ((v as f64 / s) + 1.0) / 2.0; // [-1,1] → [0,1]
                    (t.clamp(0.0, 1.0) * top).round() as u32
                })
                .collect();
            ferex.store(symbols)?;
        }
        Ok(AmClassifier { ferex, scale, bits: config.bits })
    }

    /// The underlying engine (for cost reporting or inspection).
    pub fn ferex(&self) -> &Ferex {
        &self.ferex
    }

    /// Mutable engine access.
    pub fn ferex_mut(&mut self) -> &mut Ferex {
        &mut self.ferex
    }

    /// Reconfigures the array to a different metric without retraining —
    /// the headline reconfigurability experiment.
    ///
    /// # Errors
    ///
    /// Encoding failures for the new metric.
    pub fn reconfigure(&mut self, metric: DistanceMetric) -> Result<(), FerexError> {
        self.ferex.reconfigure(metric)
    }

    /// Quantizes a query hypervector onto the symbol grid: −1 → 0,
    /// +1 → top symbol (the bipolar extremes of the symmetric range).
    pub fn quantize_query(&self, hv: &Hypervector) -> Vec<u32> {
        let top = (1u32 << self.bits) - 1;
        hv.components().iter().map(|&c| if c > 0 { top } else { 0 }).collect()
    }

    /// Classifies an encoded query through one associative search.
    ///
    /// # Errors
    ///
    /// Search errors from the array.
    pub fn classify_hv(&mut self, hv: &Hypervector) -> Result<usize, FerexError> {
        let symbols = self.quantize_query(hv);
        Ok(self.ferex.search(&symbols)?.nearest)
    }

    /// Classifies a batch of encoded queries through the batched serving
    /// path ([`ferex_core::FerexArray::search_batch`]): the array is
    /// programmed once and the per-batch cell-current tables are shared
    /// across every query.
    ///
    /// # Errors
    ///
    /// Search errors from the array.
    pub fn classify_batch(&mut self, hvs: &[Hypervector]) -> Result<Vec<usize>, FerexError> {
        // The engine's batch path is a pure `&self` read; bring a stale
        // stochastic backend up to date before serving.
        self.ferex.ensure_programmed()?;
        let queries: Vec<Vec<u32>> = hvs.iter().map(|hv| self.quantize_query(hv)).collect();
        let outcomes = self.ferex.search_batch(&queries)?;
        Ok(outcomes.into_iter().map(|o| o.nearest).collect())
    }

    /// Classifies with a confidence margin: the relative distance gap
    /// between the winning class and the runner-up
    /// (`(d₂ − d₁)/max(d₂, ε)` ∈ [0, 1]). A tiny margin flags an ambiguous
    /// decision — the quantity a system would thresh to fall back to a
    /// high-precision path.
    ///
    /// # Errors
    ///
    /// Search errors; requires at least two classes.
    pub fn classify_with_margin(&mut self, hv: &Hypervector) -> Result<(usize, f64), FerexError> {
        let symbols = self.quantize_query(hv);
        let ranked = self.ferex.search_k(&symbols, 2)?;
        let distances = self.ferex.array_mut().distances(&symbols)?;
        let d1 = distances[ranked[0]];
        let d2 = distances[ranked[1]];
        let margin = ((d2 - d1) / d2.max(1e-12)).clamp(0.0, 1.0);
        Ok((ranked[0], margin))
    }

    /// Encodes (with the model's encoder) and classifies a raw sample
    /// stream; returns accuracy.
    ///
    /// The whole stream is served through one [`AmClassifier::classify_batch`]
    /// call, so the array is programmed once for the entire evaluation.
    ///
    /// # Errors
    ///
    /// Search errors from the array.
    pub fn accuracy<E: FeatureEncoder>(
        &mut self,
        model: &HdcModel<E>,
        samples: &[Sample],
    ) -> Result<f64, FerexError> {
        if samples.is_empty() {
            return Ok(0.0);
        }
        let hvs: Vec<Hypervector> =
            samples.iter().map(|s| model.encoder().encode(&s.features)).collect();
        let predicted = self.classify_batch(&hvs)?;
        let correct = predicted.iter().zip(samples).filter(|(p, s)| **p == s.label).count();
        Ok(correct as f64 / samples.len() as f64)
    }

    /// The per-dimension quantization scales (exposed for analysis).
    pub fn scales(&self) -> &[f64] {
        &self.scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::ProjectionEncoder;
    use ferex_datasets::spec::UCIHAR;
    use ferex_datasets::synth::{generate, SynthOptions};

    fn trained() -> (ferex_datasets::Dataset, HdcModel) {
        let spec = UCIHAR.scaled(0.02);
        let data = generate(&spec, &SynthOptions::default());
        let encoder = ProjectionEncoder::new(spec.n_features, 1024, 5);
        let mut model = HdcModel::train_single_pass(encoder, &data.train, spec.n_classes);
        model.retrain(&data.train, 3);
        (data, model)
    }

    #[test]
    fn am_inference_tracks_software_accuracy() {
        let (data, model) = trained();
        let software = model.accuracy(&data.test);
        let mut am = AmClassifier::from_model(&model, &AmConfig::default()).expect("builds");
        let hw = am.accuracy(&model, &data.test).expect("searches");
        assert!(
            hw > software - 0.10,
            "AM accuracy {hw} fell more than 10 points below software {software}"
        );
    }

    #[test]
    fn metric_reconfiguration_works_in_place() {
        let (data, model) = trained();
        let mut am = AmClassifier::from_model(&model, &AmConfig::default()).expect("builds");
        let mut accs = Vec::new();
        for metric in
            [DistanceMetric::Hamming, DistanceMetric::Manhattan, DistanceMetric::EuclideanSquared]
        {
            am.reconfigure(metric).expect("reconfigures");
            let n = data.test.len().min(100);
            let acc = am.accuracy(&model, &data.test[..n]).expect("searches");
            accs.push(acc);
        }
        // Every metric must be usable (well above chance = 1/12).
        for (m, acc) in DistanceMetric::ALL.iter().zip(&accs) {
            assert!(*acc > 0.5, "{m} accuracy {acc}");
        }
    }

    #[test]
    fn margin_is_high_for_confident_decisions() {
        let (data, model) = trained();
        let mut am = AmClassifier::from_model(&model, &AmConfig::default()).expect("builds");
        let mut margins = Vec::new();
        for s in data.test.iter().take(20) {
            let hv = model.encoder().encode(&s.features);
            let (pred, margin) = am.classify_with_margin(&hv).expect("searches");
            assert!((0.0..=1.0).contains(&margin));
            // The margin-returning path must agree with the plain path.
            assert_eq!(pred, am.classify_hv(&hv).expect("searches"));
            margins.push(margin);
        }
        // On well-separated data most decisions carry a real margin.
        let mean: f64 = margins.iter().sum::<f64>() / margins.len() as f64;
        assert!(mean > 0.05, "mean margin {mean} suspiciously low");
    }

    #[test]
    fn batch_classification_matches_scalar_on_ideal_backend() {
        let (data, model) = trained();
        let mut am = AmClassifier::from_model(&model, &AmConfig::default()).expect("builds");
        let hvs: Vec<_> =
            data.test.iter().take(16).map(|s| model.encoder().encode(&s.features)).collect();
        let expected: Vec<usize> =
            hvs.iter().map(|hv| am.classify_hv(hv).expect("searches")).collect();
        assert_eq!(am.classify_batch(&hvs).expect("searches"), expected);
    }

    #[test]
    fn query_quantization_maps_to_extremes() {
        let (_, model) = trained();
        let am = AmClassifier::from_model(&model, &AmConfig::default()).expect("builds");
        let hv = model.encoder().encode(&vec![0.3; model.encoder().n_features()]);
        let q = am.quantize_query(&hv);
        assert!(q.iter().all(|&s| s == 0 || s == 3));
    }
}
