//! Record-based (ID–level) hypervector encoding.
//!
//! The classical alternative to random projection (and the scheme used by
//! several FeFET HDC encoders the paper cites, e.g. Huang et al. TCAD'23):
//! each feature index gets a random *item* hypervector, each quantized
//! feature magnitude gets a *level* hypervector from a correlated chain
//! (adjacent levels nearly identical, extreme levels quasi-orthogonal), and
//! a sample is encoded as the bundle of `item ⊛ level` bindings.

use crate::encoder::FeatureEncoder;
use crate::hypervector::{Accumulator, Hypervector};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Record-based encoder with per-feature value ranges fit on training data.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordEncoder {
    dim: usize,
    n_levels: usize,
    items: Vec<Hypervector>,
    levels: Vec<Hypervector>,
    mins: Vec<f32>,
    maxs: Vec<f32>,
}

impl RecordEncoder {
    /// Builds the encoder: random item memory, flip-interpolated level
    /// chain, and per-feature ranges fit on `samples`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`, `n_levels < 2`, or `samples` is empty/ragged.
    pub fn fit<'a, I>(dim: usize, n_levels: usize, seed: u64, samples: I) -> Self
    where
        I: IntoIterator<Item = &'a [f32]>,
    {
        assert!(dim > 0, "dimension must be positive");
        assert!(n_levels >= 2, "need at least two levels");
        let mut iter = samples.into_iter();
        let first = iter.next().expect("at least one sample required");
        let n_features = first.len();
        let mut mins = first.to_vec();
        let mut maxs = first.to_vec();
        for s in iter {
            assert_eq!(s.len(), n_features, "ragged samples");
            for ((mn, mx), &x) in mins.iter_mut().zip(maxs.iter_mut()).zip(s) {
                if x < *mn {
                    *mn = x;
                }
                if x > *mx {
                    *mx = x;
                }
            }
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let items = (0..n_features).map(|_| Hypervector::random(dim, &mut rng)).collect();
        // Level chain: start random; per step flip a fresh slice of
        // dim/(2(L-1)) positions so level 0 and level L-1 differ in half the
        // positions (quasi-orthogonal) while neighbors stay similar.
        let mut levels: Vec<Hypervector> = Vec::with_capacity(n_levels);
        let mut current: Vec<i8> = Hypervector::random(dim, &mut rng).components().to_vec();
        levels.push(Hypervector::from_components(current.clone()));
        let per_step = dim / (2 * (n_levels - 1));
        let mut order: Vec<usize> = (0..dim).collect();
        // Fisher-Yates with the seeded rng for a deterministic flip order.
        for i in (1..dim).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        for step in 1..n_levels {
            for &pos in &order[(step - 1) * per_step..step * per_step] {
                current[pos] = -current[pos];
            }
            levels.push(Hypervector::from_components(current.clone()));
        }
        RecordEncoder { dim, n_levels, items, levels, mins, maxs }
    }

    /// Number of quantization levels.
    pub fn n_levels(&self) -> usize {
        self.n_levels
    }

    /// The level index a raw feature value maps to.
    pub fn level_of(&self, feature: usize, value: f32) -> usize {
        let (mn, mx) = (self.mins[feature], self.maxs[feature]);
        if mx <= mn {
            return 0;
        }
        let t = ((value - mn) / (mx - mn)).clamp(0.0, 1.0);
        ((t * (self.n_levels - 1) as f32).round() as usize).min(self.n_levels - 1)
    }
}

impl FeatureEncoder for RecordEncoder {
    fn n_features(&self) -> usize {
        self.items.len()
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn encode(&self, features: &[f32]) -> Hypervector {
        assert_eq!(features.len(), self.items.len(), "feature count mismatch");
        let mut acc = Accumulator::new(self.dim);
        for (f, &x) in features.iter().enumerate() {
            let level = &self.levels[self.level_of(f, x)];
            acc.add(&self.items[f].bind(level), 1);
        }
        acc.to_hypervector()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_samples() -> Vec<Vec<f32>> {
        (0..20).map(|i| (0..8).map(|f| ((i * 7 + f * 3) % 11) as f32 / 10.0).collect()).collect()
    }

    fn fit() -> RecordEncoder {
        let samples = toy_samples();
        RecordEncoder::fit(2048, 8, 5, samples.iter().map(|v| v.as_slice()))
    }

    #[test]
    fn level_chain_is_correlated() {
        let enc = fit();
        let l = &enc.levels;
        // Adjacent levels: small Hamming distance; extremes: ~dim/2.
        let near = l[0].hamming(&l[1]);
        let far = l[0].hamming(&l[7]);
        assert!(near < enc.dim / 8, "adjacent levels too different: {near}");
        assert!(
            (enc.dim / 3..2 * enc.dim / 3).contains(&far),
            "extreme levels not quasi-orthogonal: {far}"
        );
        // Monotone: distance from level 0 grows along the chain.
        let mut last = 0;
        for k in 1..8 {
            let d = l[0].hamming(&l[k]);
            assert!(d >= last, "level chain not monotone at {k}");
            last = d;
        }
    }

    #[test]
    fn encoding_is_deterministic_and_local() {
        let enc = fit();
        let samples = toy_samples();
        let a = enc.encode(&samples[0]);
        let b = enc.encode(&samples[0]);
        assert_eq!(a, b);
        // Perturbing one feature slightly changes few components.
        let mut near_input = samples[0].clone();
        near_input[0] += 0.05;
        let c = enc.encode(&near_input);
        assert!(a.hamming(&c) < enc.dim() / 4, "tiny change flipped {}", a.hamming(&c));
    }

    #[test]
    fn distinct_inputs_encode_distinctly() {
        let enc = fit();
        let samples = toy_samples();
        let a = enc.encode(&samples[0]);
        let far: Vec<f32> = samples[0].iter().map(|v| 1.0 - v).collect();
        let b = enc.encode(&far);
        assert!(a.hamming(&b) > enc.dim() / 8);
    }

    #[test]
    fn level_quantization_covers_range() {
        let enc = fit();
        assert_eq!(enc.level_of(0, -100.0), 0);
        assert_eq!(enc.level_of(0, 100.0), enc.n_levels() - 1);
    }

    #[test]
    fn trait_object_usable() {
        let enc = fit();
        let dynamic: &dyn FeatureEncoder = &enc;
        let samples = toy_samples();
        assert_eq!(dynamic.encode(&samples[0]).dim(), 2048);
        assert_eq!(dynamic.n_features(), 8);
    }
}
