//! Sequence encoding with permutation — the n-gram construction used by
//! HDC language/signal pipelines (VSA framework, paper ref \[37\]).
//!
//! Order matters: the i-th item of a window is rotated `n−1−i` times before
//! binding, so `(a, b)` and `(b, a)` encode to quasi-orthogonal vectors.

use crate::hypervector::{Accumulator, Hypervector};

/// Encodes one n-gram: `ρ^{n−1}(x₀) ⊛ ρ^{n−2}(x₁) ⊛ … ⊛ ρ⁰(x_{n−1})`.
///
/// # Panics
///
/// Panics if `items` is empty or dimensions mismatch.
pub fn ngram(items: &[&Hypervector]) -> Hypervector {
    assert!(!items.is_empty(), "n-gram needs at least one item");
    let n = items.len();
    let mut acc = items[0].permute(n - 1);
    for (i, item) in items.iter().enumerate().skip(1) {
        acc = acc.bind(&item.permute(n - 1 - i));
    }
    acc
}

/// Encodes a whole sequence as the bundle of its sliding n-grams.
///
/// # Panics
///
/// Panics if `window == 0` or the sequence is shorter than the window.
pub fn encode_sequence(sequence: &[&Hypervector], window: usize) -> Hypervector {
    assert!(window > 0, "window must be positive");
    assert!(sequence.len() >= window, "sequence shorter than the window");
    let dim = sequence[0].dim();
    let mut acc = Accumulator::new(dim);
    for chunk in sequence.windows(window) {
        acc.add(&ngram(chunk), 1);
    }
    acc.to_hypervector()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn items(n: usize, dim: usize) -> Vec<Hypervector> {
        let mut rng = StdRng::seed_from_u64(7);
        (0..n).map(|_| Hypervector::random(dim, &mut rng)).collect()
    }

    #[test]
    fn permutation_round_trip_and_orthogonality() {
        let v = items(1, 2048).remove(0);
        let p = v.permute(13);
        assert_eq!(p.permute(2048 - 13), v);
        assert!(v.similarity(&p).abs() < 300, "permuted vector not orthogonal");
        // Full rotation is identity.
        assert_eq!(v.permute(2048), v);
    }

    #[test]
    fn ngram_is_order_sensitive() {
        let its = items(2, 2048);
        let ab = ngram(&[&its[0], &its[1]]);
        let ba = ngram(&[&its[1], &its[0]]);
        assert!(ab.similarity(&ba).abs() < 300, "order should matter");
    }

    #[test]
    fn identical_sequences_encode_identically() {
        let its = items(5, 1024);
        let refs: Vec<&Hypervector> = its.iter().collect();
        assert_eq!(encode_sequence(&refs, 3), encode_sequence(&refs, 3));
    }

    #[test]
    fn similar_sequences_encode_similarly() {
        let its = items(8, 4096);
        let seq_a: Vec<&Hypervector> = its[..6].iter().collect();
        // Same sequence with the last element replaced: shares most n-grams.
        let mut seq_b = seq_a.clone();
        seq_b[5] = &its[7];
        let unrelated: Vec<&Hypervector> = its[2..8].iter().collect();
        let a = encode_sequence(&seq_a, 2);
        let b = encode_sequence(&seq_b, 2);
        let c = encode_sequence(&unrelated, 2);
        assert!(
            a.similarity(&b) > a.similarity(&c),
            "one-item edit should stay closer than a shifted sequence"
        );
    }

    #[test]
    fn unigram_window_is_a_plain_bundle() {
        let its = items(3, 1024);
        let refs: Vec<&Hypervector> = its.iter().collect();
        let seq = encode_sequence(&refs, 1);
        // Every member stays similar to the bundle.
        for it in &its {
            assert!(seq.similarity(it) > 100, "bundle lost a member");
        }
    }

    #[test]
    #[should_panic(expected = "shorter than the window")]
    fn short_sequence_rejected() {
        let its = items(2, 64);
        let refs: Vec<&Hypervector> = its.iter().collect();
        let _ = encode_sequence(&refs, 3);
    }
}
