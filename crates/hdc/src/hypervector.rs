//! Dense bipolar hypervectors and the core VSA operations.
//!
//! Hyperdimensional computing (the vector-symbolic architecture framework
//! the paper benchmarks, refs \[37\]\[41\]\[42\]) represents everything as
//! high-dimensional vectors with three operations: *binding* (elementwise
//! multiply), *bundling* (elementwise add, then sign), and *similarity*
//! (dot product). We use the bipolar (±1) flavor, which quantizes cleanly
//! to the multi-bit symbols FeReX stores.

use rand::Rng;

/// A dense bipolar hypervector (components ∈ {−1, +1}).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hypervector {
    components: Vec<i8>,
}

impl Hypervector {
    /// A uniformly random hypervector of dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn random<R: Rng + ?Sized>(dim: usize, rng: &mut R) -> Self {
        assert!(dim > 0, "dimension must be positive");
        Hypervector {
            components: (0..dim).map(|_| if rng.gen::<bool>() { 1 } else { -1 }).collect(),
        }
    }

    /// Builds a hypervector from raw ±1 components.
    ///
    /// # Panics
    ///
    /// Panics if any component is not ±1 or the slice is empty.
    pub fn from_components(components: Vec<i8>) -> Self {
        assert!(!components.is_empty(), "dimension must be positive");
        assert!(components.iter().all(|&c| c == 1 || c == -1), "components must be ±1");
        Hypervector { components }
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.components.len()
    }

    /// The raw components.
    pub fn components(&self) -> &[i8] {
        &self.components
    }

    /// Binding: elementwise multiplication. Produces a vector dissimilar to
    /// both operands; self-inverse.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn bind(&self, other: &Hypervector) -> Hypervector {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        Hypervector {
            components: self
                .components
                .iter()
                .zip(&other.components)
                .map(|(&a, &b)| a * b)
                .collect(),
        }
    }

    /// Dot-product similarity in `[-dim, dim]`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn similarity(&self, other: &Hypervector) -> i64 {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        self.components.iter().zip(&other.components).map(|(&a, &b)| (a as i64) * (b as i64)).sum()
    }

    /// Hamming distance between the sign patterns (0 = identical).
    pub fn hamming(&self, other: &Hypervector) -> usize {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        self.components.iter().zip(&other.components).filter(|(a, b)| a != b).count()
    }

    /// Permutation ρ: cyclic rotation by `shift` positions — the VSA
    /// sequence/position marker. `permute(k)` then `permute(dim − k)` is
    /// the identity, and a permuted vector is quasi-orthogonal to the
    /// original.
    pub fn permute(&self, shift: usize) -> Hypervector {
        let n = self.components.len();
        let shift = shift % n;
        let mut components = Vec::with_capacity(n);
        components.extend_from_slice(&self.components[n - shift..]);
        components.extend_from_slice(&self.components[..n - shift]);
        Hypervector { components }
    }
}

/// An integer accumulator for bundling many hypervectors before taking the
/// sign — the class-prototype representation during HDC training.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Accumulator {
    sums: Vec<i64>,
}

impl Accumulator {
    /// A zero accumulator of dimension `dim`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        Accumulator { sums: vec![0; dim] }
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.sums.len()
    }

    /// Adds a hypervector (optionally negated) into the bundle.
    pub fn add(&mut self, hv: &Hypervector, sign: i64) {
        assert_eq!(self.dim(), hv.dim(), "dimension mismatch");
        for (s, &c) in self.sums.iter_mut().zip(hv.components()) {
            *s += sign * c as i64;
        }
    }

    /// The raw component sums.
    pub fn sums(&self) -> &[i64] {
        &self.sums
    }

    /// Collapses the bundle to a bipolar hypervector (sign; ties to +1).
    pub fn to_hypervector(&self) -> Hypervector {
        Hypervector { components: self.sums.iter().map(|&s| if s >= 0 { 1 } else { -1 }).collect() }
    }

    /// Dot-product similarity between the (un-collapsed) bundle and a
    /// hypervector — the higher-precision score iterative training uses.
    pub fn similarity(&self, hv: &Hypervector) -> i64 {
        assert_eq!(self.dim(), hv.dim(), "dimension mismatch");
        self.sums.iter().zip(hv.components()).map(|(&s, &c)| s * c as i64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn random_hypervectors_are_quasi_orthogonal() {
        let mut r = rng();
        let a = Hypervector::random(4096, &mut r);
        let b = Hypervector::random(4096, &mut r);
        assert_eq!(a.similarity(&a), 4096);
        // Random pair: similarity concentrates near 0 (±~2√d).
        assert!(a.similarity(&b).abs() < 300, "similarity {}", a.similarity(&b));
    }

    #[test]
    fn binding_is_self_inverse_and_dissimilar() {
        let mut r = rng();
        let a = Hypervector::random(2048, &mut r);
        let key = Hypervector::random(2048, &mut r);
        let bound = a.bind(&key);
        assert_eq!(bound.bind(&key), a);
        assert!(a.similarity(&bound).abs() < 250);
    }

    #[test]
    fn bundling_preserves_similarity_to_members() {
        let mut r = rng();
        let members: Vec<Hypervector> = (0..5).map(|_| Hypervector::random(4096, &mut r)).collect();
        let outsider = Hypervector::random(4096, &mut r);
        let mut acc = Accumulator::new(4096);
        for m in &members {
            acc.add(m, 1);
        }
        let bundle = acc.to_hypervector();
        for m in &members {
            assert!(bundle.similarity(m) > outsider.similarity(m) + 500, "bundle lost a member");
        }
    }

    #[test]
    fn hamming_and_similarity_are_consistent() {
        let mut r = rng();
        let a = Hypervector::random(1000, &mut r);
        let b = Hypervector::random(1000, &mut r);
        let h = a.hamming(&b);
        // similarity = dim − 2·hamming for bipolar vectors.
        assert_eq!(a.similarity(&b), 1000 - 2 * h as i64);
    }

    #[test]
    fn accumulator_sign_with_negation() {
        let hv = Hypervector::from_components(vec![1, -1, 1, -1]);
        let mut acc = Accumulator::new(4);
        acc.add(&hv, 1);
        acc.add(&hv, 1);
        acc.add(&hv, -1);
        assert_eq!(acc.sums(), &[1, -1, 1, -1]);
        assert_eq!(acc.to_hypervector(), hv);
        assert_eq!(acc.similarity(&hv), 4);
    }

    #[test]
    #[should_panic(expected = "±1")]
    fn invalid_components_rejected() {
        let _ = Hypervector::from_components(vec![1, 0, -1]);
    }
}
