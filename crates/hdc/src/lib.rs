#![forbid(unsafe_code)]
//! # ferex-hdc — hyperdimensional computing on FeReX
//!
//! The vector-symbolic architecture (VSA/HDC) application stack the paper
//! benchmarks in Sec. IV-B:
//!
//! * [`hypervector`] — bipolar hypervectors, binding/bundling/similarity;
//! * [`encoder`] — the [`FeatureEncoder`] trait and the random signed
//!   projection implementation;
//! * [`level`] — the record-based (ID-level) encoder alternative;
//! * [`model`] — single-pass + iterative training and software inference;
//! * [`am`] — inference through a FeReX associative array with a
//!   configurable distance metric (the Fig. 8 experiments).
//!
//! # Examples
//!
//! ```
//! use ferex_hdc::am::{AmClassifier, AmConfig};
//! use ferex_hdc::encoder::ProjectionEncoder;
//! use ferex_hdc::model::HdcModel;
//! use ferex_datasets::spec::UCIHAR;
//! use ferex_datasets::synth::{generate, SynthOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let data = generate(&UCIHAR.scaled(0.01), &SynthOptions::default());
//! let encoder = ProjectionEncoder::new(data.n_features(), 512, 1);
//! let model = HdcModel::train_single_pass(encoder, &data.train, data.n_classes());
//! let mut am = AmClassifier::from_model(&model, &AmConfig::default())?;
//! let accuracy = am.accuracy(&model, &data.test)?;
//! assert!(accuracy > 0.3);
//! # Ok(())
//! # }
//! ```

pub mod am;
pub mod encoder;
pub mod hypervector;
pub mod level;
pub mod model;
pub mod sequence;

pub use am::{AmClassifier, AmConfig};
pub use encoder::{FeatureEncoder, ProjectionEncoder};
pub use hypervector::{Accumulator, Hypervector};
pub use level::RecordEncoder;
pub use model::{HdcModel, TrainReport};
pub use sequence::{encode_sequence, ngram};
