//! In-memory labeled dataset containers.

use crate::spec::DatasetSpec;

/// One labeled sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Feature vector.
    pub features: Vec<f32>,
    /// Class label in `0..n_classes`.
    pub label: usize,
}

/// A train/test split of labeled samples.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// The spec this dataset realizes.
    pub spec: DatasetSpec,
    /// Training samples.
    pub train: Vec<Sample>,
    /// Held-out test samples.
    pub test: Vec<Sample>,
}

impl Dataset {
    /// Feature dimensionality.
    pub fn n_features(&self) -> usize {
        self.spec.n_features
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.spec.n_classes
    }

    /// Checks structural invariants: sizes match the spec, every sample has
    /// the right arity, labels are in range, and every class occurs in the
    /// training set.
    pub fn validate(&self) -> Result<(), String> {
        if self.train.len() != self.spec.train_size {
            return Err(format!(
                "train size {} != spec {}",
                self.train.len(),
                self.spec.train_size
            ));
        }
        if self.test.len() != self.spec.test_size {
            return Err(format!("test size {} != spec {}", self.test.len(), self.spec.test_size));
        }
        let mut seen = vec![false; self.spec.n_classes];
        for (which, set) in [("train", &self.train), ("test", &self.test)] {
            for (i, s) in set.iter().enumerate() {
                if s.features.len() != self.spec.n_features {
                    return Err(format!("{which}[{i}] has {} features", s.features.len()));
                }
                if s.label >= self.spec.n_classes {
                    return Err(format!("{which}[{i}] label {} out of range", s.label));
                }
                if which == "train" {
                    seen[s.label] = true;
                }
            }
        }
        if let Some(missing) = seen.iter().position(|&s| !s) {
            return Err(format!("class {missing} absent from the training set"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DatasetSpec;

    fn tiny_spec() -> DatasetSpec {
        DatasetSpec {
            name: "tiny",
            n_features: 2,
            n_classes: 2,
            train_size: 2,
            test_size: 1,
            description: "test",
        }
    }

    fn sample(label: usize) -> Sample {
        Sample { features: vec![0.0, 1.0], label }
    }

    #[test]
    fn valid_dataset_passes() {
        let d =
            Dataset { spec: tiny_spec(), train: vec![sample(0), sample(1)], test: vec![sample(0)] };
        assert!(d.validate().is_ok());
        assert_eq!(d.n_features(), 2);
        assert_eq!(d.n_classes(), 2);
    }

    #[test]
    fn size_mismatch_detected() {
        let d = Dataset { spec: tiny_spec(), train: vec![sample(0)], test: vec![sample(0)] };
        assert!(d.validate().unwrap_err().contains("train size"));
    }

    #[test]
    fn label_range_detected() {
        let d =
            Dataset { spec: tiny_spec(), train: vec![sample(0), sample(7)], test: vec![sample(0)] };
        assert!(d.validate().unwrap_err().contains("out of range"));
    }

    #[test]
    fn missing_class_detected() {
        let d =
            Dataset { spec: tiny_spec(), train: vec![sample(0), sample(0)], test: vec![sample(1)] };
        assert!(d.validate().unwrap_err().contains("absent"));
    }
}
