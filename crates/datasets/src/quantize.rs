//! Feature quantization to b-bit symbols.
//!
//! FeReX stores multi-bit symbols, so real-valued features (raw or HDC
//! class-vector components) must be quantized. The [`Quantizer`] fits
//! per-feature min/max ranges on training data and maps values linearly
//! onto `0..2^bits`, clamping out-of-range test values — the standard
//! uniform quantization used by multi-bit CiM work.

use crate::dataset::Sample;

/// Per-feature uniform quantizer.
#[derive(Debug, Clone, PartialEq)]
pub struct Quantizer {
    bits: u32,
    mins: Vec<f32>,
    maxs: Vec<f32>,
}

impl Quantizer {
    /// Fits quantization ranges on an iterator of feature vectors.
    ///
    /// # Panics
    ///
    /// Panics if no vectors are provided, vectors are ragged, or
    /// `bits == 0` / `bits > 6`.
    pub fn fit<'a, I: IntoIterator<Item = &'a [f32]>>(bits: u32, vectors: I) -> Self {
        assert!((1..=6).contains(&bits), "bits must be in 1..=6");
        let mut iter = vectors.into_iter();
        let first = iter.next().expect("at least one vector required");
        let mut mins = first.to_vec();
        let mut maxs = first.to_vec();
        for v in iter {
            assert_eq!(v.len(), mins.len(), "ragged feature vectors");
            for ((mn, mx), &x) in mins.iter_mut().zip(maxs.iter_mut()).zip(v) {
                if x < *mn {
                    *mn = x;
                }
                if x > *mx {
                    *mx = x;
                }
            }
        }
        Quantizer { bits, mins, maxs }
    }

    /// Convenience: fit on the feature vectors of labeled samples.
    pub fn fit_samples(bits: u32, samples: &[Sample]) -> Self {
        Self::fit(bits, samples.iter().map(|s| s.features.as_slice()))
    }

    /// Number of quantization levels (`2^bits`).
    pub fn n_levels(&self) -> u32 {
        1 << self.bits
    }

    /// Symbol bit width.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Feature dimensionality.
    pub fn n_features(&self) -> usize {
        self.mins.len()
    }

    /// Quantizes one vector; out-of-range values clamp to the extreme
    /// symbols. Constant features map to symbol 0.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn transform(&self, features: &[f32]) -> Vec<u32> {
        assert_eq!(features.len(), self.mins.len(), "dimension mismatch");
        let top = (self.n_levels() - 1) as f32;
        features
            .iter()
            .zip(self.mins.iter().zip(&self.maxs))
            .map(|(&x, (&mn, &mx))| {
                if mx <= mn {
                    return 0;
                }
                let t = ((x - mn) / (mx - mn)).clamp(0.0, 1.0);
                (t * top).round() as u32
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantizes_to_full_range() {
        let train = [vec![0.0f32, -1.0], vec![1.0, 1.0]];
        let q = Quantizer::fit(2, train.iter().map(|v| v.as_slice()));
        assert_eq!(q.n_levels(), 4);
        assert_eq!(q.transform(&[0.0, -1.0]), vec![0, 0]);
        assert_eq!(q.transform(&[1.0, 1.0]), vec![3, 3]);
        assert_eq!(q.transform(&[0.5, 0.0]), vec![2, 2]); // rounds up at 1.5
    }

    #[test]
    fn clamps_out_of_range_values() {
        let train = [vec![0.0f32], vec![1.0]];
        let q = Quantizer::fit(3, train.iter().map(|v| v.as_slice()));
        assert_eq!(q.transform(&[-5.0]), vec![0]);
        assert_eq!(q.transform(&[9.0]), vec![7]);
    }

    #[test]
    fn constant_feature_maps_to_zero() {
        let train = [vec![2.5f32], vec![2.5]];
        let q = Quantizer::fit(2, train.iter().map(|v| v.as_slice()));
        assert_eq!(q.transform(&[2.5]), vec![0]);
        assert_eq!(q.transform(&[100.0]), vec![0]);
    }

    #[test]
    fn quantization_is_monotone() {
        let train = [vec![0.0f32], vec![10.0]];
        let q = Quantizer::fit(2, train.iter().map(|v| v.as_slice()));
        let mut last = 0;
        for i in 0..=100 {
            let s = q.transform(&[i as f32 / 10.0])[0];
            assert!(s >= last, "non-monotone at {i}");
            last = s;
        }
        assert_eq!(last, 3);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn transform_checks_arity() {
        let train = [vec![0.0f32, 1.0]];
        let q = Quantizer::fit(2, train.iter().map(|v| v.as_slice()));
        let _ = q.transform(&[0.0]);
    }
}
