//! Synthetic class-conditional Gaussian data, statistically matched to the
//! Table III specs.
//!
//! Each class gets a prototype drawn once from an isotropic Gaussian;
//! samples are the prototype plus per-feature noise. The
//! `separation / noise` ratio controls task difficulty and is calibrated so
//! that HDC/KNN accuracies land in the high-80s/low-90s range the paper
//! reports on the real datasets. Generation is fully deterministic from the
//! seed: two calls with the same arguments produce identical datasets.

use crate::dataset::{Dataset, Sample};
use crate::spec::DatasetSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SynthOptions {
    /// Scale of the class prototypes (inter-class spread).
    pub separation: f64,
    /// Per-feature noise standard deviation (intra-class spread).
    pub noise: f64,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for SynthOptions {
    fn default() -> Self {
        SynthOptions { separation: 1.0, noise: 1.0, seed: 0x5EED }
    }
}

/// Draws one standard-normal value (Box–Muller; local copy to keep this
/// crate independent of the device stack).
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Generates a dataset for `spec`.
///
/// Labels are assigned round-robin so every class appears in both splits
/// (subject to split size ≥ class count, which [`DatasetSpec::scaled`]
/// guarantees).
///
/// # Examples
///
/// ```
/// use ferex_datasets::spec::ISOLET;
/// use ferex_datasets::synth::{generate, SynthOptions};
///
/// let data = generate(&ISOLET.scaled(0.01), &SynthOptions::default());
/// assert!(data.validate().is_ok());
/// ```
pub fn generate(spec: &DatasetSpec, options: &SynthOptions) -> Dataset {
    let mut rng = StdRng::seed_from_u64(options.seed);
    // Class prototypes.
    let prototypes: Vec<Vec<f64>> = (0..spec.n_classes)
        .map(|_| {
            (0..spec.n_features).map(|_| options.separation * standard_normal(&mut rng)).collect()
        })
        .collect();
    let draw_split = |size: usize, rng: &mut StdRng| -> Vec<Sample> {
        (0..size)
            .map(|i| {
                let label = i % spec.n_classes;
                let features = prototypes[label]
                    .iter()
                    .map(|&p| (p + options.noise * standard_normal(rng)) as f32)
                    .collect();
                Sample { features, label }
            })
            .collect()
    };
    let train = draw_split(spec.train_size, &mut rng);
    let test = draw_split(spec.test_size, &mut rng);
    Dataset { spec: *spec, train, test }
}

/// Adds i.i.d. Gaussian noise of standard deviation `sigma` to every
/// feature of every sample — the robustness-sweep utility (how gracefully
/// does a trained model degrade as the test distribution shifts?).
///
/// Deterministic from `seed`; the input is not modified.
pub fn perturb(samples: &[Sample], sigma: f64, seed: u64) -> Vec<Sample> {
    let mut rng = StdRng::seed_from_u64(seed);
    samples
        .iter()
        .map(|s| Sample {
            features: s
                .features
                .iter()
                .map(|&x| x + (sigma * standard_normal(&mut rng)) as f32)
                .collect(),
            label: s.label,
        })
        .collect()
}

/// Flips `n_flips` distinct bit positions of a `bits`-bit symbol vector —
/// the shared corruptor for worst-case Hamming-margin experiments (the CLI
/// `montecarlo` command and the hardware-fidelity tests).
///
/// Positions are drawn uniformly over all `v.len() * bits` symbol bits, so
/// each flip changes one symbol somewhere in `0..2^bits`; flips landing in
/// distinct symbols raise the symbol-Hamming distance by exactly one each.
/// Deterministic from the RNG state; the input is not modified.
///
/// # Panics
///
/// Panics if `bits` is zero, any symbol already overflows `bits` bits, or
/// `n_flips` exceeds the `v.len() * bits` available positions.
pub fn flip_symbol_bits(v: &[u32], bits: u32, n_flips: usize, rng: &mut StdRng) -> Vec<u32> {
    assert!(bits > 0, "symbols must carry at least one bit");
    assert!(v.iter().all(|&s| s < 1u32 << bits), "symbol out of range for {bits}-bit flipping");
    let n_positions = v.len() * bits as usize;
    assert!(n_flips <= n_positions, "cannot flip {n_flips} of {n_positions} distinct bits");
    let mut out = v.to_vec();
    let mut flipped = std::collections::HashSet::new();
    while flipped.len() < n_flips {
        let pos = rng.gen_range(0..n_positions);
        if flipped.insert(pos) {
            out[pos / bits as usize] ^= 1 << (pos % bits as usize);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ISOLET, MNIST, UCIHAR};

    #[test]
    fn generated_datasets_validate() {
        for spec in [ISOLET.scaled(0.02), UCIHAR.scaled(0.02), MNIST.scaled(0.002)] {
            let d = generate(&spec, &SynthOptions::default());
            d.validate().unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = UCIHAR.scaled(0.01);
        let a = generate(&spec, &SynthOptions::default());
        let b = generate(&spec, &SynthOptions::default());
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let spec = UCIHAR.scaled(0.01);
        let a = generate(&spec, &SynthOptions::default());
        let b = generate(&spec, &SynthOptions { seed: 1, ..Default::default() });
        assert_ne!(a, b);
    }

    #[test]
    fn classes_are_separable_by_nearest_prototype() {
        // Sanity: with the default separation/noise, a nearest-centroid
        // classifier on the *training* centroids classifies most test
        // samples correctly — the precondition for meaningful accuracy
        // experiments downstream.
        let spec = UCIHAR.scaled(0.05);
        let d = generate(&spec, &SynthOptions::default());
        let mut centroids = vec![vec![0f64; spec.n_features]; spec.n_classes];
        let mut counts = vec![0usize; spec.n_classes];
        for s in &d.train {
            counts[s.label] += 1;
            for (c, &x) in centroids[s.label].iter_mut().zip(&s.features) {
                *c += x as f64;
            }
        }
        for (c, &n) in centroids.iter_mut().zip(&counts) {
            for v in c {
                *v /= n as f64;
            }
        }
        let mut correct = 0;
        for s in &d.test {
            let pred = centroids
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    let da: f64 =
                        a.iter().zip(&s.features).map(|(&c, &x)| (c - x as f64).powi(2)).sum();
                    let db: f64 =
                        b.iter().zip(&s.features).map(|(&c, &x)| (c - x as f64).powi(2)).sum();
                    da.total_cmp(&db)
                })
                .map(|(i, _)| i)
                .unwrap();
            if pred == s.label {
                correct += 1;
            }
        }
        let acc = correct as f64 / d.test.len() as f64;
        assert!(acc > 0.9, "centroid accuracy only {acc}");
    }

    #[test]
    fn perturb_preserves_labels_and_shape() {
        let spec = UCIHAR.scaled(0.005);
        let d = generate(&spec, &SynthOptions::default());
        let p = perturb(&d.test, 0.5, 3);
        assert_eq!(p.len(), d.test.len());
        for (a, b) in p.iter().zip(&d.test) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.features.len(), b.features.len());
            assert_ne!(a.features, b.features, "noise must actually perturb");
        }
        // Zero sigma is the identity.
        let same = perturb(&d.test, 0.0, 3);
        assert_eq!(same, d.test);
        // Deterministic per seed.
        assert_eq!(perturb(&d.test, 0.5, 3), p);
    }

    #[test]
    fn flip_symbol_bits_respects_width_and_count() {
        for bits in 1..=4u32 {
            let mut rng = StdRng::seed_from_u64(7 + bits as u64);
            let v: Vec<u32> = (0..24).map(|_| rng.gen_range(0..1u32 << bits)).collect();
            for n_flips in [0, 1, 3, v.len() * bits as usize] {
                let out = flip_symbol_bits(&v, bits, n_flips, &mut rng);
                assert_eq!(out.len(), v.len());
                // Symbols stay inside the width — the bug the shared helper
                // fixes was flipping bit 2 of supposedly `bits`-wide symbols.
                assert!(out.iter().all(|&s| s < 1u32 << bits), "{bits}-bit overflow");
                let bit_dist: u32 = out.iter().zip(&v).map(|(a, b)| (a ^ b).count_ones()).sum();
                assert_eq!(bit_dist as usize, n_flips, "{bits}-bit distinct flips");
                // Symbol-Hamming distance is bounded by the flip count.
                let sym_dist = out.iter().zip(&v).filter(|(a, b)| a != b).count();
                assert!(sym_dist <= n_flips);
            }
        }
    }

    #[test]
    fn flip_symbol_bits_is_deterministic_per_rng_state() {
        let v: Vec<u32> = (0..16).map(|i| i % 4).collect();
        let a = flip_symbol_bits(&v, 2, 5, &mut StdRng::seed_from_u64(11));
        let b = flip_symbol_bits(&v, 2, 5, &mut StdRng::seed_from_u64(11));
        assert_eq!(a, b);
        assert_eq!(flip_symbol_bits(&v, 2, 0, &mut StdRng::seed_from_u64(1)), v);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn flip_symbol_bits_rejects_overflowing_symbols() {
        flip_symbol_bits(&[2], 1, 1, &mut StdRng::seed_from_u64(0));
    }

    #[test]
    fn noise_increases_spread() {
        let spec = UCIHAR.scaled(0.01);
        let clean = generate(&spec, &SynthOptions { noise: 0.01, ..Default::default() });
        // With near-zero noise, same-class samples are near-identical.
        let a = &clean.train[0];
        let b = clean.train.iter().skip(1).find(|s| s.label == a.label).unwrap();
        let dist: f64 = a
            .features
            .iter()
            .zip(&b.features)
            .map(|(&x, &y)| ((x - y) as f64).powi(2))
            .sum::<f64>()
            .sqrt();
        assert!(dist < 1.0, "near-noiseless spread {dist}");
    }
}
