//! Dataset specifications from Table III of the paper.
//!
//! The real UCI/MNIST archives are not available in this offline
//! environment; the generators in [`crate::synth`] produce class-conditional
//! Gaussian data *statistically matched* to these specs (same feature count,
//! class count and split sizes), which preserves every relative comparison
//! the paper reports (metric vs metric, hardware vs software).

/// Static description of one benchmark dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatasetSpec {
    /// Short name as used in the paper.
    pub name: &'static str,
    /// Feature count `n`.
    pub n_features: usize,
    /// Class count `K`.
    pub n_classes: usize,
    /// Training-set size.
    pub train_size: usize,
    /// Test-set size.
    pub test_size: usize,
    /// Task description from Table III.
    pub description: &'static str,
}

/// ISOLET: voice recognition (617 features, 26 classes).
pub const ISOLET: DatasetSpec = DatasetSpec {
    name: "ISOLET",
    n_features: 617,
    n_classes: 26,
    train_size: 6238,
    test_size: 1559,
    description: "Voice Recognition",
};

/// UCIHAR: physical activity monitoring (561 features, 12 classes).
pub const UCIHAR: DatasetSpec = DatasetSpec {
    name: "UCIHAR",
    n_features: 561,
    n_classes: 12,
    train_size: 6213,
    test_size: 1554,
    description: "Physical Activity Monitoring",
};

/// MNIST: handwritten digit recognition (784 features, 10 classes).
pub const MNIST: DatasetSpec = DatasetSpec {
    name: "MNIST",
    n_features: 784,
    n_classes: 10,
    train_size: 60_000,
    test_size: 10_000,
    description: "Handwritten Recognition",
};

/// The three Table III datasets, in paper order.
pub const TABLE_III: [DatasetSpec; 3] = [ISOLET, UCIHAR, MNIST];

impl DatasetSpec {
    /// A proportionally scaled copy of this spec, used to keep experiment
    /// runtimes tractable while preserving the feature/class structure.
    /// Sizes are floored at `n_classes` samples so every class can appear.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not in `(0, 1]`.
    pub fn scaled(&self, fraction: f64) -> DatasetSpec {
        assert!(fraction > 0.0 && fraction <= 1.0, "fraction must be in (0, 1]");
        DatasetSpec {
            train_size: ((self.train_size as f64 * fraction) as usize).max(self.n_classes),
            test_size: ((self.test_size as f64 * fraction) as usize).max(self.n_classes),
            ..*self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iii_matches_the_paper() {
        assert_eq!(ISOLET.n_features, 617);
        assert_eq!(ISOLET.n_classes, 26);
        assert_eq!(ISOLET.train_size, 6238);
        assert_eq!(ISOLET.test_size, 1559);
        assert_eq!(UCIHAR.n_features, 561);
        assert_eq!(UCIHAR.n_classes, 12);
        assert_eq!(MNIST.n_features, 784);
        assert_eq!(MNIST.n_classes, 10);
        assert_eq!(MNIST.train_size, 60_000);
        assert_eq!(MNIST.test_size, 10_000);
    }

    #[test]
    fn scaling_preserves_structure() {
        let s = MNIST.scaled(0.01);
        assert_eq!(s.n_features, 784);
        assert_eq!(s.n_classes, 10);
        assert_eq!(s.train_size, 600);
        assert_eq!(s.test_size, 100);
    }

    #[test]
    fn scaling_floors_at_class_count() {
        let s = ISOLET.scaled(0.0001);
        assert_eq!(s.train_size, 26);
        assert_eq!(s.test_size, 26);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn zero_fraction_rejected() {
        let _ = MNIST.scaled(0.0);
    }
}
