#![forbid(unsafe_code)]
//! # ferex-datasets — benchmark dataset substrates
//!
//! Synthetic replacements for the paper's Table III datasets (ISOLET,
//! UCIHAR, MNIST), plus the uniform feature quantization FeReX's multi-bit
//! cells require.
//!
//! The real UCI archives are unavailable offline; [`synth::generate`]
//! produces class-conditional Gaussian data with the same feature counts,
//! class counts and split sizes (see DESIGN.md §3 for why the substitution
//! preserves the paper's comparisons).
//!
//! # Examples
//!
//! ```
//! use ferex_datasets::quantize::Quantizer;
//! use ferex_datasets::spec::UCIHAR;
//! use ferex_datasets::synth::{generate, SynthOptions};
//!
//! let data = generate(&UCIHAR.scaled(0.01), &SynthOptions::default());
//! let quantizer = Quantizer::fit_samples(2, &data.train);
//! let symbols = quantizer.transform(&data.test[0].features);
//! assert!(symbols.iter().all(|&s| s < 4));
//! ```

pub mod dataset;
pub mod quantize;
pub mod spec;
pub mod synth;

pub use dataset::{Dataset, Sample};
pub use quantize::Quantizer;
pub use spec::{DatasetSpec, ISOLET, MNIST, TABLE_III, UCIHAR};
pub use synth::{generate, perturb, SynthOptions};
